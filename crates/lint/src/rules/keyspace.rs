//! Keyspace rule: storage keys are built by the `model/keys.rs` helpers,
//! nowhere else. A database access that passes a `T_*` table constant
//! together with an inline `format!` key re-invents the key layout at
//! the call site — exactly the drift the tree-encoded keyspace exists to
//! prevent: a raw `format!("{ms}/{name}")` silently disagrees with the
//! escape-safe segment encoding, and a key that disagrees with the
//! encoding corrupts every range scan that touches its table.
//!
//! Like the rest of uc-lint this is a textual, expression-local check:
//! it flags an inline `format!` argument in the same call that names a
//! `T_*` table constant. It cannot see a key built into a variable two
//! statements earlier — its job is to stop the easy regression and
//! force key construction through the audited helpers.

use super::{Diagnostic, FileCtx, RULE_KEYSPACE};
use crate::lexer::Kind;

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let allow = ctx.cfg.list("keyspace", "allow_files");
    if allow.iter().any(|f| f == ctx.rel_path) {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.scan.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if !(t.kind == Kind::Ident
            && t.text == "format"
            && i + 1 < toks.len()
            && toks[i + 1].kind == Kind::Punct
            && toks[i + 1].text == "!")
        {
            continue;
        }
        // Walk back to the opening parenthesis of the enclosing call; a
        // `T_*` table constant among the sibling arguments means this
        // `format!` is a storage key built at the call site.
        let mut depth = 0i32;
        let mut table: Option<String> = None;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let p = &toks[j];
            if p.kind == Kind::Punct {
                match p.text.as_str() {
                    ")" | "]" | "}" => depth += 1,
                    "(" | "[" | "{" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            } else if depth == 0 && p.kind == Kind::Ident && p.text.starts_with("T_") {
                table = Some(p.text.clone());
            }
        }
        if let Some(table) = table {
            out.push(ctx.diag(
                t.line,
                RULE_KEYSPACE,
                format!(
                    "inline `format!` key beside table constant `{table}` (storage keys \
                     are built by model/keys.rs helpers only — a raw key drifts from the \
                     tree encoding and corrupts range scans)"
                ),
            ));
        }
    }
}
