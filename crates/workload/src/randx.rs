//! Distribution samplers built on `rand`'s uniform source.
//!
//! The approved dependency set includes `rand` but not `rand_distr`, so
//! the two shapes the telemetry models need — log-normal (asset counts,
//! bubble sizes) and Zipf (popularity) — are implemented here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a (seed, stream) pair, so independent generators
/// don't correlate.
pub fn rng_for(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ stream)
}

/// Standard normal via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Log-normal sample: `exp(mu + sigma·Z)`.
pub fn lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Log-normal, rounded to an integer count with a floor of `min`.
pub fn lognormal_count(rng: &mut impl Rng, mu: f64, sigma: f64, min: usize) -> usize {
    (lognormal(rng, mu, sigma).round() as usize).max(min)
}

/// Exponential with the given rate (events per unit time).
pub fn exponential(rng: &mut impl Rng, rate: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / rate
}

/// Zipf distribution over ranks `0..n` with exponent `s`, sampled by
/// binary search on the precomputed CDF.
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Sample a rank in `0..n` (rank 0 is most popular).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u)
    }

    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Pick an index from explicit (unnormalized) weights.
pub fn weighted_choice(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u: f64 = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed_and_stream() {
        let a: f64 = rng_for(7, 1).gen();
        let b: f64 = rng_for(7, 1).gen();
        let c: f64 = rng_for(7, 2).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = rng_for(42, 0);
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = rng_for(42, 1);
        let mut samples: Vec<f64> = (0..20_000).map(|_| lognormal(&mut rng, 3.0, 1.0)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 3.0f64.exp()).abs() / 3.0f64.exp() < 0.1, "median {median}");
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(100, 1.1);
        let mut rng = rng_for(42, 2);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50].saturating_sub(30));
        assert!(counts[0] as f64 / 20_000.0 > 0.1);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = rng_for(42, 3);
        let samples: Vec<f64> = (0..20_000).map(|_| exponential(&mut rng, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = rng_for(42, 4);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_choice(&mut rng, &[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        assert!((counts[2] as f64 / 30_000.0 - 0.7).abs() < 0.03);
    }
}
