#![forbid(unsafe_code)]
//! Simulated multi-cloud object storage with STS-style temporary credentials.
//!
//! This crate is the substrate that stands in for Amazon S3 / Azure ADLS /
//! Google Cloud Storage in the Unity Catalog reproduction. It provides:
//!
//! * [`StoragePath`] — `scheme://bucket/key` paths with prefix semantics,
//!   the vocabulary of the catalog's *one-asset-per-path* principle.
//! * [`ObjectStore`] — an in-memory bucket/object store with `put`, `get`,
//!   `put_if_absent` (the atomic primitive Delta-style commit logs need),
//!   prefix listing, and deletes. Every operation is authenticated with a
//!   [`Credential`] and authorization is enforced *at the storage layer*,
//!   exactly as a cloud provider would enforce an STS token's scope.
//! * [`StsService`] — mints signed, down-scoped, expiring temporary
//!   credentials from a root credential. Unity Catalog's credential-vending
//!   API is a client of this service.
//! * [`Clock`] — injectable time source so token expiry is testable.
//! * [`LatencyModel`] — per-operation injected latency so benchmarks can
//!   model a remote object store.
//! * [`FaultPlan`] — seeded, deterministic fault injection shared across
//!   the storage, database, and catalog layers for replayable chaos tests.
//! * [`Scheduler`] — seeded cooperative scheduling of multi-client
//!   workloads through named yield points, extending FaultPlan determinism
//!   from "when ops fail" to "in what order ops run".
//!
//! Authorization model: each bucket is registered with a *root credential*
//! (held only by the catalog service in the full system). Clients never see
//! root credentials; they receive [`TempCredential`]s whose scope is a path
//! prefix plus an [`AccessLevel`], signed by the STS service. The store
//! verifies signature, expiry, scope, and access level on every call.

pub mod clock;
pub mod credentials;
pub mod error;
pub mod faults;
pub mod latency;
pub mod path;
pub mod sched;
pub mod seed;
pub mod store;

pub use clock::Clock;
pub use credentials::{AccessLevel, Credential, RootCredential, StsService, TempCredential};
pub use error::{StorageError, StorageResult};
pub use faults::{FaultEvent, FaultMode, FaultPlan};
pub use latency::{LatencyModel, OpClass};
pub use path::StoragePath;
pub use sched::{SchedMode, Scheduler};
pub use store::{ObjectMeta, ObjectStore};
