//! Multiple engines, one governed table: a trusted SQL engine and an
//! untrusted ML engine (delegating FGAC to the data filtering service)
//! operate on the same asset under one set of policies, while a second
//! catalog node serves the same metastore — the interoperability and
//! catalog-engine-separation story of §4.1.
//!
//! Run with: `cargo run -p uc-bench --example multi_engine`

use uc_bench::{World, WorldConfig, ADMIN};
use uc_catalog::authz::fgac::RowFilterPolicy;
use uc_catalog::service::{UcConfig, UnityCatalog};
use uc_catalog::sharding::ShardRouter;
use uc_catalog::types::FullName;
use uc_delta::expr::{CmpOp, Expr};
use uc_engine::{DataFilteringService, Engine, EngineConfig};

fn main() {
    let world = World::build(&WorldConfig::default());
    let uc = &world.uc;
    let ms = &world.ms;
    let ctx = world.admin();

    // --- one governed table ----------------------------------------------
    let sql_engine = Engine::new(uc.clone(), ms.clone(), EngineConfig::trusted("dbr-sql"));
    let mut admin = sql_engine.session(ADMIN);
    for sql in [
        "CREATE CATALOG lab",
        "CREATE SCHEMA lab.experiments",
        "CREATE TABLE lab.experiments.trials (owner STRING, trial BIGINT, auc DOUBLE)",
        "INSERT INTO lab.experiments.trials VALUES \
         ('ada', 1, 0.81), ('ada', 2, 0.84), ('bob', 1, 0.79)",
    ] {
        admin.execute(sql).expect(sql);
    }
    let table = FullName::parse("lab.experiments.trials").unwrap();
    uc.set_row_filter(
        &ctx,
        ms,
        &table,
        RowFilterPolicy {
            expr: Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(Expr::Column("owner".into())),
                rhs: Box::new(Expr::CurrentUser),
            },
        },
    )
    .unwrap();
    uc.grant_read_path(&ctx, ms, "lab.experiments.trials", "ada").unwrap();
    uc.grant_read_path(&ctx, ms, "lab.experiments.trials", "bob").unwrap();
    // ada also writes and maintains the table
    uc.grant_on_table(&ctx, ms, "lab.experiments.trials", "ada", uc_catalog::authz::Privilege::Modify)
        .unwrap();
    println!("table lab.experiments.trials governed by an owner row filter");

    // --- engine 1: trusted SQL engine enforces FGAC itself ----------------
    let mut ada_sql = sql_engine.session("ada");
    let res = ada_sql.execute("SELECT trial, auc FROM lab.experiments.trials").unwrap();
    println!("\n[dbr-sql/trusted] ada sees {} of 3 rows", res.rows.len());
    assert_eq!(res.rows.len(), 2);

    // --- engine 2: untrusted GPU/ML engine must delegate ------------------
    let ml_engine = Engine::new(uc.clone(), ms.clone(), EngineConfig::untrusted("ml-gpu"));
    let dfs = DataFilteringService::new(sql_engine.clone());
    let mut bob_ml = ml_engine.session("bob").with_dfs(dfs);
    let res = bob_ml.execute("SELECT trial, auc FROM lab.experiments.trials").unwrap();
    println!("[ml-gpu/untrusted→DFS] bob sees {} of 3 rows", res.rows.len());
    assert_eq!(res.rows.len(), 1);

    // --- a second catalog node serves the same metastore ------------------
    // (best-effort sharding: no consensus, version-conditioned writes)
    let node1 = UnityCatalog::new(world.db.clone(), world.store.clone(), UcConfig::default(), "node-1");
    let router = ShardRouter::new(vec![uc.clone(), node1.clone()]);
    let serving_node = router.node_for(ms);
    println!("\nrouter assigns metastore to {}", serving_node.node_id());

    // write through node-1 regardless of assignment; read through node-0
    let engine_on_node1 = Engine::new(node1.clone(), ms.clone(), EngineConfig::trusted("dbr-sql-2"));
    let mut ada_n1 = engine_on_node1.session("ada");
    ada_n1
        .execute("INSERT INTO lab.experiments.trials VALUES ('ada', 3, 0.88)")
        .unwrap();
    let mut ada_n0 = sql_engine.session("ada");
    let res = ada_n0.execute("SELECT trial FROM lab.experiments.trials").unwrap();
    println!("after a write via node-1, ada reads {} rows via node-0", res.rows.len());
    assert_eq!(res.rows.len(), 3);

    // --- engines also exercise maintenance under the same governance ------
    let msg = ada_n0.execute("OPTIMIZE lab.experiments.trials").unwrap().message;
    println!("ada runs OPTIMIZE: {msg}");
    // bob, without MODIFY, cannot
    let mut bob_sql = sql_engine.session("bob");
    assert!(bob_sql.execute("OPTIMIZE lab.experiments.trials").is_err());
    println!("bob's OPTIMIZE denied (no MODIFY) — one policy, every engine");

    println!("\nmulti_engine OK");
}
