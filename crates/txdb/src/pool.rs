//! Bounded connection pool.
//!
//! Real catalog deployments talk to their backing database through a finite
//! connection pool; when the pool saturates, request latency climbs and
//! throughput hits a wall. The paper's Fig 10(b) shows exactly this regime
//! for the uncached configuration, so the substitute database models it
//! explicitly: every database operation must hold a permit for the duration
//! of its (injected) latency.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use uc_obs::{Counter, Registry};

/// A counting semaphore representing database connections.
///
/// Wait diagnostics live in [`uc_obs::Counter`]s (`txdb.pool.wait_ns`,
/// `txdb.pool.waits` when built with [`ConnectionPool::wired`]); the
/// original `total_wait`/`waits` accessors delegate to them, so existing
/// callers are unaffected. Only acquisitions that actually block are
/// measured — an uncontended acquire touches no clock at all, and a
/// single-threaded deterministic workload reports exactly zero waits.
#[derive(Clone)]
pub struct ConnectionPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    /// Number of available permits.
    available: Mutex<usize>,
    cond: Condvar,
    capacity: usize,
    /// Total nanoseconds callers spent blocked waiting for a permit.
    wait_ns: Counter,
    /// Number of acquisitions that had to block.
    waits: Counter,
}

/// RAII permit; returning it wakes one waiter.
pub struct Permit {
    pool: ConnectionPool,
}

impl ConnectionPool {
    /// Pool with `capacity` concurrent connections. Capacity 0 is clamped
    /// to 1 — a database with no connections is not a useful model. Wait
    /// counters are detached (not visible in any registry snapshot).
    pub fn new(capacity: usize) -> Self {
        ConnectionPool::build(capacity, Counter::new(), Counter::new())
    }

    /// Pool whose wait counters live in `registry` as `txdb.pool.wait_ns`
    /// and `txdb.pool.waits`.
    pub fn wired(capacity: usize, registry: &Registry) -> Self {
        ConnectionPool::build(
            capacity,
            registry.counter("txdb.pool.wait_ns"),
            registry.counter("txdb.pool.waits"),
        )
    }

    fn build(capacity: usize, wait_ns: Counter, waits: Counter) -> Self {
        let capacity = capacity.max(1);
        ConnectionPool {
            inner: Arc::new(PoolInner {
                available: Mutex::new(capacity),
                cond: Condvar::new(),
                capacity,
                wait_ns,
                waits,
            }),
        }
    }

    /// Block until a connection is available.
    pub fn acquire(&self) -> Permit {
        let mut available = self.inner.available.lock();
        if *available == 0 {
            // uc-lint: allow(determinism) -- measures real blocking wait for the pool.wait_ns metric
            let start = Instant::now();
            while *available == 0 {
                self.inner.cond.wait(&mut available);
            }
            self.inner.wait_ns.add(start.elapsed().as_nanos() as u64);
            self.inner.waits.inc();
        }
        *available -= 1;
        Permit { pool: self.clone() }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// (total wait time, number of waits that blocked) so far.
    pub fn wait_stats(&self) -> (Duration, u64) {
        (self.total_wait(), self.waits())
    }

    /// Total time callers spent blocked waiting for a permit.
    pub fn total_wait(&self) -> Duration {
        Duration::from_nanos(self.inner.wait_ns.get())
    }

    /// Number of acquisitions that had to block. Together with
    /// [`Self::total_wait`] this is the saturation diagnostic: a rising
    /// waits count with a climbing total wait means the pool is the
    /// bottleneck (the Fig 10(b) uncached regime).
    pub fn waits(&self) -> u64 {
        self.inner.waits.get()
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut available = self.pool.inner.available.lock();
        *available += 1;
        drop(available);
        self.pool.inner.cond.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;

    #[test]
    fn capacity_zero_clamps_to_one() {
        assert_eq!(ConnectionPool::new(0).capacity(), 1);
    }

    #[test]
    fn acquire_release_cycles() {
        let pool = ConnectionPool::new(2);
        let p1 = pool.acquire();
        let p2 = pool.acquire();
        drop(p1);
        let _p3 = pool.acquire();
        drop(p2);
    }

    #[test]
    fn pool_bounds_concurrency() {
        let pool = ConnectionPool::new(4);
        let current = StdArc::new(AtomicUsize::new(0));
        let peak = StdArc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let pool = pool.clone();
            let current = current.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let _permit = pool.acquire();
                    let n = current.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(n, Ordering::SeqCst);
                    std::thread::yield_now();
                    current.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 4, "peak {} > capacity", peak.load(Ordering::SeqCst));
    }

    #[test]
    fn uncontended_acquire_is_not_counted_as_a_wait() {
        let pool = ConnectionPool::new(2);
        for _ in 0..10 {
            let _p = pool.acquire();
        }
        assert_eq!(pool.waits(), 0);
        assert_eq!(pool.total_wait(), Duration::ZERO);
    }

    #[test]
    fn wired_pool_reports_waits_through_registry() {
        let registry = uc_obs::Registry::new();
        let pool = ConnectionPool::wired(1, &registry);
        let permit = pool.acquire();
        let waiter = {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let _p = pool.acquire();
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        drop(permit);
        waiter.join().unwrap();
        assert!(pool.waits() >= 1);
        assert_eq!(registry.counter("txdb.pool.waits").get(), pool.waits());
        assert!(registry.counter("txdb.pool.wait_ns").get() > 0);
    }

    #[test]
    fn saturation_diagnostics_report_contention() {
        let pool = ConnectionPool::new(1);
        assert_eq!(pool.waits(), 0);
        assert_eq!(pool.total_wait(), Duration::ZERO);
        let permit = pool.acquire();
        let waiter = {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let _p = pool.acquire(); // blocks until the holder releases
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        drop(permit);
        waiter.join().unwrap();
        assert!(pool.waits() >= 1, "blocked acquire must be counted");
        assert!(pool.total_wait() > Duration::ZERO);
        let (total, waits) = pool.wait_stats();
        assert_eq!(total, pool.total_wait());
        assert_eq!(waits, pool.waits());
    }
}
