//! Negative-path credential vending tests (§4.3.1).
//!
//! The happy paths are covered by the engine and lifecycle suites; these
//! tests pin the *denials*: a token scoped to one asset's path must not
//! open sibling paths that share a string prefix, an expired token must
//! stop working even though it was validly minted, and renewal must re-run
//! full authorization so revocations issued after the original vend are
//! honored (and audited).

use std::sync::Arc;

use uc_catalog::audit::AuditDecision;
use uc_catalog::authz::Privilege;
use uc_catalog::service::crud::TableSpec;
use uc_catalog::service::{Context, UcConfig, UnityCatalog};
use uc_catalog::types::{FullName, TableFormat};
use uc_catalog::UcError;
use uc_cloudstore::{
    AccessLevel, Clock, Credential, LatencyModel, ObjectStore, StoragePath, StsService,
};
use uc_delta::value::{DataType, Field, Schema};
use uc_txdb::Db;

const ADMIN: &str = "admin";

struct World {
    clock: Clock,
    store: ObjectStore,
    uc: Arc<UnityCatalog>,
    ms: uc_catalog::Uid,
    root: Credential,
}

fn int_schema() -> Schema {
    Schema::new(vec![Field::new("x", DataType::Int)])
}

/// A world with catalog `main`, schema `s`, and external tables `t1` and
/// `t2` at `s3://lake/warehouse/t1` and `.../t2`, plus loose objects under
/// the sibling prefix `.../t10` that no asset governs.
fn world() -> World {
    let clock = Clock::manual(0);
    let sts = StsService::new(clock.clone());
    let store = ObjectStore::new(sts, LatencyModel::zero());
    let db = Db::in_memory();
    let uc = UnityCatalog::new(db, store.clone(), UcConfig::default(), "node-0");
    let ms = uc.create_metastore(ADMIN, "sts", "us-west-2").unwrap();
    let ctx = Context::user(ADMIN);
    let root = store.create_bucket("lake");
    uc.create_storage_credential(&ctx, &ms, "lake_cred", &root).unwrap();
    uc.create_catalog(&ctx, &ms, "main").unwrap();
    uc.create_schema(&ctx, &ms, "main", "s").unwrap();
    for t in ["t1", "t2"] {
        let spec = TableSpec::external(
            &format!("main.s.{t}"),
            int_schema(),
            &format!("s3://lake/warehouse/{t}"),
            TableFormat::Delta,
        )
        .unwrap();
        uc.create_table(&ctx, &ms, spec).unwrap();
    }
    let root = Credential::Root(root);
    for obj in ["t1/part-0", "t2/part-0", "t10/part-0"] {
        let p = StoragePath::parse(&format!("s3://lake/warehouse/{obj}")).unwrap();
        store.put(&root, &p, bytes::Bytes::from_static(b"rows")).unwrap();
    }
    World { clock, store, uc, ms, root }
}

fn obj(path: &str) -> StoragePath {
    StoragePath::parse(path).unwrap()
}

// ---------------------------------------------------------------------
// 1. Scope containment: a t1 token opens t1 only — not the t10 sibling
//    that shares a string prefix, not the t2 sibling.
// ---------------------------------------------------------------------

#[test]
fn credential_scoped_to_one_path_rejects_sibling_prefixes() {
    let w = world();
    let ctx = Context::user(ADMIN);
    let tok = w
        .uc
        .temp_credentials(
            &ctx,
            &w.ms,
            &FullName::parse("main.s.t1").unwrap(),
            "relation",
            AccessLevel::Read,
        )
        .unwrap();
    assert_eq!(tok.scope, obj("s3://lake/warehouse/t1"));
    let cred = Credential::Temp(tok);

    // In scope: the object under the table's registered path.
    w.store.get(&cred, &obj("s3://lake/warehouse/t1/part-0")).unwrap();
    // `t10` shares the string prefix "t1" but is a different path segment.
    w.store
        .get(&cred, &obj("s3://lake/warehouse/t10/part-0"))
        .expect_err("t1 token must not open sibling t10");
    // An ordinary sibling is equally out of scope.
    w.store
        .get(&cred, &obj("s3://lake/warehouse/t2/part-0"))
        .expect_err("t1 token must not open sibling t2");
    // Read scope does not imply write scope, even in-path.
    w.store
        .put(&cred, &obj("s3://lake/warehouse/t1/new"), bytes::Bytes::new())
        .expect_err("read token must not write");
    // The root credential still reads everything (sanity).
    w.store.get(&w.root, &obj("s3://lake/warehouse/t10/part-0")).unwrap();
}

// ---------------------------------------------------------------------
// 2. Expiry + renewal: an aged-out token stops working, and renewal
//    re-runs full authorization — a revocation issued after the original
//    vend denies the renewal (audited), and a re-grant restores it.
// ---------------------------------------------------------------------

#[test]
fn expired_then_renewed_token_rerurns_full_authorization() {
    let w = world();
    let admin = Context::user(ADMIN);
    let bob = Context::user("bob");
    let table = FullName::parse("main.s.t1").unwrap();
    let table_id = w.uc.get_table(&admin, &w.ms, "main.s.t1").unwrap().id.clone();

    // Bob cannot vend before any grant.
    let denied = w
        .uc
        .temp_credentials(&bob, &w.ms, &table, "relation", AccessLevel::Read)
        .expect_err("ungranted principal must not vend");
    assert!(matches!(denied, UcError::PermissionDenied(_) | UcError::NotFound(_)));

    // USE CATALOG + USE SCHEMA + SELECT in one call; now the vend works.
    w.uc.grant_read_path(&admin, &w.ms, "main.s.t1", "bob").unwrap();
    let tok = w
        .uc
        .temp_credentials(&bob, &w.ms, &table, "relation", AccessLevel::Read)
        .unwrap();
    let part = obj("s3://lake/warehouse/t1/part-0");
    w.store.get(&Credential::Temp(tok.clone()), &part).unwrap();

    // Age the token out: the store now rejects it outright.
    let ttl = UcConfig::default().cred_ttl_ms;
    w.clock.advance_ms(ttl + 1);
    w.store
        .get(&Credential::Temp(tok), &part)
        .expect_err("expired token must be rejected");

    // A revocation issued while the engine was away must be honored by
    // the renewal path — it re-runs authorization, not just re-signing.
    w.uc.revoke(&admin, &w.ms, &table, "relation", "bob", Privilege::Select).unwrap();
    let denied = w
        .uc
        .renew_read_credential(&bob, &w.ms, &table_id)
        .expect_err("renewal after revocation must be denied");
    assert!(matches!(denied, UcError::PermissionDenied(_)));
    let denials = w.uc.audit_log().query(|r| {
        r.principal == "bob"
            && r.action == "renewTemporaryCredentials"
            && r.decision == AuditDecision::Deny
    });
    assert!(!denials.is_empty(), "denied renewal must be audited");

    // Re-grant: renewal succeeds and the fresh token works again.
    w.uc.grant(&admin, &w.ms, &table, "relation", "bob", Privilege::Select).unwrap();
    let renewed = w.uc.renew_read_credential(&bob, &w.ms, &table_id).unwrap();
    assert!(renewed.remaining_ms(w.clock.now_ms()) > 0);
    w.store.get(&Credential::Temp(renewed), &part).unwrap();
    let allows = w.uc.audit_log().query(|r| {
        r.principal == "bob"
            && r.action == "renewTemporaryCredentials"
            && r.decision == AuditDecision::Allow
    });
    assert!(!allows.is_empty(), "successful renewal must be audited");
}
