//! The database handle: versioned storage, commit sequencing, GC.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use uc_cloudstore::faults::FaultPlan;
use uc_cloudstore::latency::{LatencyModel, OpClass};
use uc_obs::Obs;

use crate::changelog::ChangeLog;
use crate::pool::ConnectionPool;
use crate::stats::DbStats;
use crate::txn::{ReadTxn, WriteTxn};

/// One visible state of a row at a point in commit history.
#[derive(Debug, Clone)]
pub(crate) struct Version {
    pub csn: u64,
    /// `None` is a tombstone (the row was deleted at this CSN).
    pub value: Option<Bytes>,
}

/// Ascending-CSN version chain for a single row.
#[derive(Debug, Default, Clone)]
pub(crate) struct VersionChain {
    pub versions: Vec<Version>,
}

impl VersionChain {
    /// The version visible at `snapshot`, if any. Versions are appended in
    /// commit order, so CSNs ascend and visibility is a binary search —
    /// chains for hot keys (e.g. the metastore version row) grow long.
    pub fn visible_at(&self, snapshot: u64) -> Option<&Version> {
        let idx = self.versions.partition_point(|v| v.csn <= snapshot);
        if idx == 0 {
            None
        } else {
            Some(&self.versions[idx - 1])
        }
    }

    /// CSN of the newest version, 0 if the chain is empty.
    pub fn latest_csn(&self) -> u64 {
        self.versions.last().map(|v| v.csn).unwrap_or(0)
    }
}

pub(crate) type Table = BTreeMap<String, VersionChain>;

/// Tuning knobs for the simulated database.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Concurrent connections (Fig 10(b)'s bottleneck resource).
    pub pool_size: usize,
    /// Injected latency per operation class.
    pub latency: LatencyModel,
    /// Fault plan consulted at the commit boundary (chaos tests).
    pub faults: FaultPlan,
    /// Observability handle; `txdb.*` counters and commit spans are
    /// recorded into it.
    pub obs: Obs,
}

impl Default for DbConfig {
    fn default() -> Self {
        // Unit-test defaults: ample pool, no injected latency, no faults.
        DbConfig {
            pool_size: 64,
            latency: LatencyModel::zero(),
            faults: FaultPlan::disabled(),
            obs: Obs::disabled(),
        }
    }
}

impl DbConfig {
    /// A configuration resembling a remote OLTP database: a modest pool and
    /// a uniform per-operation round-trip latency.
    pub fn remote(pool_size: usize, round_trip: Duration) -> Self {
        DbConfig { pool_size, latency: LatencyModel::uniform(round_trip), ..Default::default() }
    }
}

pub(crate) struct DbInner {
    pub tables: RwLock<BTreeMap<String, Table>>,
    /// Last committed CSN. Snapshots read this without locking.
    pub csn: AtomicU64,
    /// Serializes commit validation + apply.
    pub commit_lock: Mutex<()>,
    pub changelog: ChangeLog,
    pub pool: ConnectionPool,
    pub latency: LatencyModel,
    pub stats: DbStats,
    pub faults: FaultPlan,
    pub obs: Obs,
    /// Test-only mutation switch: when set, commits skip serializability
    /// validation entirely. Exists so the history checker can prove it
    /// detects the resulting lost-update/duplicate-version anomalies.
    pub weaken_validation: AtomicBool,
}

/// Shareable database handle. Cloning shares the storage — the model for
/// multiple catalog nodes over one backend database.
#[derive(Clone)]
pub struct Db {
    pub(crate) inner: Arc<DbInner>,
}

impl Db {
    pub fn new(config: DbConfig) -> Self {
        Db {
            inner: Arc::new(DbInner {
                tables: RwLock::new(BTreeMap::new()),
                csn: AtomicU64::new(0),
                commit_lock: Mutex::new(()),
                changelog: ChangeLog::new(),
                pool: ConnectionPool::wired(config.pool_size, config.obs.registry()),
                latency: config.latency,
                stats: DbStats::wired(config.obs.registry()),
                faults: config.faults,
                obs: config.obs,
                weaken_validation: AtomicBool::new(false),
            }),
        }
    }

    /// Database with default (test) configuration.
    pub fn in_memory() -> Self {
        Db::new(DbConfig::default())
    }

    /// Last committed commit sequence number.
    pub fn current_csn(&self) -> u64 {
        self.inner.csn.load(Ordering::Acquire)
    }

    /// Begin a snapshot-isolated read-only transaction.
    pub fn begin_read(&self) -> ReadTxn {
        ReadTxn::new(self.clone(), self.current_csn())
    }

    /// Begin a read-only transaction pinned at an explicit snapshot. The
    /// catalog uses this to serve reads at its cached metastore version.
    pub fn begin_read_at(&self, snapshot: u64) -> ReadTxn {
        ReadTxn::new(self.clone(), snapshot.min(self.current_csn()))
    }

    /// Begin a serializable read-write transaction.
    pub fn begin_write(&self) -> WriteTxn {
        WriteTxn::new(self.clone(), self.current_csn())
    }

    /// The committed change log.
    pub fn changelog(&self) -> &ChangeLog {
        &self.inner.changelog
    }

    /// Operation counters.
    pub fn stats(&self) -> &DbStats {
        &self.inner.stats
    }

    /// Connection pool (exposed for wait diagnostics in benches).
    pub fn pool(&self) -> &ConnectionPool {
        &self.inner.pool
    }

    /// Fault plan consulted at the commit boundary.
    pub fn faults(&self) -> &FaultPlan {
        &self.inner.faults
    }

    /// Observability handle this database records into.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Test-only: disable (or restore) commit-time serializability
    /// validation. With validation off, concurrent writers silently lose
    /// updates — the deliberate wound `uc-check` must detect. Never call
    /// this outside checker "teeth" tests.
    #[doc(hidden)]
    pub fn set_unsafe_skip_commit_validation(&self, skip: bool) {
        self.inner.weaken_validation.store(skip, Ordering::Relaxed);
    }

    /// Read one row outside any transaction, at the latest committed state.
    /// Convenience for tests and tools; normal code uses transactions.
    pub fn get_latest(&self, table: &str, key: &str) -> Option<Bytes> {
        let snapshot = self.current_csn();
        let guard = self.inner.tables.read();
        guard
            .get(table)?
            .get(key)?
            .visible_at(snapshot)
            .and_then(|v| v.value.clone())
    }

    /// Garbage-collect version chains: every chain keeps its newest version
    /// at or below `horizon_csn` plus everything newer. Chains reduced to a
    /// single old tombstone are removed entirely.
    ///
    /// Correctness contract: callers must ensure no active snapshot is older
    /// than `horizon_csn`.
    pub fn gc(&self, horizon_csn: u64) {
        let mut guard = self.inner.tables.write();
        for table in guard.values_mut() {
            table.retain(|_, chain| {
                let keep_from = chain
                    .versions
                    .iter()
                    .rposition(|v| v.csn <= horizon_csn)
                    .unwrap_or(0);
                if keep_from > 0 {
                    chain.versions.drain(..keep_from);
                }
                // Drop rows that are just an old tombstone.
                !(chain.versions.len() == 1
                    && chain.versions[0].value.is_none()
                    && chain.versions[0].csn <= horizon_csn)
            });
        }
    }

    /// Total number of live (non-tombstone latest) rows across all tables.
    pub fn live_rows(&self) -> usize {
        let snapshot = self.current_csn();
        let guard = self.inner.tables.read();
        guard
            .values()
            .flat_map(|t| t.values())
            .filter(|chain| chain.visible_at(snapshot).is_some_and(|v| v.value.is_some()))
            .count()
    }

    /// Apply an operation's pool + latency cost. Internal to the crate.
    pub(crate) fn charge(&self, class: OpClass) {
        let _permit = self.inner.pool.acquire();
        self.inner.latency.apply(class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_db_reads_nothing() {
        let db = Db::in_memory();
        assert_eq!(db.current_csn(), 0);
        assert_eq!(db.get_latest("t", "k"), None);
        assert_eq!(db.live_rows(), 0);
    }

    #[test]
    fn gc_trims_old_versions_but_keeps_visible_one() {
        let db = Db::in_memory();
        for i in 0..5 {
            let mut tx = db.begin_write();
            tx.put("t", "k", Bytes::from(format!("v{i}")));
            tx.commit().unwrap();
        }
        assert_eq!(db.current_csn(), 5);
        db.gc(5);
        assert_eq!(db.get_latest("t", "k"), Some(Bytes::from_static(b"v4")));
        let guard = db.inner.tables.read();
        assert_eq!(guard["t"]["k"].versions.len(), 1);
    }

    #[test]
    fn gc_removes_old_tombstones() {
        let db = Db::in_memory();
        let mut tx = db.begin_write();
        tx.put("t", "k", Bytes::from_static(b"v"));
        tx.commit().unwrap();
        let mut tx = db.begin_write();
        tx.delete("t", "k");
        tx.commit().unwrap();
        db.gc(db.current_csn());
        let guard = db.inner.tables.read();
        assert!(!guard["t"].contains_key("k"));
    }

    #[test]
    fn gc_preserves_versions_above_horizon() {
        let db = Db::in_memory();
        let mut tx = db.begin_write();
        tx.put("t", "k", Bytes::from_static(b"old"));
        tx.commit().unwrap(); // csn 1
        let mut tx = db.begin_write();
        tx.put("t", "k", Bytes::from_static(b"new"));
        tx.commit().unwrap(); // csn 2
        db.gc(1);
        // a snapshot at 1 must still see "old"
        let rt = db.begin_read_at(1);
        assert_eq!(rt.get("t", "k"), Some(Bytes::from_static(b"old")));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn begin_read_at_clamps_to_current_csn() {
        let db = Db::in_memory();
        let mut tx = db.begin_write();
        tx.put("t", "k", Bytes::from_static(b"v"));
        tx.commit().unwrap();
        let rt = db.begin_read_at(9999);
        assert_eq!(rt.snapshot_csn(), db.current_csn());
        assert!(rt.get("t", "k").is_some());
    }

    #[test]
    fn live_rows_counts_only_visible_rows() {
        let db = Db::in_memory();
        for key in ["a", "b", "c"] {
            let mut tx = db.begin_write();
            tx.put("t", key, Bytes::from_static(b"v"));
            tx.commit().unwrap();
        }
        assert_eq!(db.live_rows(), 3);
        let mut tx = db.begin_write();
        tx.delete("t", "b");
        tx.commit().unwrap();
        assert_eq!(db.live_rows(), 2);
    }

    #[test]
    fn pool_wait_stats_accumulate_under_contention() {
        let db = Db::new(DbConfig {
            pool_size: 1,
            latency: LatencyModel::uniform(std::time::Duration::from_millis(2)),
            ..Default::default()
        });
        let mut tx = db.begin_write();
        tx.put("t", "k", Bytes::from_static(b"v"));
        tx.commit().unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    let _ = db.begin_read().get("t", "k");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (total_wait, waits) = db.pool().wait_stats();
        assert!(waits > 0, "pool of 1 must have queued readers");
        assert!(total_wait > std::time::Duration::ZERO);
    }
}
