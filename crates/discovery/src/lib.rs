#![forbid(unsafe_code)]
//! Second-tier discovery services (§4.4): search over catalog metadata.
//!
//! The discovery service is a *background* consumer of the core catalog:
//! it ingests the metadata change-event stream to keep an inverted index
//! over names, comments, and tags, and answers search queries filtered
//! through the catalog's batched authorization API — so users only ever
//! see results they could see in the operational catalog.
//!
//! Two synchronization strategies are implemented, matching the paper's
//! discussion of the design space:
//!
//! * [`DiscoveryService::sync`] — event-driven: consume only what changed
//!   since the last offset (cheap, fresh);
//! * [`DiscoveryService::sync_by_polling`] — rescan the full metadata via
//!   the query API (what discovery catalogs must do against catalogs
//!   without change streams; the ablation bench quantifies the cost).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use parking_lot::RwLock;
use uc_catalog::events::ChangeOp;
use uc_catalog::ids::Uid;
use uc_catalog::service::{Context, UnityCatalog};
use uc_catalog::types::SecurableKind;
use uc_catalog::UcResult;

/// An indexed document: the searchable projection of one securable.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedEntity {
    pub id: Uid,
    pub kind: SecurableKind,
    pub name: String,
    pub comment: Option<String>,
    pub tags: Vec<(String, String)>,
}

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    pub id: Uid,
    pub kind: SecurableKind,
    pub name: String,
}

/// Synchronization counters (for the events-vs-polling ablation).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyncStats {
    /// Events consumed so far.
    pub events_consumed: u64,
    /// Entities (re)indexed.
    pub entities_indexed: u64,
    /// Entities removed from the index.
    pub entities_removed: u64,
    /// Catalog API calls made during synchronization.
    pub catalog_calls: u64,
}

struct IndexState {
    /// token → entity ids.
    postings: BTreeMap<String, BTreeSet<Uid>>,
    /// id → document (for de-indexing and hit rendering).
    docs: HashMap<Uid, IndexedEntity>,
    next_offset: u64,
    stats: SyncStats,
}

/// The discovery service for one metastore.
pub struct DiscoveryService {
    uc: Arc<UnityCatalog>,
    ms: Uid,
    /// Platform identity with visibility over the metastore (typically a
    /// metastore admin service principal).
    service_ctx: Context,
    state: RwLock<IndexState>,
}

impl DiscoveryService {
    pub fn new(uc: Arc<UnityCatalog>, ms: Uid, service_principal: &str) -> Self {
        DiscoveryService {
            uc,
            ms,
            service_ctx: Context::user(service_principal),
            state: RwLock::new(IndexState {
                postings: BTreeMap::new(),
                docs: HashMap::new(),
                next_offset: 0,
                stats: SyncStats::default(),
            }),
        }
    }

    /// Event-driven incremental sync. Returns how many events were
    /// processed.
    pub fn sync(&self) -> UcResult<usize> {
        let _span = self.uc.obs().span_timed("discovery", "sync");
        let offset = self.state.read().next_offset;
        let (events, next) = self.uc.events_since(offset);
        let count = events.len();
        let mut touched: BTreeMap<Uid, ChangeOp> = BTreeMap::new();
        for ev in &events {
            if ev.metastore != self.ms {
                continue;
            }
            // Later events for the same entity supersede earlier ones.
            touched.insert(ev.entity_id.clone(), ev.op);
        }
        // Fetch updated entities *before* taking the index write lock:
        // get_entity_by_id re-enters the catalog service (a yield point
        // under the deterministic scheduler), and the index lock must not
        // be held across it — readers would stall and the lock-order
        // checker flags the inversion.
        let mut fetched = Vec::with_capacity(touched.len());
        let mut calls = 0u64;
        for (id, op) in touched {
            let ent = match op {
                ChangeOp::Delete => None,
                _ => {
                    calls += 1;
                    // A fetch that fails raced with a delete: drop below.
                    self.uc.get_entity_by_id(&self.service_ctx, &self.ms, &id).ok()
                }
            };
            fetched.push((id, op, ent));
        }
        let mut state = self.state.write();
        state.stats.events_consumed += count as u64;
        state.stats.catalog_calls += calls;
        for (id, op, ent) in fetched {
            match (op, ent) {
                (ChangeOp::Delete, _) => {
                    Self::remove_doc(&mut state, &id);
                    state.stats.entities_removed += 1;
                }
                (_, Some(ent)) => {
                    let doc = IndexedEntity {
                        id: ent.id.clone(),
                        kind: ent.kind,
                        name: ent.name.clone(),
                        comment: ent.comment.clone(),
                        tags: ent.tags(),
                    };
                    Self::index_doc(&mut state, doc);
                    state.stats.entities_indexed += 1;
                }
                (_, None) => Self::remove_doc(&mut state, &id),
            }
        }
        state.next_offset = next;
        self.uc.obs().counter("discovery.sync.events").add(count as u64);
        Ok(count)
    }

    /// Polling-style full resync: rescan every entity via the metadata
    /// query API. Much more catalog load for the same freshness.
    pub fn sync_by_polling(&self) -> UcResult<usize> {
        let _span = self.uc.obs().span_timed("discovery", "sync_by_polling");
        let entities = self
            .uc
            .query_entities(&self.service_ctx, &self.ms, &[], usize::MAX)?;
        let mut state = self.state.write();
        state.stats.catalog_calls += 1;
        state.postings.clear();
        let count = entities.len();
        let live: BTreeSet<Uid> = entities.iter().map(|e| e.id.clone()).collect();
        state.docs.retain(|id, _| live.contains(id));
        for ent in entities {
            let doc = IndexedEntity {
                id: ent.id.clone(),
                kind: ent.kind,
                name: ent.name.clone(),
                comment: ent.comment.clone(),
                tags: ent.tags(),
            };
            Self::index_doc(&mut state, doc);
            state.stats.entities_indexed += 1;
        }
        Ok(count)
    }

    fn tokens_of(doc: &IndexedEntity) -> BTreeSet<String> {
        let mut tokens = BTreeSet::new();
        for part in doc.name.split(['_', '-', '.']) {
            if !part.is_empty() {
                tokens.insert(part.to_ascii_lowercase());
            }
        }
        if let Some(c) = &doc.comment {
            for word in c.split_whitespace() {
                tokens.insert(word.trim_matches(|ch: char| !ch.is_alphanumeric()).to_ascii_lowercase());
            }
        }
        for (k, v) in &doc.tags {
            tokens.insert(k.to_ascii_lowercase());
            if !v.is_empty() {
                tokens.insert(v.to_ascii_lowercase());
            }
        }
        tokens.remove("");
        tokens
    }

    fn index_doc(state: &mut IndexState, doc: IndexedEntity) {
        Self::remove_doc(state, &doc.id.clone());
        for token in Self::tokens_of(&doc) {
            state.postings.entry(token).or_default().insert(doc.id.clone());
        }
        state.docs.insert(doc.id.clone(), doc);
    }

    fn remove_doc(state: &mut IndexState, id: &Uid) {
        if let Some(doc) = state.docs.remove(id) {
            for token in Self::tokens_of(&doc) {
                if let Some(set) = state.postings.get_mut(&token) {
                    set.remove(id);
                    if set.is_empty() {
                        state.postings.remove(&token);
                    }
                }
            }
        }
    }

    /// Search for entities matching all query tokens, visible to
    /// `principal`. Authorization is enforced through the catalog's batch
    /// visibility API at query time — the index itself is not an
    /// authorization boundary.
    pub fn search(&self, principal: &str, query: &str) -> UcResult<Vec<SearchHit>> {
        let _span = self.uc.obs().span_timed("discovery", "search");
        self.uc.obs().counter("discovery.search.count").inc();
        let tokens: Vec<String> = query
            .split_whitespace()
            .map(|t| t.to_ascii_lowercase())
            .collect();
        if tokens.is_empty() {
            return Ok(Vec::new());
        }
        let state = self.state.read();
        let mut candidates: Option<BTreeSet<Uid>> = None;
        for token in &tokens {
            let matches: BTreeSet<Uid> = state
                .postings
                .range(token.clone()..)
                .take_while(|(t, _)| t.starts_with(token.as_str()))
                .flat_map(|(_, ids)| ids.iter().cloned())
                .collect();
            candidates = Some(match candidates {
                Some(prev) => prev.intersection(&matches).cloned().collect(),
                None => matches,
            });
        }
        let ids: Vec<Uid> = candidates.unwrap_or_default().into_iter().collect();
        let hits: Vec<SearchHit> = ids
            .iter()
            .filter_map(|id| state.docs.get(id))
            .map(|d| SearchHit { id: d.id.clone(), kind: d.kind, name: d.name.clone() })
            .collect();
        drop(state);
        // Authorization filter via the core service.
        let visible = self.uc.visible_batch(&self.ms, principal, &ids)?;
        Ok(hits
            .into_iter()
            .zip(visible)
            .filter_map(|(hit, ok)| ok.then_some(hit))
            .collect())
    }

    /// How many entities are indexed.
    pub fn indexed_count(&self) -> usize {
        self.state.read().docs.len()
    }

    /// Synchronization counters.
    pub fn stats(&self) -> SyncStats {
        self.state.read().stats
    }

    /// Freshness: events published but not yet consumed.
    pub fn lag(&self) -> u64 {
        let head = self.uc.event_bus().head();
        head.saturating_sub(self.state.read().next_offset)
    }
}
