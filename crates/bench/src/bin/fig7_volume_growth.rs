//! Figure 7: cumulative volumes created over time — the creation rate
//! itself accelerates as AI/ML workloads expand.

use uc_bench::print_table;
use uc_workload::timeline::generate_report;

fn main() {
    let report = generate_report(42, 24);
    let v = &report.volumes;
    let rows: Vec<Vec<String>> = v
        .cumulative
        .iter()
        .enumerate()
        .map(|(m, c)| {
            vec![
                format!("month {:>2}", m + 1),
                format!("{:>10.0}", v.monthly[m]),
                format!("{:>12.0}", c),
            ]
        })
        .collect();
    print_table(
        "Fig 7 — volume creation over 24 months",
        &["month", "created/month", "cumulative"],
        &rows,
    );
    assert!(v.is_accelerating(), "the figure's key property");
    let first_q: f64 = v.monthly[..6].iter().sum();
    let last_q: f64 = v.monthly[18..].iter().sum();
    println!(
        "\nconclusion: monthly creation rate grew {:.1}× from the first to the last\n\
         half-year — volume growth is accelerating (matches paper)",
        last_q / first_q
    );
}
