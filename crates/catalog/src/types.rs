//! Common vocabulary: securable kinds, names, table classifications.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{UcError, UcResult};

/// Every kind of securable object the catalog manages.
///
/// Containers (`Metastore`, `Catalog`, `Schema`) hold other securables;
/// leaf kinds are data/AI assets or configuration objects. The set mirrors
/// the paper's object model (Fig 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SecurableKind {
    Metastore,
    Catalog,
    Schema,
    Table,
    View,
    Volume,
    Function,
    RegisteredModel,
    ModelVersion,
    StorageCredential,
    ExternalLocation,
    Connection,
    Share,
}

impl SecurableKind {
    /// Namespace group: two securables in the same parent and group cannot
    /// share a name. Tables and views share the `relation` group — "two
    /// table-like assets cannot have the same name in a given schema".
    pub fn name_group(self) -> &'static str {
        match self {
            SecurableKind::Metastore => "metastore",
            SecurableKind::Catalog => "catalog",
            SecurableKind::Schema => "schema",
            SecurableKind::Table | SecurableKind::View => "relation",
            SecurableKind::Volume => "volume",
            SecurableKind::Function => "function",
            SecurableKind::RegisteredModel => "model",
            SecurableKind::ModelVersion => "modelversion",
            SecurableKind::StorageCredential => "storagecred",
            SecurableKind::ExternalLocation => "extloc",
            SecurableKind::Connection => "connection",
            SecurableKind::Share => "share",
        }
    }

    /// The kind of parent this kind lives under, `None` for metastores.
    pub fn parent_kind(self) -> Option<SecurableKind> {
        match self {
            SecurableKind::Metastore => None,
            SecurableKind::Catalog => Some(SecurableKind::Metastore),
            SecurableKind::Schema => Some(SecurableKind::Catalog),
            SecurableKind::Table
            | SecurableKind::View
            | SecurableKind::Volume
            | SecurableKind::Function
            | SecurableKind::RegisteredModel => Some(SecurableKind::Schema),
            SecurableKind::ModelVersion => Some(SecurableKind::RegisteredModel),
            SecurableKind::StorageCredential
            | SecurableKind::ExternalLocation
            | SecurableKind::Connection
            | SecurableKind::Share => Some(SecurableKind::Metastore),
        }
    }

    /// Kinds that can have backing cloud storage (and therefore participate
    /// in one-asset-per-path and credential vending).
    pub fn has_storage(self) -> bool {
        matches!(
            self,
            SecurableKind::Table
                | SecurableKind::Volume
                | SecurableKind::RegisteredModel
                | SecurableKind::ModelVersion
                | SecurableKind::ExternalLocation
        )
    }

    /// True for the container levels of the three-level namespace.
    pub fn is_container(self) -> bool {
        matches!(
            self,
            SecurableKind::Metastore | SecurableKind::Catalog | SecurableKind::Schema
        )
    }

    pub fn as_str(self) -> &'static str {
        match self {
            SecurableKind::Metastore => "METASTORE",
            SecurableKind::Catalog => "CATALOG",
            SecurableKind::Schema => "SCHEMA",
            SecurableKind::Table => "TABLE",
            SecurableKind::View => "VIEW",
            SecurableKind::Volume => "VOLUME",
            SecurableKind::Function => "FUNCTION",
            SecurableKind::RegisteredModel => "REGISTERED_MODEL",
            SecurableKind::ModelVersion => "MODEL_VERSION",
            SecurableKind::StorageCredential => "STORAGE_CREDENTIAL",
            SecurableKind::ExternalLocation => "EXTERNAL_LOCATION",
            SecurableKind::Connection => "CONNECTION",
            SecurableKind::Share => "SHARE",
        }
    }
}

impl fmt::Display for SecurableKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A fully qualified three-level name: `catalog.schema.asset`. One- and
/// two-level forms name catalogs and schemas respectively.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FullName {
    pub parts: Vec<String>,
}

impl FullName {
    /// Parse a dotted name with 1–4 parts (4 covers model versions:
    /// `catalog.schema.model.version`).
    pub fn parse(s: &str) -> UcResult<FullName> {
        let parts: Vec<String> = s.split('.').map(|p| p.trim().to_string()).collect();
        if parts.is_empty() || parts.len() > 4 || parts.iter().any(|p| p.is_empty()) {
            return Err(UcError::InvalidArgument(format!("bad qualified name: {s}")));
        }
        for p in &parts {
            validate_object_name(p)?;
        }
        Ok(FullName { parts })
    }

    pub fn of(parts: &[&str]) -> FullName {
        FullName { parts: parts.iter().map(|s| s.to_string()).collect() }
    }

    pub fn catalog(&self) -> &str {
        &self.parts[0]
    }

    pub fn schema(&self) -> Option<&str> {
        self.parts.get(1).map(|s| s.as_str())
    }

    pub fn asset(&self) -> Option<&str> {
        self.parts.get(2).map(|s| s.as_str())
    }

    pub fn len(&self) -> usize {
        self.parts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl fmt::Display for FullName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.parts.join("."))
    }
}

/// Validate an object name: non-empty, ≤ 255 chars, identifier-ish.
pub fn validate_object_name(name: &str) -> UcResult<()> {
    if name.is_empty() || name.len() > 255 {
        return Err(UcError::InvalidArgument(format!(
            "name must be 1–255 characters, got {:?}",
            name
        )));
    }
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return Err(UcError::InvalidArgument("empty object name".into()));
    };
    if !(first.is_ascii_alphabetic() || first == '_') {
        return Err(UcError::InvalidArgument(format!(
            "name must start with a letter or underscore: {name:?}"
        )));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(UcError::InvalidArgument(format!(
            "name may contain only alphanumerics, '_' and '-': {name:?}"
        )));
    }
    Ok(())
}

/// Who allocated a table's storage, plus the derived/federated variants —
/// the classification behind the paper's Fig 6(b) and Fig 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TableType {
    /// The catalog allocates and owns the storage path.
    Managed,
    /// The user brings an existing path under an external location.
    External,
    /// A SQL view over other relations.
    View,
    /// Mirrored from a foreign catalog via federation.
    Foreign,
    /// A shallow clone sharing the base table's data files.
    ShallowClone,
}

impl TableType {
    pub fn as_str(self) -> &'static str {
        match self {
            TableType::Managed => "MANAGED",
            TableType::External => "EXTERNAL",
            TableType::View => "VIEW",
            TableType::Foreign => "FOREIGN",
            TableType::ShallowClone => "SHALLOW_CLONE",
        }
    }

    pub fn parse(s: &str) -> Option<TableType> {
        match s {
            "MANAGED" => Some(TableType::Managed),
            "EXTERNAL" => Some(TableType::External),
            "VIEW" => Some(TableType::View),
            "FOREIGN" => Some(TableType::Foreign),
            "SHALLOW_CLONE" => Some(TableType::ShallowClone),
            _ => None,
        }
    }
}

/// Storage format of tabular data (Fig 8a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TableFormat {
    Delta,
    Iceberg,
    Parquet,
    Csv,
}

impl TableFormat {
    pub fn as_str(self) -> &'static str {
        match self {
            TableFormat::Delta => "DELTA",
            TableFormat::Iceberg => "ICEBERG",
            TableFormat::Parquet => "PARQUET",
            TableFormat::Csv => "CSV",
        }
    }

    pub fn parse(s: &str) -> Option<TableFormat> {
        match s {
            "DELTA" => Some(TableFormat::Delta),
            "ICEBERG" => Some(TableFormat::Iceberg),
            "PARQUET" => Some(TableFormat::Parquet),
            "CSV" => Some(TableFormat::Csv),
            _ => None,
        }
    }
}

/// Lifecycle state of an entity (§4.2.1 "Lifecycle").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LifecycleState {
    /// Being created; resources may still be provisioning.
    Provisioning,
    /// Live and addressable.
    Active,
    /// Soft-deleted: invisible to the namespace, awaiting GC.
    SoftDeleted,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_and_views_share_a_name_group() {
        assert_eq!(SecurableKind::Table.name_group(), SecurableKind::View.name_group());
        assert_ne!(SecurableKind::Table.name_group(), SecurableKind::Volume.name_group());
    }

    #[test]
    fn parent_kinds_form_the_hierarchy() {
        assert_eq!(SecurableKind::Catalog.parent_kind(), Some(SecurableKind::Metastore));
        assert_eq!(SecurableKind::Schema.parent_kind(), Some(SecurableKind::Catalog));
        assert_eq!(SecurableKind::Table.parent_kind(), Some(SecurableKind::Schema));
        assert_eq!(
            SecurableKind::ModelVersion.parent_kind(),
            Some(SecurableKind::RegisteredModel)
        );
        assert_eq!(SecurableKind::Metastore.parent_kind(), None);
    }

    #[test]
    fn storage_kinds() {
        assert!(SecurableKind::Table.has_storage());
        assert!(SecurableKind::Volume.has_storage());
        assert!(!SecurableKind::View.has_storage());
        assert!(!SecurableKind::Function.has_storage());
        assert!(!SecurableKind::Catalog.has_storage());
    }

    #[test]
    fn full_name_parses_three_levels() {
        let n = FullName::parse("main.sales.orders").unwrap();
        assert_eq!(n.catalog(), "main");
        assert_eq!(n.schema(), Some("sales"));
        assert_eq!(n.asset(), Some("orders"));
        assert_eq!(n.to_string(), "main.sales.orders");
    }

    #[test]
    fn full_name_rejects_bad_input() {
        assert!(FullName::parse("").is_err());
        assert!(FullName::parse("a..b").is_err());
        assert!(FullName::parse("a.b.c.d.e").is_err());
        assert!(FullName::parse("1abc").is_err());
        assert!(FullName::parse("a b").is_err());
    }

    #[test]
    fn object_name_validation() {
        assert!(validate_object_name("orders").is_ok());
        assert!(validate_object_name("_tmp-1").is_ok());
        assert!(validate_object_name("").is_err());
        assert!(validate_object_name("9lives").is_err());
        assert!(validate_object_name("has space").is_err());
        assert!(validate_object_name(&"x".repeat(256)).is_err());
        assert!(validate_object_name(&"x".repeat(255)).is_ok());
    }

    #[test]
    fn table_type_and_format_roundtrip() {
        for t in [
            TableType::Managed,
            TableType::External,
            TableType::View,
            TableType::Foreign,
            TableType::ShallowClone,
        ] {
            assert_eq!(TableType::parse(t.as_str()), Some(t));
        }
        for f in [TableFormat::Delta, TableFormat::Iceberg, TableFormat::Parquet, TableFormat::Csv] {
            assert_eq!(TableFormat::parse(f.as_str()), Some(f));
        }
        assert_eq!(TableType::parse("NOPE"), None);
    }
}
