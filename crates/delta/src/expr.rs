//! A small expression language over rows.
//!
//! One expression type serves three consumers: the engine's `WHERE`
//! clauses, the catalog's fine-grained access control (row filters and
//! column masks, §4.3.2), and scan-time file pruning. FGAC expressions may
//! reference the calling principal via [`Expr::CurrentUser`] and
//! [`Expr::IsAccountGroupMember`], mirroring Unity Catalog's SQL UDF-based
//! policies; these evaluate against the [`EvalContext`].
//!
//! Evaluation uses SQL-flavoured three-valued logic: comparisons with NULL
//! yield NULL, and a row passes a filter only if it evaluates to TRUE.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

use crate::error::{DeltaError, DeltaResult};
use crate::value::{Row, Schema, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference by name.
    Column(String),
    /// Constant.
    Literal(Value),
    /// Binary comparison.
    Cmp { op: CmpOp, lhs: Box<Expr>, rhs: Box<Expr> },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    /// `<expr> IS NULL`.
    IsNull(Box<Expr>),
    /// The calling principal's name (FGAC policies).
    CurrentUser,
    /// True if the calling principal is in the named group (FGAC policies).
    IsAccountGroupMember(String),
}

impl Expr {
    /// `col <op> literal` convenience constructor.
    pub fn cmp(col: &str, op: CmpOp, lit: impl Into<Value>) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(Expr::Column(col.to_string())),
            rhs: Box::new(Expr::Literal(lit.into())),
        }
    }

    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// All column names referenced by the expression.
    pub fn referenced_columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Column(c) => {
                out.insert(c.clone());
            }
            Expr::Cmp { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) => e.collect_columns(out),
            Expr::Literal(_) | Expr::CurrentUser | Expr::IsAccountGroupMember(_) => {}
        }
    }

    /// Evaluate to a value. Boolean contexts use [`Expr::eval_bool`].
    pub fn eval(&self, schema: &Schema, row: &Row, ctx: &EvalContext) -> DeltaResult<Value> {
        Ok(match self {
            Expr::Column(name) => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| DeltaError::Schema(format!("unknown column {name}")))?;
                row.get(idx)
                    .cloned()
                    .ok_or_else(|| DeltaError::Schema(format!("row too short for {name}")))?
            }
            Expr::Literal(v) => v.clone(),
            Expr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(schema, row, ctx)?;
                let r = rhs.eval(schema, row, ctx)?;
                match l.try_cmp(&r) {
                    Some(ord) => Value::Bool(op.test(ord)),
                    None => Value::Null, // NULL comparison → NULL
                }
            }
            Expr::And(a, b) => {
                match (a.eval_bool3(schema, row, ctx)?, b.eval_bool3(schema, row, ctx)?) {
                    (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                }
            }
            Expr::Or(a, b) => {
                match (a.eval_bool3(schema, row, ctx)?, b.eval_bool3(schema, row, ctx)?) {
                    (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                    (Some(false), Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                }
            }
            Expr::Not(e) => match e.eval_bool3(schema, row, ctx)? {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            Expr::IsNull(e) => Value::Bool(e.eval(schema, row, ctx)?.is_null()),
            Expr::CurrentUser => Value::Str(ctx.user.clone()),
            Expr::IsAccountGroupMember(g) => Value::Bool(ctx.groups.contains(g)),
        })
    }

    /// Evaluate as a SQL boolean: `Some(true/false)` or `None` for NULL.
    fn eval_bool3(
        &self,
        schema: &Schema,
        row: &Row,
        ctx: &EvalContext,
    ) -> DeltaResult<Option<bool>> {
        match self.eval(schema, row, ctx)? {
            Value::Bool(b) => Ok(Some(b)),
            Value::Null => Ok(None),
            other => Err(DeltaError::Schema(format!(
                "expected boolean, got {other}"
            ))),
        }
    }

    /// Filter semantics: the row passes only on TRUE (NULL filters out).
    pub fn eval_bool(&self, schema: &Schema, row: &Row, ctx: &EvalContext) -> DeltaResult<bool> {
        Ok(self.eval_bool3(schema, row, ctx)? == Some(true))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Cmp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::IsNull(e) => write!(f, "{e} IS NULL"),
            Expr::CurrentUser => write!(f, "current_user()"),
            Expr::IsAccountGroupMember(g) => write!(f, "is_account_group_member('{g}')"),
        }
    }
}

/// Who is evaluating — the principal context FGAC policies depend on.
#[derive(Debug, Clone, Default)]
pub struct EvalContext {
    pub user: String,
    pub groups: BTreeSet<String>,
}

impl EvalContext {
    pub fn new(user: &str, groups: impl IntoIterator<Item = String>) -> Self {
        EvalContext { user: user.to_string(), groups: groups.into_iter().collect() }
    }

    /// Anonymous context for plain scan predicates.
    pub fn anonymous() -> Self {
        EvalContext::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("dept", DataType::Str),
            Field::new("salary", DataType::Float),
        ])
    }

    fn row(id: i64, dept: &str, salary: f64) -> Row {
        vec![Value::Int(id), Value::Str(dept.into()), Value::Float(salary)]
    }

    fn ctx() -> EvalContext {
        EvalContext::new("alice", vec!["hr".to_string()])
    }

    #[test]
    fn comparison_operators() {
        let s = schema();
        let r = row(5, "eng", 100.0);
        for (op, expect) in [
            (CmpOp::Eq, false),
            (CmpOp::Ne, true),
            (CmpOp::Lt, true),
            (CmpOp::Le, true),
            (CmpOp::Gt, false),
            (CmpOp::Ge, false),
        ] {
            let e = Expr::cmp("id", op, 10i64);
            assert_eq!(e.eval_bool(&s, &r, &ctx()).unwrap(), expect, "op {op}");
        }
    }

    #[test]
    fn and_or_not_logic() {
        let s = schema();
        let r = row(5, "eng", 100.0);
        let t = Expr::cmp("id", CmpOp::Eq, 5i64);
        let f = Expr::cmp("id", CmpOp::Eq, 6i64);
        assert!(t.clone().and(t.clone()).eval_bool(&s, &r, &ctx()).unwrap());
        assert!(!t.clone().and(f.clone()).eval_bool(&s, &r, &ctx()).unwrap());
        assert!(t.clone().or(f.clone()).eval_bool(&s, &r, &ctx()).unwrap());
        assert!(!f.clone().or(f.clone()).eval_bool(&s, &r, &ctx()).unwrap());
        assert!(Expr::Not(Box::new(f)).eval_bool(&s, &r, &ctx()).unwrap());
    }

    #[test]
    fn null_comparisons_filter_out() {
        let s = schema();
        let r = vec![Value::Null, Value::Str("eng".into()), Value::Null];
        // NULL = 5 → NULL → row filtered out
        assert!(!Expr::cmp("id", CmpOp::Eq, 5i64).eval_bool(&s, &r, &ctx()).unwrap());
        // NULL <> 5 also filters out (three-valued logic)
        assert!(!Expr::cmp("id", CmpOp::Ne, 5i64).eval_bool(&s, &r, &ctx()).unwrap());
        // IS NULL is the way to match nulls
        assert!(Expr::IsNull(Box::new(Expr::Column("id".into())))
            .eval_bool(&s, &r, &ctx())
            .unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let s = schema();
        let r = vec![Value::Null, Value::Str("eng".into()), Value::Float(1.0)];
        let null_cmp = Expr::cmp("id", CmpOp::Eq, 1i64); // NULL
        let true_cmp = Expr::cmp("dept", CmpOp::Eq, "eng"); // TRUE
        let false_cmp = Expr::cmp("dept", CmpOp::Eq, "hr"); // FALSE
        // NULL AND FALSE = FALSE → filtered, NULL AND TRUE = NULL → filtered
        assert!(!null_cmp.clone().and(false_cmp.clone()).eval_bool(&s, &r, &ctx()).unwrap());
        assert!(!null_cmp.clone().and(true_cmp.clone()).eval_bool(&s, &r, &ctx()).unwrap());
        // NULL OR TRUE = TRUE → passes
        assert!(null_cmp.clone().or(true_cmp).eval_bool(&s, &r, &ctx()).unwrap());
        // NULL OR FALSE = NULL → filtered
        assert!(!null_cmp.or(false_cmp).eval_bool(&s, &r, &ctx()).unwrap());
    }

    #[test]
    fn principal_functions() {
        let s = schema();
        let r = row(1, "eng", 1.0);
        let is_alice = Expr::Cmp {
            op: CmpOp::Eq,
            lhs: Box::new(Expr::CurrentUser),
            rhs: Box::new(Expr::Literal("alice".into())),
        };
        assert!(is_alice.eval_bool(&s, &r, &ctx()).unwrap());
        assert!(Expr::IsAccountGroupMember("hr".into())
            .eval_bool(&s, &r, &ctx())
            .unwrap());
        assert!(!Expr::IsAccountGroupMember("finance".into())
            .eval_bool(&s, &r, &ctx())
            .unwrap());
    }

    #[test]
    fn unknown_column_is_a_schema_error() {
        let s = schema();
        let r = row(1, "eng", 1.0);
        assert!(matches!(
            Expr::cmp("nope", CmpOp::Eq, 1i64).eval(&s, &r, &ctx()),
            Err(DeltaError::Schema(_))
        ));
    }

    #[test]
    fn referenced_columns_collects_all() {
        let e = Expr::cmp("a", CmpOp::Eq, 1i64)
            .and(Expr::cmp("b", CmpOp::Lt, 2i64).or(Expr::IsNull(Box::new(Expr::Column("c".into())))));
        let cols: Vec<_> = e.referenced_columns().into_iter().collect();
        assert_eq!(cols, vec!["a", "b", "c"]);
    }

    #[test]
    fn expr_serde_roundtrip() {
        let e = Expr::cmp("salary", CmpOp::Ge, 50.0).and(Expr::IsAccountGroupMember("hr".into()));
        let json = serde_json::to_string(&e).unwrap();
        let back: Expr = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn display_is_sql_like() {
        let e = Expr::cmp("dept", CmpOp::Eq, "eng").and(Expr::cmp("id", CmpOp::Gt, 3i64));
        assert_eq!(e.to_string(), "(dept = 'eng' AND id > 3)");
    }
}
