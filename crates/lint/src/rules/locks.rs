//! Lock-discipline rule. Tracks lock-guard lifetimes per function body
//! (a conservative, brace-scoped model of Rust drop semantics) and flags:
//!
//!   * guards live across `yield_point(..)` — a held lock would leak into
//!     the deterministic scheduler's interleaving search;
//!   * guards live across a zero-arg `.commit()` — the txdb commit path
//!     takes `commit_lock` + `tables` internally, so arriving with a lock
//!     held nests foreign guards under catalog/service locks;
//!   * guards live across any call that *reaches* a sched yield point
//!     through the workspace call graph — the yieldful-call set is
//!     inferred (`CallGraph::yields_star`), not hand-curated, so a new
//!     yieldful API is covered the moment it exists;
//!   * acquisitions that invert the pinned `[locks] order` list, and
//!     same-class nesting (self-deadlock with non-reentrant locks) —
//!     including acquisitions performed by a *callee* (`acq_star`: the
//!     transitive may-acquire set propagates through call sites);
//!
//! Every (held → acquired) pair — direct or via a callee — is recorded
//! as a lock-order graph edge; the driver dedupes, sorts, and emits the
//! graph as an artifact and runs a cycle check over it, so a deadlock
//! cycle split across two functions is caught exactly like a nested one.
//!
//! Remaining false negatives (documented in DESIGN.md §8): guard
//! liveness is function-local (a guard *returned* to a caller is
//! invisible), a temporary guard is considered dead once any block that
//! opened after the acquisition closes, and a call site the graph cannot
//! resolve (dynamic dispatch, closures passed as values) contributes no
//! interprocedural facts.

use std::collections::{BTreeMap, BTreeSet};

use super::{is_ident, is_punct, Diagnostic, FileCtx, RULE_LOCKS};
use crate::callgraph::CallGraph;
use crate::lexer::{Kind, Token};

/// One inferred acquisition-order edge: `held` was live when `acquired`
/// was taken (directly, or inside a resolved callee).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    pub file: String,
    pub line: u32,
}

/// One observed acquisition site. The driver censuses these so the graph
/// artifact names every lock class the workspace touches — classes with
/// no nesting edges (the pool, the per-metastore write gate) still appear
/// as nodes, proving the linter tracked them.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockAcq {
    pub class: String,
    pub file: String,
    pub line: u32,
}

/// Interprocedural context handed to the guard walk by the driver:
/// the call graph plus the fixpoint summaries computed over it.
pub struct Interproc<'a> {
    pub graph: &'a CallGraph,
    /// Index of this file's unit in the graph's unit table.
    pub unit: usize,
    /// def -> can reach a sched yield point.
    pub yields: &'a [bool],
    /// def -> witness next-hop edge for the yield chain.
    pub yhop: &'a [Option<usize>],
    /// def -> transitive may-acquire lock classes.
    pub star: &'a [BTreeSet<String>],
    /// (def, class) -> witness edge for the acquisition chain.
    pub witness: &'a BTreeMap<(usize, String), usize>,
}

#[derive(Debug)]
struct Guard {
    class: String,
    name: Option<String>,
    bind_depth: i64,
    line: u32,
}

const GUARD_METHODS: &[&str] = &["read", "write", "lock", "try_lock"];

fn rank_of(order: &[String], class: &str) -> Option<usize> {
    order.iter().position(|c| c == class)
}

/// Classify the token at `i` as a lock acquisition site, returning its
/// lock class. Shared by the guard walk here and the per-def census that
/// seeds `acq_star` in the driver: `.read()` / `.write()` / `.lock()` /
/// `.try_lock()` on a configured receiver ident, `.write_gate()`, or
/// `.acquire()` on a pool.
pub fn acq_class_at(
    toks: &[Token],
    i: usize,
    close: usize,
    receivers: &[String],
    crate_name: &str,
) -> Option<String> {
    let t = &toks[i];
    if t.kind != Kind::Ident
        || i == 0
        || !is_punct(&toks[i - 1], ".")
        || i + 2 >= close
        || !is_punct(&toks[i + 1], "(")
        || !is_punct(&toks[i + 2], ")")
    {
        return None;
    }
    if t.text == "write_gate" {
        Some(format!("{crate_name}.gate"))
    } else if t.text == "acquire" && i >= 2 && is_ident(&toks[i - 2], "pool") {
        Some(format!("{crate_name}.pool"))
    } else if GUARD_METHODS.contains(&t.text.as_str())
        && i >= 2
        && toks[i - 2].kind == Kind::Ident
        && receivers.iter().any(|r| r == &toks[i - 2].text)
    {
        Some(format!("{}.{}", crate_name, toks[i - 2].text))
    } else {
        None
    }
}

pub fn check(
    ctx: &FileCtx<'_>,
    inter: &Interproc<'_>,
    out: &mut Vec<Diagnostic>,
    edges: &mut Vec<LockEdge>,
) {
    let receivers = ctx.cfg.list("locks", "guard_receivers");
    let order = ctx.cfg.list("locks", "order");
    let toks = ctx.tokens;

    for (fn_idx, f) in ctx.scan.fns.iter().enumerate() {
        let Some((open, close)) = f.body else { continue };
        if ctx.scan.test_mask[open] {
            continue;
        }
        let def_id = inter.graph.def_of_fn.get(&(inter.unit, fn_idx)).copied();
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth: i64 = 1;
        let mut pending_let: Option<(String, i64)> = None;
        let mut i = open + 1;
        while i < close {
            let t = &toks[i];
            if is_punct(t, "{") {
                depth += 1;
                i += 1;
                continue;
            }
            if is_punct(t, "}") {
                depth -= 1;
                guards.retain(|g| {
                    if g.name.is_some() {
                        depth >= g.bind_depth
                    } else {
                        depth > g.bind_depth
                    }
                });
                i += 1;
                continue;
            }
            if is_punct(t, ";") {
                guards.retain(|g| !(g.name.is_none() && g.bind_depth == depth));
                pending_let = None;
                i += 1;
                continue;
            }
            // `let [mut] name =` opens a candidate guard binding.
            if is_ident(t, "let") {
                let mut j = i + 1;
                if j < close && is_ident(&toks[j], "mut") {
                    j += 1;
                }
                if j + 1 < close
                    && toks[j].kind == Kind::Ident
                    && is_punct(&toks[j + 1], "=")
                {
                    pending_let = Some((toks[j].text.clone(), depth));
                }
                i += 1;
                continue;
            }
            // `drop(name)` releases a named guard early.
            if is_ident(t, "drop")
                && i + 2 < close
                && is_punct(&toks[i + 1], "(")
                && toks[i + 2].kind == Kind::Ident
            {
                let victim = &toks[i + 2].text;
                guards.retain(|g| g.name.as_deref() != Some(victim.as_str()));
                i += 3;
                continue;
            }
            // Hazards at a call-looking token while any guard is live.
            // The two *textual* special cases (a literal `yield_point(`,
            // a zero-arg `.commit()`) stay — the first is the yield seed
            // itself, the second covers the txdb commit internals that
            // the graph cannot always resolve. Everything else is the
            // graph's job.
            if t.kind == Kind::Ident && i + 1 < close && is_punct(&toks[i + 1], "(") {
                let callish_commit = t.text == "commit"
                    && i > 0
                    && is_punct(&toks[i - 1], ".")
                    && i + 2 < close
                    && is_punct(&toks[i + 2], ")");
                let textual = t.text == "yield_point" || callish_commit;
                if !guards.is_empty() && t.text == "yield_point" {
                    for g in &guards {
                        out.push(ctx.diag(
                            t.line,
                            RULE_LOCKS,
                            format!("guard `{}` (line {}) held across sched yield point", g.class, g.line),
                        ));
                    }
                } else if !guards.is_empty() && callish_commit {
                    for g in &guards {
                        out.push(ctx.diag(
                            t.line,
                            RULE_LOCKS,
                            format!("guard `{}` (line {}) held across txdb commit", g.class, g.line),
                        ));
                    }
                }
                // Interprocedural: consult the graph for what the callee
                // can do. Resolution is per (line, name), so shadowed or
                // unresolvable calls contribute nothing (conservative).
                if let Some(def_id) = def_id {
                    let callees = inter.graph.callees_at(def_id, t.line, &t.text);
                    for callee in callees {
                        // Yieldful-call inference (replaces the old
                        // `[locks] yieldful_calls` list).
                        if !textual && !guards.is_empty() && inter.yields[callee] {
                            let chain = inter.graph.yield_chain(callee, inter.yhop);
                            for g in &guards {
                                out.push(ctx.diag(
                                    t.line,
                                    RULE_LOCKS,
                                    format!(
                                        "guard `{}` (line {}) held across yielding call `{}()` ({chain})",
                                        g.class, g.line, t.text
                                    ),
                                ));
                            }
                        }
                        // Transitive acquisitions: classes the callee may
                        // take become edges (and order/nesting checks)
                        // against every live guard.
                        for class in inter.star[callee].iter() {
                            for g in &guards {
                                if &g.class == class {
                                    let chain =
                                        inter.graph.acq_chain(callee, class, inter.witness);
                                    out.push(ctx.diag(
                                        t.line,
                                        RULE_LOCKS,
                                        format!(
                                            "call `{}()` may re-acquire `{}` while a `{}` guard is held (line {}; via {chain})",
                                            t.text, class, g.class, g.line
                                        ),
                                    ));
                                    continue;
                                }
                                edges.push(LockEdge {
                                    held: g.class.clone(),
                                    acquired: class.clone(),
                                    file: ctx.rel_path.to_string(),
                                    line: t.line,
                                });
                                if let (Some(rh), Some(ra)) =
                                    (rank_of(&order, &g.class), rank_of(&order, class))
                                {
                                    if rh > ra {
                                        let chain = inter
                                            .graph
                                            .acq_chain(callee, class, inter.witness);
                                        out.push(ctx.diag(
                                            t.line,
                                            RULE_LOCKS,
                                            format!(
                                                "lock order inversion: call `{}()` may acquire `{}` while holding `{}` (pinned order puts `{}` first; via {chain})",
                                                t.text, class, g.class, class
                                            ),
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Direct acquisition site in this body.
            let acq_class = acq_class_at(toks, i, close, &receivers, ctx.crate_name);
            if let Some(class) = acq_class {
                for g in &guards {
                    if g.class == class {
                        out.push(ctx.diag(
                            t.line,
                            RULE_LOCKS,
                            format!(
                                "acquires `{}` while already holding a `{}` guard (line {})",
                                class, g.class, g.line
                            ),
                        ));
                        continue;
                    }
                    edges.push(LockEdge {
                        held: g.class.clone(),
                        acquired: class.clone(),
                        file: ctx.rel_path.to_string(),
                        line: t.line,
                    });
                    if let (Some(rh), Some(ra)) =
                        (rank_of(&order, &g.class), rank_of(&order, &class))
                    {
                        if rh > ra {
                            out.push(ctx.diag(
                                t.line,
                                RULE_LOCKS,
                                format!(
                                    "lock order inversion: acquires `{}` while holding `{}` (pinned order puts `{}` first)",
                                    class, g.class, class
                                ),
                            ));
                        }
                    }
                }
                // Bind the new guard: chained (`.read().get(..)`) means a
                // temporary; a pending `let` means a named binding.
                let chained = i + 3 < close && is_punct(&toks[i + 3], ".");
                if chained || pending_let.is_none() {
                    guards.push(Guard { class, name: None, bind_depth: depth, line: t.line });
                } else if let Some((name, let_depth)) = pending_let.take() {
                    guards.push(Guard {
                        class,
                        name: Some(name),
                        bind_depth: let_depth,
                        line: t.line,
                    });
                }
            }
            i += 1;
        }
    }
}
