// Vendored offline shim (see shims/README.md): not held to workspace lint
// standards so the call-site-compatible surface can stay close to upstream.
#![allow(clippy::all)]

//! Workspace-local stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the shim `serde`
//! crate's content-tree model (`to_content`/`from_content`). Parsing is
//! done directly on the `proc_macro` token stream — no `syn`/`quote`,
//! since the build environment cannot fetch crates — which works because
//! codegen never needs field *types*: struct-literal type inference picks
//! the right `Deserialize` impl for every field.
//!
//! Supported shapes (the full set this workspace uses):
//! - named-field structs
//! - transparent newtype structs (`struct Uid(String);`)
//! - externally tagged enums (unit / newtype / tuple / struct variants)
//! - adjacently tagged enums (`#[serde(tag = "t", content = "v")]`)
//! - internally tagged enums (`#[serde(tag = "...")]`), with
//!   `rename_all = "camelCase"` and field-level `rename`

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let model = match parse_model(input) {
        Ok(m) => m,
        Err(e) => {
            let msg = e.replace('"', "\\\"");
            return format!("compile_error!(\"serde shim derive: {msg}\");")
                .parse()
                .unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&model),
        Mode::Deserialize => gen_deserialize(&model),
    };
    code.parse().unwrap_or_else(|e| {
        panic!("serde shim derive produced unparsable code for {}: {e}\n{code}", model.name)
    })
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct FieldDef {
    /// Rust field name.
    name: String,
    /// Wire key (after `#[serde(rename = "...")]`).
    key: String,
}

enum VariantShape {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<FieldDef>),
}

struct VariantDef {
    name: String,
    shape: VariantShape,
}

enum Shape {
    Struct(Vec<FieldDef>),
    Newtype,
    Enum(Vec<VariantDef>),
}

struct Model {
    name: String,
    shape: Shape,
    tag: Option<String>,
    content: Option<String>,
    camel: bool,
}

impl Model {
    fn wire_variant(&self, variant: &str) -> String {
        if self.camel {
            let mut chars = variant.chars();
            match chars.next() {
                Some(first) => first.to_lowercase().chain(chars).collect(),
                None => String::new(),
            }
        } else {
            variant.to_string()
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

#[derive(Default)]
struct SerdeAttrs {
    tag: Option<String>,
    content: Option<String>,
    rename_all: Option<String>,
    rename: Option<String>,
}

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tok: &TokenTree, name: &str) -> bool {
    matches!(tok, TokenTree::Ident(id) if id.to_string() == name)
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Consume leading attributes at `*i`, folding any `#[serde(...)]`
/// key/value pairs into the returned set. Doc comments and other
/// attributes are skipped.
fn parse_attrs(toks: &[TokenTree], i: &mut usize, out: &mut SerdeAttrs) -> Result<(), String> {
    while *i < toks.len() && is_punct(&toks[*i], '#') {
        let TokenTree::Group(g) = &toks[*i + 1] else {
            return Err("malformed attribute".into());
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if !inner.is_empty() && is_ident(&inner[0], "serde") {
            let TokenTree::Group(args) = &inner[1] else {
                return Err("malformed serde attribute".into());
            };
            parse_serde_args(args.stream(), out)?;
        }
        *i += 2;
    }
    Ok(())
}

fn parse_serde_args(stream: TokenStream, out: &mut SerdeAttrs) -> Result<(), String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let TokenTree::Ident(key) = &toks[i] else {
            return Err("expected ident in serde attribute".into());
        };
        let key = key.to_string();
        i += 1;
        let mut value = None;
        if i < toks.len() && is_punct(&toks[i], '=') {
            let TokenTree::Literal(lit) = &toks[i + 1] else {
                return Err(format!("expected string value for serde `{key}`"));
            };
            value = Some(unquote(&lit.to_string()));
            i += 2;
        }
        match (key.as_str(), value) {
            ("tag", Some(v)) => out.tag = Some(v),
            ("content", Some(v)) => out.content = Some(v),
            ("rename_all", Some(v)) => out.rename_all = Some(v),
            ("rename", Some(v)) => out.rename = Some(v),
            (other, _) => return Err(format!("unsupported serde attribute `{other}`")),
        }
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
    }
    Ok(())
}

/// Skip `pub` / `pub(...)` at `*i`.
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if *i < toks.len() && is_ident(&toks[*i], "pub") {
        *i += 1;
        if *i < toks.len() {
            if let TokenTree::Group(g) = &toks[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Advance past one type, stopping after the top-level `,` (consumed) or
/// at end of tokens. Tracks `<`/`>` depth so commas inside generics don't
/// split the field; parenthesized types arrive as single groups.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i32 = 0;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<FieldDef>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let mut attrs = SerdeAttrs::default();
        parse_attrs(&toks, &mut i, &mut attrs)?;
        skip_visibility(&toks, &mut i);
        let TokenTree::Ident(name) = &toks[i] else {
            return Err(format!("expected field name, got `{}`", toks[i]));
        };
        let name = name.to_string();
        i += 1;
        if !is_punct(&toks[i], ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        skip_type(&toks, &mut i);
        let key = attrs.rename.unwrap_or_else(|| name.clone());
        fields.push(FieldDef { name, key });
    }
    Ok(fields)
}

/// Arity of a tuple variant / tuple struct body.
fn tuple_arity(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth: i32 = 0;
    for (idx, tok) in toks.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                // A trailing comma doesn't open a new slot.
                if idx + 1 < toks.len() {
                    arity += 1;
                }
            }
            _ => {}
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<VariantDef>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let mut attrs = SerdeAttrs::default();
        parse_attrs(&toks, &mut i, &mut attrs)?;
        let TokenTree::Ident(name) = &toks[i] else {
            return Err(format!("expected variant name, got `{}`", toks[i]));
        };
        let name = name.to_string();
        i += 1;
        let shape = if i < toks.len() {
            match &toks[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    i += 1;
                    VariantShape::Struct(parse_named_fields(g.stream())?)
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    i += 1;
                    match tuple_arity(g.stream()) {
                        1 => VariantShape::Newtype,
                        n => VariantShape::Tuple(n),
                    }
                }
                _ => VariantShape::Unit,
            }
        } else {
            VariantShape::Unit
        };
        if i < toks.len() && is_punct(&toks[i], '=') {
            return Err(format!("discriminants unsupported (variant `{name}`)"));
        }
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push(VariantDef { name, shape });
    }
    Ok(variants)
}

fn parse_model(input: TokenStream) -> Result<Model, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = SerdeAttrs::default();
    parse_attrs(&toks, &mut i, &mut attrs)?;
    skip_visibility(&toks, &mut i);

    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        return Err(format!("expected struct or enum, got `{}`", toks[i]));
    };
    i += 1;

    let TokenTree::Ident(name) = &toks[i] else {
        return Err("expected type name".into());
    };
    let name = name.to_string();
    i += 1;

    if i < toks.len() && is_punct(&toks[i], '<') {
        return Err(format!("generic type `{name}` unsupported by the serde shim"));
    }

    let shape = if is_enum {
        let TokenTree::Group(g) = &toks[i] else {
            return Err("expected enum body".into());
        };
        Shape::Enum(parse_variants(g.stream())?)
    } else {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream())?)
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                if tuple_arity(g.stream()) != 1 {
                    return Err(format!(
                        "tuple struct `{name}` unsupported (only newtype structs)"
                    ));
                }
                Shape::Newtype
            }
            other => return Err(format!("unexpected struct body `{other}`")),
        }
    };

    if let Some(ra) = &attrs.rename_all {
        if ra != "camelCase" {
            return Err(format!("rename_all = \"{ra}\" unsupported (only camelCase)"));
        }
    }

    Ok(Model {
        name,
        shape,
        tag: attrs.tag,
        content: attrs.content,
        camel: attrs.rename_all.is_some(),
    })
}

// ---------------------------------------------------------------------------
// Codegen: shared fragments
// ---------------------------------------------------------------------------

fn ser_fields_to_obj(out: &mut String, fields: &[FieldDef], accessor: &str) {
    let _ = write!(
        out,
        "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::with_capacity({});",
        fields.len()
    );
    for f in fields {
        let _ = write!(
            out,
            "__m.push((::std::string::String::from(\"{key}\"), \
             ::serde::Serialize::to_content(&{accessor}{name})));",
            key = f.key,
            name = f.name,
        );
    }
}

fn de_struct_literal(out: &mut String, ty_path: &str, ctx: &str, fields: &[FieldDef], obj: &str) {
    let _ = write!(out, "{ty_path} {{");
    for f in fields {
        let _ = write!(
            out,
            "{name}: ::serde::__private::field({obj}, \"{key}\", \"{ctx}\")?,",
            name = f.name,
            key = f.key,
        );
    }
    out.push('}');
}

fn bind_tuple(arity: usize) -> String {
    (0..arity).map(|k| format!("__f{k}")).collect::<Vec<_>>().join(", ")
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(m: &Model) -> String {
    let name = &m.name;
    let mut body = String::new();

    match &m.shape {
        Shape::Struct(fields) => {
            ser_fields_to_obj(&mut body, fields, "self.");
            body.push_str("::serde::Value::Object(__m)");
        }
        Shape::Newtype => {
            body.push_str("::serde::Serialize::to_content(&self.0)");
        }
        Shape::Enum(variants) => {
            body.push_str("match self {");
            for v in variants {
                gen_serialize_variant(&mut body, m, v);
            }
            body.push('}');
        }
    }

    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_content(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_serialize_variant(out: &mut String, m: &Model, v: &VariantDef) {
    let name = &m.name;
    let vname = &v.name;
    let wire = m.wire_variant(vname);
    let tagging = match (&m.tag, &m.content) {
        (Some(t), Some(c)) => Tagging::Adjacent(t, c),
        (Some(t), None) => Tagging::Internal(t),
        _ => Tagging::External,
    };

    match (&v.shape, tagging) {
        // Externally tagged --------------------------------------------------
        (VariantShape::Unit, Tagging::External) => {
            let _ = write!(
                out,
                "{name}::{vname} => ::serde::Value::String(::std::string::String::from(\"{wire}\")),"
            );
        }
        (VariantShape::Newtype, Tagging::External) => {
            let _ = write!(
                out,
                "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{wire}\"), \
                 ::serde::Serialize::to_content(__f0))]),"
            );
        }
        (VariantShape::Tuple(arity), Tagging::External) => {
            let binds = bind_tuple(*arity);
            let elems = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_content(__f{k})"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                out,
                "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{wire}\"), \
                 ::serde::Value::Array(::std::vec![{elems}]))]),"
            );
        }
        (VariantShape::Struct(fields), Tagging::External) => {
            let binds = fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
            let _ = write!(out, "{name}::{vname} {{ {binds} }} => {{");
            ser_fields_to_obj(out, fields, "");
            let _ = write!(
                out,
                "::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{wire}\"), ::serde::Value::Object(__m))]) }},"
            );
        }

        // Adjacently tagged --------------------------------------------------
        (VariantShape::Unit, Tagging::Adjacent(tag, _)) => {
            let _ = write!(
                out,
                "{name}::{vname} => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{tag}\"), \
                 ::serde::Value::String(::std::string::String::from(\"{wire}\")))]),"
            );
        }
        (VariantShape::Newtype, Tagging::Adjacent(tag, content)) => {
            let _ = write!(
                out,
                "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{tag}\"), \
                 ::serde::Value::String(::std::string::String::from(\"{wire}\"))), (\
                 ::std::string::String::from(\"{content}\"), \
                 ::serde::Serialize::to_content(__f0))]),"
            );
        }
        (VariantShape::Tuple(arity), Tagging::Adjacent(tag, content)) => {
            let binds = bind_tuple(*arity);
            let elems = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_content(__f{k})"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                out,
                "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{tag}\"), \
                 ::serde::Value::String(::std::string::String::from(\"{wire}\"))), (\
                 ::std::string::String::from(\"{content}\"), \
                 ::serde::Value::Array(::std::vec![{elems}]))]),"
            );
        }
        (VariantShape::Struct(fields), Tagging::Adjacent(tag, content)) => {
            let binds = fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
            let _ = write!(out, "{name}::{vname} {{ {binds} }} => {{");
            ser_fields_to_obj(out, fields, "");
            let _ = write!(
                out,
                "::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{tag}\"), \
                 ::serde::Value::String(::std::string::String::from(\"{wire}\"))), (\
                 ::std::string::String::from(\"{content}\"), ::serde::Value::Object(__m))]) }},"
            );
        }

        // Internally tagged --------------------------------------------------
        (VariantShape::Unit, Tagging::Internal(tag)) => {
            let _ = write!(
                out,
                "{name}::{vname} => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{tag}\"), \
                 ::serde::Value::String(::std::string::String::from(\"{wire}\")))]),"
            );
        }
        (VariantShape::Newtype, Tagging::Internal(tag)) => {
            let _ = write!(
                out,
                "{name}::{vname}(__f0) => ::serde::__private::tag_object(\"{tag}\", \"{wire}\", \
                 ::serde::Serialize::to_content(__f0)),"
            );
        }
        (VariantShape::Struct(fields), Tagging::Internal(tag)) => {
            let binds = fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
            let _ = write!(out, "{name}::{vname} {{ {binds} }} => {{");
            ser_fields_to_obj(out, fields, "");
            let _ = write!(
                out,
                "::serde::__private::tag_object(\"{tag}\", \"{wire}\", \
                 ::serde::Value::Object(__m)) }},"
            );
        }
        (VariantShape::Tuple(_), Tagging::Internal(_)) => {
            let _ = write!(
                out,
                "{name}::{vname}(..) => panic!(\
                 \"tuple variant {name}::{vname} cannot be internally tagged\"),"
            );
        }
    }
}

enum Tagging<'a> {
    External,
    Internal(&'a str),
    Adjacent(&'a str, &'a str),
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(m: &Model) -> String {
    let name = &m.name;
    let mut body = String::new();

    match &m.shape {
        Shape::Struct(fields) => {
            let _ = write!(
                out_ref(&mut body),
                "let __obj = ::serde::__private::expect_object(__v, \"{name}\")?; \
                 ::std::result::Result::Ok("
            );
            de_struct_literal(&mut body, name, name, fields, "__obj");
            body.push(')');
        }
        Shape::Newtype => {
            let _ = write!(
                out_ref(&mut body),
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__v)?))"
            );
        }
        Shape::Enum(variants) => match (&m.tag, &m.content) {
            (Some(tag), Some(content)) => gen_de_adjacent(&mut body, m, variants, tag, content),
            (Some(tag), None) => gen_de_internal(&mut body, m, variants, tag),
            _ => gen_de_external(&mut body, m, variants),
        },
    }

    format!(
        "#[automatically_derived] impl<'de> ::serde::Deserialize<'de> for {name} {{ \
         fn from_content(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{ {body} }} }}"
    )
}

// `write!` needs a `&mut String`; this keeps call sites terse.
fn out_ref(s: &mut String) -> &mut String {
    s
}

fn gen_de_external(out: &mut String, m: &Model, variants: &[VariantDef]) {
    let name = &m.name;
    out.push_str("match __v {");

    // Unit variants arrive as bare strings.
    out.push_str("::serde::Value::String(__s) => match __s.as_str() {");
    for v in variants {
        if matches!(v.shape, VariantShape::Unit) {
            let _ = write!(
                out,
                "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}),",
                wire = m.wire_variant(&v.name),
                vname = v.name,
            );
        }
    }
    let _ = write!(
        out,
        "__other => ::std::result::Result::Err(\
         ::serde::__private::unknown_variant(__other, \"{name}\")), }},"
    );

    // Data variants arrive as single-member objects.
    out.push_str(
        "::serde::Value::Object(__entries) if __entries.len() == 1 => { \
         let (__k, __inner) = &__entries[0]; match __k.as_str() {",
    );
    for v in variants {
        let wire = m.wire_variant(&v.name);
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                // Also accept {"Variant": null}.
                let _ = write!(
                    out,
                    "\"{wire}\" if __inner.is_null() => ::std::result::Result::Ok({name}::{vname}),"
                );
            }
            VariantShape::Newtype => {
                let _ = write!(
                    out,
                    "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_content(__inner)?)),"
                );
            }
            VariantShape::Tuple(arity) => {
                let elems = (0..*arity)
                    .map(|k| format!("::serde::Deserialize::from_content(&__arr[{k}])?"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = write!(
                    out,
                    "\"{wire}\" => {{ let __arr = ::serde::__private::expect_tuple(\
                     __inner, {arity}usize, \"{name}::{vname}\")?; \
                     ::std::result::Result::Ok({name}::{vname}({elems})) }},"
                );
            }
            VariantShape::Struct(fields) => {
                let _ = write!(
                    out,
                    "\"{wire}\" => {{ let __obj = ::serde::__private::expect_object(\
                     __inner, \"{name}::{vname}\")?; ::std::result::Result::Ok("
                );
                de_struct_literal(out, &format!("{name}::{vname}"), &format!("{name}::{vname}"), fields, "__obj");
                out.push_str(") },");
            }
        }
    }
    let _ = write!(
        out,
        "__other => ::std::result::Result::Err(\
         ::serde::__private::unknown_variant(__other, \"{name}\")), }} }},"
    );

    let _ = write!(
        out,
        "__other => ::std::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"expected string or single-key object for {name}\"))), }}"
    );
}

fn gen_de_adjacent(out: &mut String, m: &Model, variants: &[VariantDef], tag: &str, content: &str) {
    let name = &m.name;
    let _ = write!(
        out,
        "let __obj = ::serde::__private::expect_object(__v, \"{name}\")?; \
         let __tag = ::serde::__private::tag_str(__obj, \"{tag}\", \"{name}\")?; \
         let __content = ::serde::__private::obj_get(__obj, \"{content}\")\
         .unwrap_or(&::serde::Value::Null); match __tag {{"
    );
    for v in variants {
        let wire = m.wire_variant(&v.name);
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                let _ = write!(out, "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}),");
            }
            VariantShape::Newtype => {
                let _ = write!(
                    out,
                    "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_content(__content)?)),"
                );
            }
            VariantShape::Tuple(arity) => {
                let elems = (0..*arity)
                    .map(|k| format!("::serde::Deserialize::from_content(&__arr[{k}])?"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = write!(
                    out,
                    "\"{wire}\" => {{ let __arr = ::serde::__private::expect_tuple(\
                     __content, {arity}usize, \"{name}::{vname}\")?; \
                     ::std::result::Result::Ok({name}::{vname}({elems})) }},"
                );
            }
            VariantShape::Struct(fields) => {
                let _ = write!(
                    out,
                    "\"{wire}\" => {{ let __cobj = ::serde::__private::expect_object(\
                     __content, \"{name}::{vname}\")?; ::std::result::Result::Ok("
                );
                de_struct_literal(out, &format!("{name}::{vname}"), &format!("{name}::{vname}"), fields, "__cobj");
                out.push_str(") },");
            }
        }
    }
    let _ = write!(
        out,
        "__other => ::std::result::Result::Err(\
         ::serde::__private::unknown_variant(__other, \"{name}\")), }}"
    );
}

fn gen_de_internal(out: &mut String, m: &Model, variants: &[VariantDef], tag: &str) {
    let name = &m.name;
    let _ = write!(
        out,
        "let __obj = ::serde::__private::expect_object(__v, \"{name}\")?; \
         match ::serde::__private::tag_str(__obj, \"{tag}\", \"{name}\")? {{"
    );
    for v in variants {
        let wire = m.wire_variant(&v.name);
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                let _ = write!(out, "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}),");
            }
            VariantShape::Newtype => {
                // The inner struct's deserializer ignores the tag member.
                let _ = write!(
                    out,
                    "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_content(__v)?)),"
                );
            }
            VariantShape::Struct(fields) => {
                let _ = write!(out, "\"{wire}\" => ::std::result::Result::Ok(");
                de_struct_literal(out, &format!("{name}::{vname}"), &format!("{name}::{vname}"), fields, "__obj");
                out.push_str("),");
            }
            VariantShape::Tuple(_) => {
                let _ = write!(
                    out,
                    "\"{wire}\" => ::std::result::Result::Err(::serde::Error::custom(\
                     \"tuple variant {name}::{vname} cannot be internally tagged\")),"
                );
            }
        }
    }
    let _ = write!(
        out,
        "__other => ::std::result::Result::Err(\
         ::serde::__private::unknown_variant(__other, \"{name}\")), }}"
    );
}
