//! Minimal TOML-subset parser for `Lint.toml`: `[section]` headers,
//! `key = "string"`, `key = true|false`, `key = 123`, and string arrays
//! (single- or multi-line). Comments start with `#`. This deliberately
//! avoids any external TOML dependency — uc-lint must stay zero-dep.
//!
//! Beyond values, the parser records *where* each string item and each
//! key appeared (1-based line numbers) so the stale-config rule can
//! point its diagnostics at the exact `Lint.toml` line that names a
//! function or file that no longer exists.

use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Bool(bool),
    Int(i64),
    List(Vec<String>),
}

#[derive(Debug, Default)]
pub struct Config {
    sections: BTreeMap<String, BTreeMap<String, Value>>,
    /// (section, key) -> line of the `key = ...` assignment.
    key_lines: BTreeMap<(String, String), u32>,
    /// (section, key) -> each string item with the line it appeared on
    /// (list elements individually; scalar strings as one entry).
    item_lines: BTreeMap<(String, String), Vec<(String, u32)>>,
}

/// Strip a trailing `#` comment that is outside any string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in line.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(v: &str) -> Result<Value, String> {
    let v = v.trim();
    if let Some(stripped) = v.strip_prefix('"') {
        let Some(end) = stripped.rfind('"') else {
            return Err(format!("unterminated string: {v}"));
        };
        return Ok(Value::Str(stripped[..end].to_string()));
    }
    if v == "true" {
        return Ok(Value::Bool(true));
    }
    if v == "false" {
        return Ok(Value::Bool(false));
    }
    v.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unrecognized value: {v}"))
}

fn parse_list(body: &str) -> Result<Value, String> {
    let mut out = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match parse_scalar(part)? {
            Value::Str(s) => out.push(s),
            other => return Err(format!("non-string array element: {other:?}")),
        }
    }
    Ok(Value::List(out))
}

/// Extract every `"..."` literal from one physical (comment-stripped)
/// line, pairing it with `line_no`.
fn strings_on_line(text: &str, line_no: u32, out: &mut Vec<(String, u32)>) {
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(len) = after.find('"') else { break };
        out.push((after[..len].to_string(), line_no));
        rest = &after[len + 1..];
    }
}

impl Config {
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line_no = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(end) = rest.find(']') else {
                    return Err(format!("bad section header: {raw}"));
                };
                section = rest[..end].trim().to_string();
                cfg.sections.entry(section.clone()).or_default();
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(format!("expected key = value: {raw}"));
            };
            let key = line[..eq].trim().to_string();
            cfg.key_lines.insert((section.clone(), key.clone()), line_no);
            let mut value = line[eq + 1..].trim().to_string();
            let mut items: Vec<(String, u32)> = Vec::new();
            strings_on_line(&value, line_no, &mut items);
            if value.starts_with('[') {
                // Array, possibly spanning lines: accumulate until the
                // bracket closes (brackets never nest in our config).
                while !value.contains(']') {
                    let Some((nidx, next)) = lines.next() else {
                        return Err(format!("unterminated array for key {key}"));
                    };
                    let next = strip_comment(next).trim();
                    strings_on_line(next, nidx as u32 + 1, &mut items);
                    value.push(' ');
                    value.push_str(next);
                }
                let open = value.find('[').unwrap_or(0);
                let close = value.rfind(']').unwrap_or(value.len() - 1);
                let parsed = parse_list(&value[open + 1..close])?;
                cfg.item_lines.insert((section.clone(), key.clone()), items);
                cfg.sections.entry(section.clone()).or_default().insert(key, parsed);
            } else {
                let parsed = parse_scalar(&value)?;
                cfg.item_lines.insert((section.clone(), key.clone()), items);
                cfg.sections.entry(section.clone()).or_default().insert(key, parsed);
            }
        }
        Ok(cfg)
    }

    pub fn list(&self, section: &str, key: &str) -> Vec<String> {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::List(v)) => v.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            _ => Vec::new(),
        }
    }

    pub fn str(&self, section: &str, key: &str) -> Option<String> {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        }
    }

    /// Is the key present at all (whatever its value)?
    pub fn has_key(&self, section: &str, key: &str) -> bool {
        self.sections.get(section).map(|s| s.contains_key(key)).unwrap_or(false)
    }

    /// Line of the `key = ...` assignment, if the key exists.
    pub fn key_line(&self, section: &str, key: &str) -> Option<u32> {
        self.key_lines.get(&(section.to_string(), key.to_string())).copied()
    }

    /// Every string item of the key with the `Lint.toml` line it sits on.
    pub fn items(&self, section: &str, key: &str) -> Vec<(String, u32)> {
        self.item_lines
            .get(&(section.to_string(), key.to_string()))
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_lists_and_comments() {
        let cfg = Config::parse(
            "# top comment\n\
             [determinism]\n\
             allow_files = [\n  \"a/b.rs\", # why a\n  \"c/d.rs\",\n]\n\
             [instrument]\n\
             impl_type = \"UnityCatalog\" # the service\n",
        )
        .map_err(|e| panic!("{e}"))
        .unwrap_or_default();
        assert_eq!(cfg.list("determinism", "allow_files"), vec!["a/b.rs", "c/d.rs"]);
        assert_eq!(cfg.str("instrument", "impl_type").as_deref(), Some("UnityCatalog"));
        assert!(cfg.list("missing", "key").is_empty());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::parse("not a kv line\n").is_err());
        assert!(Config::parse("[locks]\norder = [\"a\"").is_err());
    }

    #[test]
    fn tracks_item_and_key_lines() {
        let cfg = Config::parse(
            "[determinism]\n\
             allow_files = [\n  \"a/b.rs\",\n  \"c/d.rs\", # note\n]\n\
             [instrument]\n\
             audit_file = \"x/y.rs\"\n",
        )
        .map_err(|e| panic!("{e}"))
        .unwrap_or_default();
        assert_eq!(
            cfg.items("determinism", "allow_files"),
            vec![("a/b.rs".to_string(), 3), ("c/d.rs".to_string(), 4)]
        );
        assert_eq!(cfg.items("instrument", "audit_file"), vec![("x/y.rs".to_string(), 7)]);
        assert_eq!(cfg.key_line("determinism", "allow_files"), Some(2));
        assert!(cfg.has_key("instrument", "audit_file"));
        assert!(!cfg.has_key("locks", "yieldful_calls"));
    }
}
