//! Instrumentation fixtures: entry points on `Service` (the fixture's
//! configured impl_type).

impl Service {
    pub fn get_table(&self, name: &str) -> Result<Table, Error> {
        let _api = self.api_enter("get_table"); // instrumented: no diagnostic
        self.fetch(name)
    }

    pub fn delegated(&self) -> u32 {
        self.inner_entry() // same-file delegation: no diagnostic
    }

    fn inner_entry(&self) -> u32 {
        let _api = self.api_enter("get_table");
        7
    }

    pub fn uninstrumented(&self) -> u32 {
        19 // fn at line 19: pub entry point without api_enter
    }

    pub fn ghost(&self) {
        let _api = self.api_enter("ghost_op"); // line 24: op not in KNOWN_OPS
    }

    pub fn create_table(&self, name: &str) -> Result<Table, Error> {
        let _api = self.api_enter("create_table");
        self.record_audit("alice", "getTable", name); // line 29: action belongs to get_table, not create_table
        self.record_audit("alice", "madeUp", name); // line 30: action in no op's allowed set
        self.fetch(name)
    }

    pub fn deny_without_audit(&self, name: &str) -> Result<Table, Error> {
        let _api = self.api_enter("get_table"); // fn at line 34: PermissionDenied below, no Deny audit
        if name.is_empty() {
            return Err(Error::PermissionDenied("no".into()));
        }
        self.fetch(name)
    }

    fn fetch(&self, _name: &str) -> Result<Table, Error> {
        Err(Error::NotFound)
    }
}
