//! Figure 10(c): predictive optimization — automated OPTIMIZE/VACUUM.
//!
//! Paper: on a 1 M-row data set, a query selecting ~5 % of rows gets up
//! to 20× faster after predictive optimization rewrites the file layout,
//! and garbage collection improves storage efficiency by up to 2×.
//!
//! Substitution (documented in DESIGN.md): the substrate is the JSON
//! row-group table format at 100 K rows with a 1 ms-per-object storage
//! model; the *mechanism* is identical — many small files make selective
//! scans touch many objects, compaction plus min/max pruning reduces the
//! touched set to ~1.

use std::time::Duration;

use uc_bench::{fmt_bytes, fmt_dur, print_table, World, WorldConfig};
use uc_catalog::service::crud::TableSpec;
use uc_catalog::types::FullName;
use uc_cloudstore::{AccessLevel, Credential};
use uc_delta::expr::{CmpOp, Expr};
use uc_delta::value::{DataType, Field, Schema, Value};

const TOTAL_ROWS: usize = 100_000;
const ROWS_PER_FRAGMENT: usize = 100;
const OPTIMIZE_TARGET: usize = 10_000;

fn main() {
    let world = World::build(&WorldConfig {
        storage_latency: Duration::from_millis(2),
        ..Default::default()
    });
    let ctx = world.admin();
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    world.uc.create_schema(&ctx, &world.ms, "main", "s").unwrap();
    let schema = Schema::new(vec![Field::new("id", DataType::Int), Field::new("v", DataType::Int)]);
    let ent = world
        .uc
        .create_table(&ctx, &world.ms, TableSpec::managed("main.s.events", schema.clone()).unwrap())
        .unwrap();

    // Engine writes TOTAL_ROWS in tiny fragments (streaming ingestion's
    // classic small-files problem).
    let rw = world
        .uc
        .temp_credentials(&ctx, &world.ms, &FullName::parse("main.s.events").unwrap(), "relation", AccessLevel::ReadWrite)
        .unwrap();
    let cred = Credential::Temp(rw);
    let path = uc_cloudstore::StoragePath::parse(ent.storage_path.as_ref().unwrap()).unwrap();
    let table = uc_delta::DeltaTable::create(world.store.clone(), path, &cred, ent.id.as_str(), schema)
        .unwrap();
    println!(
        "writing {TOTAL_ROWS} rows as {} fragments of {ROWS_PER_FRAGMENT}…",
        TOTAL_ROWS / ROWS_PER_FRAGMENT
    );
    let rows: Vec<Vec<Value>> = (0..TOTAL_ROWS)
        .map(|i| vec![Value::Int(i as i64), Value::Int((i % 97) as i64)])
        .collect();
    table.append_fragmented(&cred, &rows, ROWS_PER_FRAGMENT).unwrap();

    // Engines cache the table snapshot across queries; time the scan the
    // way a warmed engine would see it.
    let selective_scan = |selectivity: f64| -> (Duration, usize, usize) {
        let snapshot = table.snapshot(&cred).unwrap();
        let span = (TOTAL_ROWS as f64 * selectivity) as i64;
        let lo = (TOTAL_ROWS as i64 - span) / 2;
        let pred = Expr::cmp("id", CmpOp::Ge, lo).and(Expr::cmp("id", CmpOp::Lt, lo + span));
        let t0 = uc_bench::Stopwatch::start();
        let (rows, files) = table
            .scan_snapshot(&cred, &snapshot, Some(&pred), &uc_delta::expr::EvalContext::anonymous())
            .unwrap();
        (t0.elapsed(), rows.len(), files)
    };

    let selectivities = [0.01, 0.05, 0.10];
    let before: Vec<(Duration, usize, usize)> =
        selectivities.iter().map(|s| selective_scan(*s)).collect();
    let bytes_before = table.physical_bytes(&cred).unwrap();

    println!("running predictive optimization (OPTIMIZE to {OPTIMIZE_TARGET}-row files + VACUUM)…");
    let t0 = uc_bench::Stopwatch::start();
    let opt = table.optimize(&cred, OPTIMIZE_TARGET).unwrap();
    let bytes_with_garbage = table.physical_bytes(&cred).unwrap();
    let vac = table.vacuum(&cred).unwrap();
    let maintenance = t0.elapsed();
    let bytes_after = table.physical_bytes(&cred).unwrap();

    let after: Vec<(Duration, usize, usize)> =
        selectivities.iter().map(|s| selective_scan(*s)).collect();

    let rows_out: Vec<Vec<String>> = selectivities
        .iter()
        .zip(before.iter().zip(after.iter()))
        .map(|(s, (b, a))| {
            vec![
                format!("{:.0} %", s * 100.0),
                fmt_dur(b.0),
                b.2.to_string(),
                fmt_dur(a.0),
                a.2.to_string(),
                format!("{:.1}×", b.0.as_secs_f64() / a.0.as_secs_f64()),
            ]
        })
        .collect();
    print_table(
        "Fig 10(c) — selective query latency before/after predictive optimization",
        &["selectivity", "before", "files read", "after", "files read", "speedup"],
        &rows_out,
    );
    print_table(
        "Fig 10(c) — storage efficiency",
        &["stage", "data bytes"],
        &[
            vec!["fragmented".into(), fmt_bytes(bytes_before as f64)],
            vec!["after OPTIMIZE (garbage retained)".into(), fmt_bytes(bytes_with_garbage as f64)],
            vec!["after VACUUM".into(), fmt_bytes(bytes_after as f64)],
        ],
    );
    let five_pct_speedup = before[1].0.as_secs_f64() / after[1].0.as_secs_f64();
    let ten_pct_speedup = before[2].0.as_secs_f64() / after[2].0.as_secs_f64();
    let storage_gain = bytes_with_garbage as f64 / bytes_after as f64;
    println!(
        "\nmaintenance: rewrote {} files into {} in {} ({} objects vacuumed)\n\
         5 % query speedup: {five_pct_speedup:.1}× (paper: up to 20×)\n\
         storage efficiency: {storage_gain:.1}× (paper: up to 2×)",
        opt.files_removed,
        opt.files_added,
        fmt_dur(maintenance),
        vac.objects_deleted
    );
    // machine-noise-tolerant qualitative claims: substantial speedups
    // that grow with selectivity ("up to" 14-16× at 10 % here)
    assert!(five_pct_speedup > 4.0, "5 % queries must speed up substantially");
    assert!(ten_pct_speedup > 8.0, "10 % queries must speed up further");
    assert!(ten_pct_speedup > five_pct_speedup, "speedup grows with files touched");
    assert!(storage_gain > 1.5, "vacuum must reclaim close to half");
    // correctness: identical results before and after
    assert_eq!(before[1].1, after[1].1);
}
