//! The metadata change-event stream (§4.4).
//!
//! Whenever metadata changes, the core service publishes an event. Second-
//! tier services (search, lineage, external discovery catalogs) consume
//! the stream by offset, staying fresh without polling the operational
//! APIs. Offsets make consumption restartable and let multiple consumers
//! progress independently.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::ids::Uid;
use crate::types::SecurableKind;

/// What changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeOp {
    Create,
    Update,
    Delete,
    GrantChange,
    TagChange,
    /// A catalog-owned table commit.
    Commit,
    LineageAdd,
}

/// One published change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetadataChangeEvent {
    /// Position in the stream (dense, starting at 0).
    pub seq: u64,
    pub metastore: Uid,
    pub entity_id: Uid,
    pub kind: SecurableKind,
    /// Entity name at event time (already-deleted entities keep their
    /// last name so consumers can de-index them).
    pub name: String,
    pub op: ChangeOp,
    /// Metastore version after the change.
    pub at_version: u64,
    pub timestamp_ms: u64,
}

/// In-memory event stream with offset-based consumption.
#[derive(Default)]
pub struct EventBus {
    events: RwLock<Vec<MetadataChangeEvent>>,
}

impl EventBus {
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish an event; the bus assigns the sequence number.
    pub fn publish(&self, mut event: MetadataChangeEvent) -> u64 {
        let mut events = self.events.write();
        let seq = events.len() as u64;
        event.seq = seq;
        events.push(event);
        seq
    }

    /// Events at or after `offset`, plus the next offset to poll from.
    pub fn since(&self, offset: u64) -> (Vec<MetadataChangeEvent>, u64) {
        let events = self.events.read();
        let start = (offset as usize).min(events.len());
        let batch = events[start..].to_vec();
        let next = events.len() as u64;
        (batch, next)
    }

    /// Current end-of-stream offset.
    pub fn head(&self) -> u64 {
        self.events.read().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, op: ChangeOp) -> MetadataChangeEvent {
        MetadataChangeEvent {
            seq: 0,
            metastore: Uid::from("ms"),
            entity_id: Uid::from("e"),
            kind: SecurableKind::Table,
            name: name.to_string(),
            op,
            at_version: 1,
            timestamp_ms: 0,
        }
    }

    #[test]
    fn publish_assigns_dense_sequence() {
        let bus = EventBus::new();
        assert_eq!(bus.publish(ev("a", ChangeOp::Create)), 0);
        assert_eq!(bus.publish(ev("b", ChangeOp::Update)), 1);
        assert_eq!(bus.head(), 2);
    }

    #[test]
    fn consumption_by_offset() {
        let bus = EventBus::new();
        bus.publish(ev("a", ChangeOp::Create));
        bus.publish(ev("b", ChangeOp::Create));
        let (batch, next) = bus.since(0);
        assert_eq!(batch.len(), 2);
        assert_eq!(next, 2);
        // nothing new
        let (batch, next) = bus.since(next);
        assert!(batch.is_empty());
        assert_eq!(next, 2);
        // new event arrives
        bus.publish(ev("c", ChangeOp::Delete));
        let (batch, next) = bus.since(next);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].name, "c");
        assert_eq!(next, 3);
    }

    #[test]
    fn independent_consumers_progress_separately() {
        let bus = EventBus::new();
        for i in 0..5 {
            bus.publish(ev(&format!("e{i}"), ChangeOp::Create));
        }
        let (fast, _) = bus.since(0);
        let (slow, _) = bus.since(3);
        assert_eq!(fast.len(), 5);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].name, "e3");
    }

    #[test]
    fn offset_beyond_head_is_safe() {
        let bus = EventBus::new();
        bus.publish(ev("a", ChangeOp::Create));
        let (batch, next) = bus.since(99);
        assert!(batch.is_empty());
        assert_eq!(next, 1);
    }
}
