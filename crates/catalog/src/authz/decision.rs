//! The authorization decision engine.
//!
//! Decisions are computed over a *securable chain*: the object itself
//! followed by its ancestors up to the metastore, each carrying its owner
//! and the grants attached to it. The service assembles chains from its
//! cache/database; this module is pure logic, which keeps the decision
//! table unit-testable in isolation.

use std::collections::HashSet;

use crate::authz::privilege::Privilege;
use crate::ids::Uid;
use crate::types::SecurableKind;

/// One securable in a chain, with its governance metadata.
#[derive(Debug, Clone)]
pub struct AuthzNode {
    pub id: Uid,
    pub kind: SecurableKind,
    pub owner: String,
    /// Grants directly on this securable: (principal-or-group, privilege).
    pub grants: Vec<(String, Privilege)>,
}

/// The caller: resolved principal, expanded groups, and whether they are a
/// metastore admin.
#[derive(Debug, Clone)]
pub struct AuthzContext {
    pub principal: String,
    pub groups: HashSet<String>,
    pub is_metastore_admin: bool,
}

impl AuthzContext {
    pub fn new(principal: &str) -> Self {
        AuthzContext {
            principal: principal.to_string(),
            groups: HashSet::new(),
            is_metastore_admin: false,
        }
    }

    /// Does a grantee string refer to this caller (directly or via group)?
    fn matches(&self, grantee: &str) -> bool {
        grantee == self.principal || self.groups.contains(grantee)
    }
}

/// Borrowed view of one securable in a chain, so decisions can run
/// directly over the service's `&[Arc<Entity>]` chains without cloning
/// every owner string and grant list into [`AuthzNode`]s first — the read
/// hot path evaluates `can_see` on every lookup.
pub trait AuthzNodeView {
    fn node_kind(&self) -> SecurableKind;
    fn node_owner(&self) -> &str;
    fn node_grants(&self) -> &[(String, Privilege)];
}

impl AuthzNodeView for AuthzNode {
    fn node_kind(&self) -> SecurableKind {
        self.kind
    }
    fn node_owner(&self) -> &str {
        &self.owner
    }
    fn node_grants(&self) -> &[(String, Privilege)] {
        &self.grants
    }
}

impl<T: AuthzNodeView> AuthzNodeView for std::sync::Arc<T> {
    fn node_kind(&self) -> SecurableKind {
        (**self).node_kind()
    }
    fn node_owner(&self) -> &str {
        (**self).node_owner()
    }
    fn node_grants(&self) -> &[(String, Privilege)] {
        (**self).node_grants()
    }
}

/// Administrative authority over `chain[0]` (see
/// [`SecurableAuthz::has_admin_authority`]).
pub fn has_admin_authority<N: AuthzNodeView>(chain: &[N], who: &AuthzContext) -> bool {
    if who.is_metastore_admin {
        return true;
    }
    chain.iter().any(|node| {
        who.matches(node.node_owner())
            || node
                .node_grants()
                .iter()
                .any(|(g, p)| who.matches(g) && matches!(p, Privilege::Manage | Privilege::All))
    })
}

/// Does the caller hold `privilege` on `chain[0]`? (See
/// [`SecurableAuthz::has_privilege`].)
pub fn has_privilege<N: AuthzNodeView>(
    chain: &[N],
    who: &AuthzContext,
    privilege: Privilege,
) -> bool {
    if let Some(object) = chain.first() {
        if who.matches(object.node_owner()) {
            return true;
        }
    }
    chain.iter().any(|node| {
        node.node_grants()
            .iter()
            .any(|(g, p)| who.matches(g) && (*p == privilege || *p == Privilege::All))
    })
}

/// The USE chain requirement (see [`SecurableAuthz::can_traverse`]).
pub fn can_traverse<N: AuthzNodeView>(chain: &[N], who: &AuthzContext) -> bool {
    if who.is_metastore_admin {
        return true;
    }
    for (idx, node) in chain.iter().enumerate() {
        let needed = match node.node_kind() {
            SecurableKind::Catalog if idx > 0 => Privilege::UseCatalog,
            SecurableKind::Schema if idx > 0 => Privilege::UseSchema,
            _ => continue,
        };
        // The sub-chain rooted at this container: a USE grant on the
        // container itself or anything above it satisfies traversal.
        if !has_privilege(&chain[idx..], who, needed) {
            return false;
        }
    }
    true
}

/// Can the caller see `chain[0]`'s metadata at all? (See
/// [`SecurableAuthz::can_see`].)
pub fn can_see<N: AuthzNodeView>(chain: &[N], who: &AuthzContext) -> bool {
    if has_admin_authority(chain, who) {
        return true;
    }
    chain.iter().any(|node| {
        node.node_grants().iter().any(|(g, _)| who.matches(g)) || who.matches(node.node_owner())
    })
}

/// Full data-access decision for reading: traversal plus the kind's read
/// privilege.
pub fn can_read_data<N: AuthzNodeView>(
    chain: &[N],
    who: &AuthzContext,
    read_privilege: Privilege,
) -> bool {
    can_traverse(chain, who) && has_privilege(chain, who, read_privilege)
}

/// Full data-access decision for writing.
pub fn can_write_data<N: AuthzNodeView>(
    chain: &[N],
    who: &AuthzContext,
    write_privilege: Privilege,
) -> bool {
    can_traverse(chain, who) && has_privilege(chain, who, write_privilege)
}

/// A securable plus its ancestor chain: `chain[0]` is the object itself,
/// the last element is the metastore.
#[derive(Debug, Clone)]
pub struct SecurableAuthz {
    pub chain: Vec<AuthzNode>,
}

impl SecurableAuthz {
    pub fn new(chain: Vec<AuthzNode>) -> Self {
        SecurableAuthz { chain }
    }

    fn object(&self) -> &AuthzNode {
        &self.chain[0]
    }

    /// Owner of the object itself.
    pub fn is_owner(&self, who: &AuthzContext) -> bool {
        who.matches(&self.object().owner)
    }

    /// Administrative authority: metastore admin, owner of the object or
    /// any ancestor, or a MANAGE/ALL grant on the object or any ancestor.
    /// Confers management rights (grant, transfer, drop, update) over the
    /// object — but NOT data access (§3.3: a schema owner does not
    /// automatically gain SELECT on its tables).
    pub fn has_admin_authority(&self, who: &AuthzContext) -> bool {
        has_admin_authority(&self.chain, who)
    }

    /// Does the caller hold `privilege` on the object? True if they own
    /// the object itself (owners hold all privileges on their object), or
    /// a matching grant (the privilege itself or ALL) exists on the object
    /// or any ancestor (privilege inheritance, §3.3).
    pub fn has_privilege(&self, who: &AuthzContext, privilege: Privilege) -> bool {
        has_privilege(&self.chain, who, privilege)
    }

    /// The USE chain requirement: USE CATALOG on the catalog ancestor and
    /// USE SCHEMA on the schema ancestor (owners of those containers and
    /// metastore admins pass implicitly for their container).
    pub fn can_traverse(&self, who: &AuthzContext) -> bool {
        can_traverse(&self.chain, who)
    }

    /// Can the caller see this object's metadata at all? Any privilege,
    /// ownership anywhere in the chain, or admin authority qualifies.
    pub fn can_see(&self, who: &AuthzContext) -> bool {
        can_see(&self.chain, who)
    }

    /// Full data-access decision for reading: traversal plus the kind's
    /// read privilege.
    pub fn can_read_data(&self, who: &AuthzContext, read_privilege: Privilege) -> bool {
        can_read_data(&self.chain, who, read_privilege)
    }

    /// Full data-access decision for writing.
    pub fn can_write_data(&self, who: &AuthzContext, write_privilege: Privilege) -> bool {
        can_write_data(&self.chain, who, write_privilege)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: &str, kind: SecurableKind, owner: &str, grants: &[(&str, Privilege)]) -> AuthzNode {
        AuthzNode {
            id: Uid::from(id),
            kind,
            owner: owner.to_string(),
            grants: grants.iter().map(|(g, p)| (g.to_string(), *p)).collect(),
        }
    }

    /// table chain: table → schema → catalog → metastore
    fn chain(
        table_grants: &[(&str, Privilege)],
        schema_grants: &[(&str, Privilege)],
        catalog_grants: &[(&str, Privilege)],
    ) -> SecurableAuthz {
        SecurableAuthz::new(vec![
            node("t", SecurableKind::Table, "table_owner", table_grants),
            node("s", SecurableKind::Schema, "schema_owner", schema_grants),
            node("c", SecurableKind::Catalog, "catalog_owner", catalog_grants),
            node("m", SecurableKind::Metastore, "ms_admin", &[]),
        ])
    }

    fn user(name: &str) -> AuthzContext {
        AuthzContext::new(name)
    }

    #[test]
    fn select_requires_grant_plus_use_chain() {
        let c = chain(
            &[("alice", Privilege::Select)],
            &[("alice", Privilege::UseSchema)],
            &[("alice", Privilege::UseCatalog)],
        );
        assert!(c.can_read_data(&user("alice"), Privilege::Select));
    }

    #[test]
    fn missing_use_catalog_blocks_read() {
        let c = chain(
            &[("alice", Privilege::Select)],
            &[("alice", Privilege::UseSchema)],
            &[], // no USE CATALOG
        );
        assert!(c.has_privilege(&user("alice"), Privilege::Select));
        assert!(!c.can_traverse(&user("alice")));
        assert!(!c.can_read_data(&user("alice"), Privilege::Select));
    }

    #[test]
    fn select_granted_on_catalog_inherits_down() {
        let c = chain(
            &[],
            &[("alice", Privilege::UseSchema)],
            &[("alice", Privilege::Select), ("alice", Privilege::UseCatalog)],
        );
        assert!(c.can_read_data(&user("alice"), Privilege::Select));
    }

    #[test]
    fn all_privileges_grant_implies_everything() {
        let c = chain(&[], &[], &[("alice", Privilege::All)]);
        let alice = user("alice");
        assert!(c.has_privilege(&alice, Privilege::Select));
        assert!(c.has_privilege(&alice, Privilege::Modify));
        assert!(c.can_traverse(&alice), "ALL covers USE privileges too");
        assert!(c.has_admin_authority(&alice));
    }

    #[test]
    fn group_grants_apply_to_members() {
        let c = chain(
            &[("analysts", Privilege::Select)],
            &[("analysts", Privilege::UseSchema)],
            &[("analysts", Privilege::UseCatalog)],
        );
        let mut bob = user("bob");
        assert!(!c.can_read_data(&bob, Privilege::Select));
        bob.groups.insert("analysts".to_string());
        assert!(c.can_read_data(&bob, Privilege::Select));
    }

    #[test]
    fn table_owner_holds_all_privileges_on_table_but_still_needs_use_chain() {
        let c = chain(&[], &[], &[]);
        let owner = user("table_owner");
        assert!(c.has_privilege(&owner, Privilege::Select));
        assert!(c.has_privilege(&owner, Privilege::Modify));
        // but traversal still requires USE on containers
        assert!(!c.can_traverse(&owner));
        assert!(!c.can_read_data(&owner, Privilege::Select));
    }

    #[test]
    fn schema_owner_has_admin_authority_but_no_data_access() {
        let c = chain(&[], &[], &[]);
        let schema_owner = user("schema_owner");
        assert!(c.has_admin_authority(&schema_owner));
        // the separation the paper calls out for regulated environments:
        assert!(!c.has_privilege(&schema_owner, Privilege::Select));
        assert!(!c.can_read_data(&schema_owner, Privilege::Select));
    }

    #[test]
    fn manage_grant_confers_admin_authority_not_data_access() {
        let c = chain(&[("ops", Privilege::Manage)], &[], &[]);
        let mut carol = user("carol");
        carol.groups.insert("ops".to_string());
        assert!(c.has_admin_authority(&carol));
        assert!(!c.has_privilege(&carol, Privilege::Select));
    }

    #[test]
    fn manage_on_ancestor_inherits_down() {
        let c = chain(&[], &[], &[("ops", Privilege::Manage)]);
        let mut carol = user("carol");
        carol.groups.insert("ops".to_string());
        assert!(c.has_admin_authority(&carol));
    }

    #[test]
    fn metastore_admin_has_admin_authority_and_traversal_but_no_data_access() {
        let c = chain(&[], &[], &[]);
        let mut admin = user("root");
        admin.is_metastore_admin = true;
        assert!(c.has_admin_authority(&admin));
        assert!(c.can_traverse(&admin));
        assert!(!c.has_privilege(&admin, Privilege::Select));
    }

    #[test]
    fn use_grant_on_schema_does_not_leak_to_catalog() {
        // USE SCHEMA granted on the schema, but USE CATALOG missing.
        let c = chain(&[("alice", Privilege::Select), ("alice", Privilege::UseSchema)], &[], &[]);
        assert!(!c.can_traverse(&user("alice")));
    }

    #[test]
    fn use_catalog_granted_on_metastore_inherits_to_catalog() {
        let mut c = chain(&[("alice", Privilege::Select)], &[("alice", Privilege::UseSchema)], &[]);
        // grant USE CATALOG at the metastore level
        c.chain[3].grants.push(("alice".to_string(), Privilege::UseCatalog));
        assert!(c.can_traverse(&user("alice")));
    }

    #[test]
    fn can_see_with_any_grant() {
        let c = chain(&[("alice", Privilege::Select)], &[], &[]);
        assert!(c.can_see(&user("alice")));
        assert!(!c.can_see(&user("mallory")));
        assert!(c.can_see(&user("schema_owner")), "ancestors' owners see descendants");
    }

    #[test]
    fn default_is_deny() {
        let c = chain(&[], &[], &[]);
        let nobody = user("nobody");
        assert!(!c.has_privilege(&nobody, Privilege::Select));
        assert!(!c.can_traverse(&nobody));
        assert!(!c.can_see(&nobody));
        assert!(!c.has_admin_authority(&nobody));
    }
}
