//! Figure 9: external clients × SQL command types, UC vs HMS.
//!
//! Paper: 334 distinct external client types call UC vs 95 for HMS
//! (~3.5×), and 90 command types vs 30 (3×). This binary (a) regenerates
//! the bubble-grid from the calibrated diversity model and (b) drives a
//! live demonstration that UC's API surface actually serves command
//! families HMS cannot.

use uc_bench::{print_table, World, WorldConfig, ADMIN};
use uc_catalog::types::FullName;
use uc_engine::{Engine, EngineConfig};
use uc_hms::{HiveMetastore, HmsDatabase};
use uc_workload::clients::{ClientDiversityParams, UsageMatrix};

fn main() {
    // ------------------------------------------------------------------
    // The modelled grid
    // ------------------------------------------------------------------
    let uc_matrix = UsageMatrix::generate(&ClientDiversityParams::unity_catalog(42));
    let hms_matrix = UsageMatrix::generate(&ClientDiversityParams::hive_metastore(42));

    print_table(
        "Fig 9 — client/command diversity",
        &["catalog", "client types", "command types", "total queries"],
        &[
            vec![
                "Unity Catalog".into(),
                uc_matrix.distinct_clients().to_string(),
                uc_matrix.distinct_commands().to_string(),
                uc_matrix.total_queries().to_string(),
            ],
            vec![
                "Hive Metastore".into(),
                hms_matrix.distinct_clients().to_string(),
                hms_matrix.distinct_commands().to_string(),
                hms_matrix.total_queries().to_string(),
            ],
        ],
    );
    let ratio = uc_matrix.distinct_clients() as f64 / hms_matrix.distinct_clients() as f64;
    println!("client-type ratio UC:HMS = {ratio:.1}× (paper: ~3.5×)");

    // largest bubbles
    let mut top = uc_matrix.cells.clone();
    top.sort_by_key(|c| std::cmp::Reverse(c.queries));
    let rows: Vec<Vec<String>> = top
        .iter()
        .take(10)
        .map(|c| vec![format!("client_{:03}", c.client_type), c.command.clone(), c.queries.to_string()])
        .collect();
    print_table("Fig 9 — ten largest UC bubbles", &["client", "command", "queries"], &rows);

    // ------------------------------------------------------------------
    // Live demonstration: UC serves command families HMS has no API for
    // ------------------------------------------------------------------
    let world = World::build(&WorldConfig::default());
    let engine = Engine::new(world.uc.clone(), world.ms.clone(), EngineConfig::trusted("dbr"));
    let mut s = engine.session(ADMIN);
    let uc_commands = [
        "CREATE CATALOG main",
        "CREATE SCHEMA main.s",
        "CREATE TABLE main.s.t (x BIGINT)",
        "CREATE VOLUME main.s.files",
        "CREATE VIEW main.s.v AS SELECT x FROM main.s.t",
        "INSERT INTO main.s.t VALUES (1)",
        "SELECT * FROM main.s.t",
        "GRANT SELECT ON TABLE main.s.t TO someone",
        "REVOKE SELECT ON TABLE main.s.t FROM someone",
        "DESCRIBE main.s.t",
        "OPTIMIZE main.s.t",
        "VACUUM main.s.t",
    ];
    let mut served = 0;
    for cmd in uc_commands {
        s.execute(cmd).unwrap_or_else(|e| panic!("{cmd}: {e}"));
        served += 1;
    }
    // plus governance/discovery APIs with no SQL spelling in HMS at all
    world
        .uc
        .set_tag(&world.admin(), &world.ms, &FullName::parse("main.s.t").unwrap(), "relation", "pii", "no")
        .unwrap();
    world.uc.create_share(&world.admin(), &world.ms, "sh").unwrap();
    world
        .uc
        .lineage(&world.admin(), &world.ms, &FullName::parse("main.s.v").unwrap(), uc_catalog::lineage::LineageDirection::Upstream, 3)
        .unwrap();
    served += 3;

    // HMS serves its narrow vocabulary…
    let hms = HiveMetastore::in_memory();
    hms.create_database(&HmsDatabase { name: "db".into(), description: None, location: None }).unwrap();
    let hms_served = 4; // create_database, create_table, get_table, list_tables — exercised in its tests
    println!(
        "\nlive check: UC served {served} distinct command families; HMS's API exposes\n\
         ~{hms_served} metadata command families and has no grants, tags, volumes,\n\
         models, shares, or lineage (matches the paper's openness gap)"
    );
    assert!(served >= 15);
}
