//! The deterministic interleaving explorer.
//!
//! One run = one seeded [`Scheduler`] driving `clients` cooperative client
//! threads through a planned workload against a fresh in-memory world.
//! Both the interleaving (the scheduler trace) and the outcome (the
//! recorded [`History`]) are pure functions of the [`RunConfig`], so a
//! failing run replays exactly from its seed — set `UC_SCHED_SEED` to pin
//! one, mirroring `UC_CHAOS_SEED` in the chaos suite.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use uc_catalog::service::{Context, UcConfig, UnityCatalog};
use uc_cloudstore::faults::FaultPlan;
use uc_cloudstore::sched::{points, yield_point, Scheduler, SchedMode};
use uc_cloudstore::{Clock, LatencyModel, ObjectStore, StsService};
use uc_obs::{Obs, TraceRecord};
use uc_txdb::{Db, DbConfig};

use crate::checker::{check, verify_structure, Violation};
use crate::history::{assemble, DriverRow, History};
use crate::workload::{exec_op, initial_model, plan_ops, plan_subtree_ops, seed_world};

const ADMIN: &str = "root";

#[derive(Clone, Debug)]
pub struct RunConfig {
    pub seed: u64,
    pub clients: usize,
    pub ops_per_client: usize,
    pub mode: SchedMode,
    /// Test-only: disable the transaction commit validation to prove the
    /// checker catches the resulting lost-update/duplicate-version runs.
    pub weaken_commit: bool,
    /// Extra *history-producing* clients running the subtree-adversary
    /// schedule ([`crate::workload::plan_subtree_ops`]): cascading schema
    /// drops vs. deep creates vs. range-scan listings, all on one schema,
    /// so drop/recreate races and mid-cascade listings land at every
    /// interleaving the scheduler can reach. Their rows feed the checker
    /// like any client's, and every run ends with a structural sweep of
    /// the tree and path indexes ([`crate::checker::verify_structure`]).
    pub subtree_clients: usize,
    /// Extra scheduler clients that do nothing but drain the audit lanes
    /// and fold the metric stripes (`AuditLog::flush` + metrics snapshot),
    /// so the explorer schedules those merges adversarially *between* the
    /// real clients' commits. The snapshot-isolation verdict must not
    /// depend on when a flush lands.
    pub flush_clients: usize,
    /// Extra scheduler clients that freeze the flight recorder
    /// (`UnityCatalog::flight_freeze`, which yields at
    /// `points::FLIGHT_FREEZE` before snapshotting the per-thread rings),
    /// so freezes land adversarially between a commit and its audit feed.
    /// A freeze is a pure read of the rings: it must never change the
    /// checker's verdict or the clients' history.
    pub freeze_clients: usize,
    /// Extra scheduler clients that read through a shared serving plane
    /// (`uc_serve::ServePlane::get_table`, which yields at
    /// `serve.enqueue` / `serve.dispatch`), so the explorer lands
    /// coalesced flights adversarially across the real clients' commits
    /// and invalidations. Each read asserts read-your-snapshot on the
    /// flight key: the served `key_version` is never below the metastore
    /// cache version observed before submitting — a pre-invalidation
    /// leader's result is never served to a post-invalidation arrival.
    /// Serve reads produce no history rows and must never change the
    /// checker's verdict.
    pub coalesce_clients: usize,
}

impl RunConfig {
    pub fn new(seed: u64, mode: SchedMode) -> RunConfig {
        RunConfig {
            seed,
            clients: 3,
            ops_per_client: 12,
            mode,
            weaken_commit: false,
            subtree_clients: 0,
            flush_clients: 0,
            freeze_clients: 0,
            coalesce_clients: 0,
        }
    }
}

#[derive(Clone, Debug)]
pub struct RunOutput {
    /// The scheduler's step-by-step interleaving trace.
    pub schedule: String,
    pub history: History,
    pub violations: Vec<Violation>,
}

impl RunOutput {
    /// Byte-stable fingerprint: schedule trace + canonical history.
    pub fn fingerprint(&self) -> String {
        format!(
            "schedule:\n{}history:\n{}",
            self.schedule,
            self.history.canonical_text()
        )
    }
}

/// Resolve the explorer seed: `UC_SCHED_SEED` env override or the default.
/// Prints the seed so any failure is replayable.
pub fn sched_seed(default: u64) -> u64 {
    // uc-lint: allow(determinism) -- this IS the seed override entry point; the seed is printed for replay
    let seed = std::env::var("UC_SCHED_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    eprintln!("UC_SCHED_SEED={seed}");
    seed
}

/// Execute one fully-deterministic exploration run and check its history.
pub fn run_one(cfg: &RunConfig) -> RunOutput {
    // --- world ---------------------------------------------------------
    let plan = FaultPlan::disabled();
    let clock = Clock::manual(0);
    let obs_clock = clock.clone();
    let obs = Obs::with_clock_fn(Arc::new(move || obs_clock.now_ms()));
    let sts = StsService::new(clock).with_faults(plan.clone()).with_obs(obs.clone());
    let store = ObjectStore::with_faults(sts, LatencyModel::zero(), plan.clone())
        .with_obs(obs.clone());
    let db = Db::new(DbConfig { faults: plan.clone(), obs: obs.clone(), ..Default::default() });
    let uc = UnityCatalog::new(
        db.clone(),
        store.clone(),
        UcConfig { faults: plan, obs: obs.clone(), ..Default::default() },
        "node-0",
    );
    let ms = uc.create_metastore(ADMIN, "check", "us-west-2").unwrap();
    let ctx = Context::user(ADMIN);
    seed_world(&uc, &ctx, &ms);
    if cfg.weaken_commit {
        db.set_unsafe_skip_commit_validation(true);
    }

    // --- base version probe (own span, so its reads are recorded) ------
    let base_version = {
        let span = obs.span("check", "probe");
        let _ = span;
        let probe_trace = uc_obs::current_trace_id().expect("probe span active");
        uc.get_table(&ctx, &ms, "main.s.seed0").unwrap();
        drop(span);
        max_read_version(&obs.tracer().records(), probe_trace)
            .expect("probe recorded a read version")
    };

    // --- concurrent phase under the scheduler --------------------------
    let history_clients = cfg.clients + cfg.subtree_clients;
    let total_clients =
        history_clients + cfg.flush_clients + cfg.freeze_clients + cfg.coalesce_clients;
    let steps_hint = (total_clients * cfg.ops_per_client * 8) as u64;
    let sched = Scheduler::new(cfg.seed, total_clients, cfg.mode, steps_hint);
    // Subtree adversaries are history clients like any other — planned
    // from a decorrelated seed so their schedule doesn't mirror the
    // general clients', then checked through the same model.
    let mut plans = plan_ops(cfg.seed, cfg.clients, cfg.ops_per_client);
    plans.extend(plan_subtree_ops(
        cfg.seed ^ 0x5b7e_5b7e_5b7e_5b7e,
        cfg.subtree_clients,
        cfg.ops_per_client,
    ));
    let rows: Arc<Mutex<Vec<DriverRow>>> = Arc::new(Mutex::new(Vec::new()));
    let seq = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for (i, ops) in plans.into_iter().enumerate() {
        let sched = sched.clone();
        let uc = uc.clone();
        let ctx = ctx.clone();
        let ms = ms.clone();
        let obs = obs.clone();
        let rows = rows.clone();
        let seq = seq.clone();
        handles.push(std::thread::spawn(move || {
            sched.register_current(i);
            let result = catch_unwind(AssertUnwindSafe(|| {
                for (k, op) in ops.iter().enumerate() {
                    yield_point(points::OP_START);
                    // The baton serializes clients, so fetch_add observes a
                    // deterministic global op order.
                    let s = seq.fetch_add(1, Ordering::SeqCst);
                    let span = obs.span("check", &format!("c{i}.op{k}"));
                    let trace_id = uc_obs::current_trace_id().expect("op span active");
                    let resp = exec_op(&uc, &ctx, &ms, op);
                    drop(span);
                    rows.lock().push(DriverRow {
                        seq: s,
                        client: i,
                        op: op.clone(),
                        resp,
                        trace_id,
                    });
                }
            }));
            // Always hand the baton back, even on panic, or the run hangs.
            uc_cloudstore::sched::finish_current();
            if let Err(p) = result {
                resume_unwind(p);
            }
        }));
    }
    // Flusher clients: each scheduler pass drains the audit lanes (which
    // yields at `points::AUDIT_FLUSH` before taking the merge lock) and
    // folds a metrics snapshot (which yields at `points::OBS_FOLD`), so
    // the explorer deliberately lands merges between the real clients'
    // commit steps. They produce no history rows; their only legal effect
    // is on *when* telemetry is merged, never on what the checker sees.
    for j in 0..cfg.flush_clients {
        let sched = sched.clone();
        let uc = uc.clone();
        let iters = cfg.ops_per_client;
        let client_idx = history_clients + j;
        handles.push(std::thread::spawn(move || {
            sched.register_current(client_idx);
            let result = catch_unwind(AssertUnwindSafe(|| {
                for _ in 0..iters {
                    yield_point(points::OP_START);
                    uc.audit_log().flush();
                    let _ = uc.metrics_snapshot();
                }
            }));
            uc_cloudstore::sched::finish_current();
            if let Err(p) = result {
                resume_unwind(p);
            }
        }));
    }
    // Freeze clients: each pass freezes the flight recorder mid-run, so
    // the scheduler can land a ring snapshot between a commit and the
    // audit feed that describes it. Freezing reads the rings and writes
    // only the recorder's own frozen slot — it must never perturb the
    // clients' ops, versions, or the checker's verdict.
    for j in 0..cfg.freeze_clients {
        let sched = sched.clone();
        let uc = uc.clone();
        let iters = cfg.ops_per_client;
        let client_idx = history_clients + cfg.flush_clients + j;
        handles.push(std::thread::spawn(move || {
            sched.register_current(client_idx);
            let result = catch_unwind(AssertUnwindSafe(|| {
                for k in 0..iters {
                    yield_point(points::OP_START);
                    let _ = uc.flight_freeze(&format!("check.adversary#{k}"));
                }
            }));
            uc_cloudstore::sched::finish_current();
            if let Err(p) = result {
                resume_unwind(p);
            }
        }));
    }
    // Coalesce clients: each pass issues a `getTable` through a shared
    // serving plane, so the scheduler can interleave flight creation,
    // follower joins, and the leader's execution with the real clients'
    // writes (which advance the metastore cache version). The assertion
    // is the flight-key snapshot contract: the version baked into the
    // served flight is never older than the version observed before
    // submitting, so an invalidation can never leak a stale leader
    // result forward. Like flushes and freezes, serve reads produce no
    // history rows and must never change the checker's verdict.
    if cfg.coalesce_clients > 0 {
        let plane = Arc::new(uc_serve::ServePlane::new(
            uc.clone(),
            uc_serve::ServeConfig::default(),
        ));
        plane.register_tenant(&ms, "check");
        for j in 0..cfg.coalesce_clients {
            let sched = sched.clone();
            let uc = uc.clone();
            let plane = plane.clone();
            let ctx = ctx.clone();
            let ms = ms.clone();
            let iters = cfg.ops_per_client;
            let client_idx = history_clients + cfg.flush_clients + cfg.freeze_clients + j;
            handles.push(std::thread::spawn(move || {
                sched.register_current(client_idx);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    for _ in 0..iters {
                        yield_point(points::OP_START);
                        let v_pre = uc.metastore_cache_version(&ms);
                        let served = plane.get_table(&ctx, &ms, "main.s.seed0").unwrap();
                        assert!(
                            served.key_version >= v_pre,
                            "flight served a pre-invalidation snapshot: key_version \
                             {} < observed version {v_pre}",
                            served.key_version,
                        );
                    }
                }));
                uc_cloudstore::sched::finish_current();
                if let Err(p) = result {
                    resume_unwind(p);
                }
            }));
        }
    }
    sched.run_to_completion();
    for h in handles {
        h.join().expect("client thread panicked");
    }

    // --- assemble & check ----------------------------------------------
    let records = obs.tracer().records();
    let rows = Arc::try_unwrap(rows).expect("rows still shared").into_inner();
    let history = assemble(base_version, rows, &records);
    let mut violations = check(&history, &initial_model());
    // Every run — adversarial or not — ends with a structural sweep of
    // the quiesced indexes: tree ↔ entity 1:1, no orphan at any prefix,
    // one asset per path.
    violations.extend(verify_structure(&db, &ms));
    RunOutput { schedule: sched.trace_text(), history, violations }
}

fn max_read_version(records: &[TraceRecord], trace_id: u64) -> Option<u64> {
    records
        .iter()
        .filter_map(|r| match r {
            TraceRecord::Event { trace_id: t, name, detail, .. }
                if *t == trace_id && name == "history.read" =>
            {
                detail
                    .split_whitespace()
                    .find_map(|tok| tok.strip_prefix("version=")?.parse().ok())
            }
            _ => None,
        })
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_client_run_is_clean_and_deterministic() {
        let cfg = RunConfig {
            seed: 1,
            clients: 1,
            ops_per_client: 8,
            mode: SchedMode::RandomWalk,
            weaken_commit: false,
            subtree_clients: 0,
            flush_clients: 0,
            freeze_clients: 0,
            coalesce_clients: 0,
        };
        let a = run_one(&cfg);
        let b = run_one(&cfg);
        assert_eq!(a.violations, vec![], "{:#?}", a.violations);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
