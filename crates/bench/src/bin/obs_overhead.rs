//! Telemetry-overhead bench: what does the observability plane cost on
//! the cached `getTable` hot path?
//!
//! Three arms, identical worlds and workload, differing only in how much
//! telemetry the request path records:
//!
//! * `unlabeled` — metrics-only obs (the PR-6 baseline: striped global
//!   counters + histograms), per-tenant labeling off.
//! * `labeled`   — metrics-only obs plus the dimensional plane (the
//!   service default): per-tenant counter/histogram families, trailing
//!   windows, and the thread-local tenant scope on every call.
//! * `traced`    — `labeled` plus live tracing (span records, flight
//!   recorder feed) — the full chaos-suite configuration.
//!
//! Results are appended to `BENCH_obs.json` (one entry per
//! `UC_BENCH_LABEL`). The contract the CI quick gate enforces: labeled
//! cached-read throughput stays within 10 % of unlabeled at the gate's
//! thread count — dimensional telemetry must ride the lock-free hot path,
//! not tax it.
//!
//! Environment knobs (same scheme as `cache_read_scaling`):
//!
//! * `UC_BENCH_LABEL` — label for this run's entry (default `run`).
//! * `UC_BENCH_QUICK` — short CI mode: one thread count (8), short
//!   duration, overhead gate on.
//! * `UC_BENCH_OUT`   — output path (default `BENCH_obs.json`, or
//!   `BENCH_obs_quick.json` in quick mode).

use std::time::Duration;

use serde::{Deserialize, Serialize};
use uc_bench::{closed_loop_indexed, print_table, World, WorldConfig};
use uc_catalog::service::crud::TableSpec;
use uc_delta::value::{DataType, Field, Schema};
use uc_obs::Obs;

const TABLES: usize = 100;

#[derive(Serialize, Deserialize, Default)]
struct BenchFile {
    bench: String,
    note: String,
    runs: Vec<Run>,
}

#[derive(Serialize, Deserialize)]
struct Run {
    label: String,
    quick: bool,
    threads: Vec<u64>,
    unlabeled_rps: Vec<f64>,
    labeled_rps: Vec<f64>,
    traced_rps: Vec<f64>,
    /// labeled / unlabeled per thread count (1.0 = free).
    labeled_ratio: Vec<f64>,
    cores: Option<u64>,
}

fn build(obs: Obs, tenant_labels: bool) -> World {
    let world = World::build(&WorldConfig {
        db_pool: 8,
        db_latency: Duration::from_millis(1),
        obs,
        tenant_labels,
        ..Default::default()
    });
    let ctx = world.admin();
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    world.uc.create_schema(&ctx, &world.ms, "main", "s").unwrap();
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    for i in 0..TABLES {
        world
            .uc
            .create_table(
                &ctx,
                &world.ms,
                TableSpec::managed(&format!("main.s.t{i}"), schema.clone()).unwrap(),
            )
            .unwrap();
    }
    // Warm the cache so every measured request is a hit.
    let names = table_names();
    for name in &names {
        world.uc.get_table(&ctx, &world.ms, name).unwrap();
    }
    world
}

fn table_names() -> Vec<String> {
    (0..TABLES).map(|i| format!("main.s.t{i}")).collect()
}

fn sweep(world: &World, names: &[String], threads: usize, duration: Duration) -> f64 {
    let ctx = world.admin();
    closed_loop_indexed(threads, duration, |worker, iter| {
        let i = (worker * 31 + iter as usize * 7) % TABLES;
        world.uc.get_table(&ctx, &world.ms, &names[i]).unwrap();
    })
    .throughput_rps
}

fn main() {
    let quick = std::env::var("UC_BENCH_QUICK").is_ok();
    let label = std::env::var("UC_BENCH_LABEL").unwrap_or_else(|_| "run".to_string());
    let default_out = if quick { "BENCH_obs_quick.json" } else { "BENCH_obs.json" };
    let out_path = std::env::var("UC_BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    let thread_counts: &[usize] = if quick { &[8] } else { &[1, 8, 32] };
    let gate_threads = if quick { 8 } else { 32 };
    let duration = if quick {
        Duration::from_millis(200)
    } else {
        Duration::from_millis(400)
    };

    println!("building unlabeled / labeled / traced worlds ({TABLES} tables each)…");
    let unlabeled = build(Obs::disabled(), false);
    let labeled = build(Obs::disabled(), true);
    let traced = build(Obs::enabled(), true);
    let names = table_names();

    let mut run = Run {
        label: label.clone(),
        quick,
        threads: Vec::new(),
        unlabeled_rps: Vec::new(),
        labeled_rps: Vec::new(),
        traced_rps: Vec::new(),
        labeled_ratio: Vec::new(),
        cores: std::thread::available_parallelism().ok().map(|n| n.get() as u64),
    };
    let mut rows = Vec::new();
    for &threads in thread_counts {
        let off = sweep(&unlabeled, &names, threads, duration);
        let on = sweep(&labeled, &names, threads, duration);
        let full = sweep(&traced, &names, threads, duration);
        let ratio = on / off.max(1e-9);
        run.threads.push(threads as u64);
        run.unlabeled_rps.push(off);
        run.labeled_rps.push(on);
        run.traced_rps.push(full);
        run.labeled_ratio.push(ratio);
        rows.push(vec![
            threads.to_string(),
            format!("{off:.0}"),
            format!("{on:.0}"),
            format!("{full:.0}"),
            format!("{:.1} %", (1.0 - ratio) * 100.0),
        ]);
        if threads == gate_threads && quick {
            assert!(
                ratio >= 0.90,
                "overhead gate: labeled cached-read throughput must stay within \
                 10 % of unlabeled at {threads} threads (got {:.1} % overhead: \
                 {on:.0} vs {off:.0} rps)",
                (1.0 - ratio) * 100.0,
            );
            println!(
                "overhead gate passed: labeled/unlabeled ratio {ratio:.3} at {threads} threads (≥ 0.90)"
            );
        }
    }
    print_table(
        &format!("telemetry overhead — cached getTable, label={label}"),
        &["threads", "unlabeled rps", "labeled rps", "traced rps", "label overhead"],
        &rows,
    );

    // Sanity on the labeled arm: the dimensional plane really metered the
    // sweep (per-tenant values sum to the global op counter).
    let parsed = uc_bench::parse_snapshot(&labeled.uc.metrics_snapshot());
    let global = match parsed.get("catalog.get_securable.count") {
        Some(uc_bench::SnapshotValue::Counter(n)) => *n,
        other => panic!("catalog.get_securable.count missing: {other:?}"),
    };
    let by_tenant = uc_bench::labeled_counter_sum(&parsed, "catalog.get_securable.count.by_tenant");
    assert_eq!(by_tenant, global, "per-tenant counts must sum to the global counter");

    let mut file: BenchFile = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    file.bench = "obs_overhead".to_string();
    file.note = format!(
        "cached getTable closed-loop throughput with telemetry progressively enabled \
         ({TABLES} tables; db pool=8 @1ms/read; zero api hop). unlabeled = global striped \
         metrics only; labeled = + per-tenant families, windows, tenant scope; traced = \
         + live spans and flight recorder. labeled_ratio = labeled/unlabeled (1.0 = free)."
    );
    file.runs.retain(|r| r.label != label);
    file.runs.push(run);
    let json = serde_json::to_string_pretty(&file).expect("bench file serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench file");
    println!("wrote {out_path}");
}
