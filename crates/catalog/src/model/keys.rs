//! Database table names and key construction.
//!
//! Every key is prefixed by the metastore id, so (a) all operations are
//! naturally metastore-scoped, and (b) the cache can filter the database
//! change log down to one metastore by key prefix during reconciliation.

use crate::ids::Uid;

/// Entities by id: `{ms}/{id}` → Entity JSON.
pub const T_ENTITY: &str = "ent";
/// Name index: `{ms}/{parent}/{group}/{name}` → entity id.
pub const T_NAME: &str = "name";
/// Path index: `{ms}|{canonical path}` → entity id.
pub const T_PATH: &str = "path";
/// Metastore version: `{ms}` → decimal version.
pub const T_MSVER: &str = "msver";
/// Grants: `{ms}/{securable}/{principal}|{privilege}` → "1".
pub const T_GRANT: &str = "grant";
/// Entity tags: `{ms}/{entity}/{key}` → value.
pub const T_TAG: &str = "tag";
/// Column tags: `{ms}/{table}/{column}/{key}` → value.
pub const T_COLTAG: &str = "coltag";
/// FGAC policies: `{ms}/{table}/filter` and `{ms}/{table}/mask/{column}`.
pub const T_FGAC: &str = "fgac";
/// ABAC policies: `{ms}/{scope}/{policy name}` → policy JSON.
pub const T_ABAC: &str = "abac";
/// Principals: `{name}` → principal record JSON (account-level).
pub const T_PRINCIPAL: &str = "prin";
/// Lineage edges: `{ms}/d/{downstream}/{upstream}` and `{ms}/u/{upstream}/{downstream}`.
pub const T_LINEAGE: &str = "lineage";
/// Catalog-owned commit log: `{ms}/{table}/{version:020}` → payload.
pub const T_COMMIT: &str = "commit";
/// Share membership: `{ms}/{share}/{entity}` → alias.
pub const T_SHAREMEM: &str = "sharemem";

/// Sentinel parent for metastore-level objects in the name index.
pub const ROOT_PARENT: &str = "root";

pub fn ent_key(ms: &Uid, id: &Uid) -> String {
    format!("{ms}/{id}")
}

pub fn name_key(ms: &Uid, parent: Option<&Uid>, group: &str, name: &str) -> String {
    let ms = ms.as_str();
    let parent = parent.map(|p| p.as_str()).unwrap_or(ROOT_PARENT);
    // Names are case-insensitive in SQL identifiers; normalize to lowercase.
    // Built by hand into one pre-sized buffer: this runs on every cached
    // name lookup, and `format!` with an intermediate `to_ascii_lowercase`
    // would cost two allocations per call.
    let mut key = String::with_capacity(ms.len() + parent.len() + group.len() + name.len() + 3);
    key.push_str(ms);
    key.push('/');
    key.push_str(parent);
    key.push('/');
    key.push_str(group);
    key.push('/');
    key.extend(name.chars().map(|c| c.to_ascii_lowercase()));
    key
}

/// Prefix listing all children of a parent (across groups).
pub fn children_prefix(ms: &Uid, parent: Option<&Uid>) -> String {
    let parent = parent.map(|p| p.as_str()).unwrap_or(ROOT_PARENT);
    format!("{ms}/{parent}/")
}

/// Prefix listing children of a parent within one name group.
pub fn children_group_prefix(ms: &Uid, parent: Option<&Uid>, group: &str) -> String {
    let parent = parent.map(|p| p.as_str()).unwrap_or(ROOT_PARENT);
    format!("{ms}/{parent}/{group}/")
}

pub fn path_key(ms: &Uid, canonical_path: &str) -> String {
    format!("{ms}|{canonical_path}")
}

pub fn grant_key(ms: &Uid, securable: &Uid, principal: &str, privilege: &str) -> String {
    format!("{ms}/{securable}/{principal}|{privilege}")
}

pub fn grants_prefix(ms: &Uid, securable: &Uid) -> String {
    format!("{ms}/{securable}/")
}

pub fn tag_key(ms: &Uid, entity: &Uid, key: &str) -> String {
    format!("{ms}/{entity}/{key}")
}

pub fn tags_prefix(ms: &Uid, entity: &Uid) -> String {
    format!("{ms}/{entity}/")
}

pub fn coltag_key(ms: &Uid, table: &Uid, column: &str, key: &str) -> String {
    format!("{ms}/{table}/{column}/{key}")
}

pub fn coltags_prefix(ms: &Uid, table: &Uid) -> String {
    format!("{ms}/{table}/")
}

pub fn fgac_filter_key(ms: &Uid, table: &Uid) -> String {
    format!("{ms}/{table}/filter")
}

pub fn fgac_mask_key(ms: &Uid, table: &Uid, column: &str) -> String {
    format!("{ms}/{table}/mask/{column}")
}

pub fn fgac_mask_prefix(ms: &Uid, table: &Uid) -> String {
    format!("{ms}/{table}/mask/")
}

pub fn abac_key(ms: &Uid, scope: &Uid, name: &str) -> String {
    format!("{ms}/{scope}/{name}")
}

pub fn abac_prefix(ms: &Uid, scope: &Uid) -> String {
    format!("{ms}/{scope}/")
}

pub fn lineage_down_key(ms: &Uid, downstream: &Uid, upstream: &Uid) -> String {
    format!("{ms}/d/{downstream}/{upstream}")
}

pub fn lineage_up_key(ms: &Uid, upstream: &Uid, downstream: &Uid) -> String {
    format!("{ms}/u/{upstream}/{downstream}")
}

pub fn commit_key(ms: &Uid, table: &Uid, version: i64) -> String {
    format!("{ms}/{table}/{version:020}")
}

pub fn commit_prefix(ms: &Uid, table: &Uid) -> String {
    format!("{ms}/{table}/")
}

pub fn share_member_key(ms: &Uid, share: &Uid, entity: &Uid) -> String {
    format!("{ms}/{share}/{entity}")
}

pub fn share_members_prefix(ms: &Uid, share: &Uid) -> String {
    format!("{ms}/{share}/")
}

/// Extract the metastore id from an entity-table key (`{ms}/{id}`).
pub fn ms_of_ent_key(key: &str) -> Option<&str> {
    key.split('/').next()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(s: &str) -> Uid {
        Uid::from(s)
    }

    #[test]
    fn name_keys_are_lowercased() {
        let k = name_key(&uid("ms"), Some(&uid("p")), "relation", "Orders");
        assert_eq!(k, "ms/p/relation/orders");
    }

    #[test]
    fn root_parent_sentinel() {
        let k = name_key(&uid("ms"), None, "catalog", "main");
        assert_eq!(k, "ms/root/catalog/main");
        assert!(k.starts_with(&children_prefix(&uid("ms"), None)));
    }

    #[test]
    fn children_prefix_covers_group_prefix() {
        let ms = uid("ms");
        let p = uid("parent");
        let group = children_group_prefix(&ms, Some(&p), "relation");
        assert!(group.starts_with(&children_prefix(&ms, Some(&p))));
    }

    #[test]
    fn commit_keys_sort_numerically() {
        let ms = uid("ms");
        let t = uid("t");
        assert!(commit_key(&ms, &t, 9) < commit_key(&ms, &t, 10));
        assert!(commit_key(&ms, &t, 99) < commit_key(&ms, &t, 100));
    }

    #[test]
    fn ms_extraction() {
        assert_eq!(ms_of_ent_key("msid/entid"), Some("msid"));
    }
}
