//! TTL cache for immutable or weakly-consistent metadata.
//!
//! The paper uses simple TTL-bounded caches for metadata whose staleness
//! is acceptable or whose validity is intrinsic — most importantly vended
//! temporary storage credentials, which carry their own expiry and can be
//! reused across queries for their remaining lifetime.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use uc_cloudstore::Clock;

/// A clock-driven TTL cache.
pub struct TtlCache<K, V> {
    inner: RwLock<HashMap<K, (V, u64)>>,
    clock: Clock,
    ttl_ms: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> TtlCache<K, V> {
    pub fn new(clock: Clock, ttl_ms: u64) -> Self {
        TtlCache {
            inner: RwLock::new(HashMap::new()),
            clock,
            ttl_ms,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Get a live entry; expired entries count as misses. Accepts any
    /// borrowed form of the key (`&str` for `String` keys) so hot-path
    /// probes don't allocate an owned key just to look up.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let now = self.clock.now_ms();
        // uc-lint: allow(hotpath) -- shared read lock, writers only on insert/expiry; acceptable on the principal-record path
        let guard = self.inner.read();
        match guard.get(key) {
            Some((v, expires)) if *expires > now => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert with the cache's default TTL.
    pub fn put(&self, key: K, value: V) {
        self.put_with_expiry(key, value, self.clock.now_ms() + self.ttl_ms);
    }

    /// Insert with an explicit absolute expiry — used for credentials,
    /// whose cache lifetime must not exceed the token's own expiry.
    pub fn put_with_expiry(&self, key: K, value: V, expires_at_ms: u64) {
        self.inner.write().insert(key, (value, expires_at_ms));
    }

    /// Drop expired entries; returns how many were removed.
    pub fn purge_expired(&self) -> usize {
        let now = self.clock.now_ms();
        let mut guard = self.inner.write();
        let before = guard.len();
        guard.retain(|_, (_, expires)| *expires > now);
        before - guard.len()
    }

    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    pub fn clear(&self) {
        self.inner.write().clear();
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_within_ttl_miss_after() {
        let clock = Clock::manual(0);
        let cache: TtlCache<&str, i32> = TtlCache::new(clock.clone(), 1_000);
        cache.put("k", 7);
        assert_eq!(cache.get(&"k"), Some(7));
        clock.advance_ms(999);
        assert_eq!(cache.get(&"k"), Some(7));
        clock.advance_ms(1);
        assert_eq!(cache.get(&"k"), None);
        assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn explicit_expiry_overrides_default() {
        let clock = Clock::manual(0);
        let cache: TtlCache<&str, i32> = TtlCache::new(clock.clone(), 1_000_000);
        cache.put_with_expiry("tok", 1, 100);
        clock.advance_ms(100);
        assert_eq!(cache.get(&"tok"), None);
    }

    #[test]
    fn purge_removes_only_expired() {
        let clock = Clock::manual(0);
        let cache: TtlCache<i32, i32> = TtlCache::new(clock.clone(), 500);
        cache.put(1, 1);
        clock.advance_ms(400);
        cache.put(2, 2);
        clock.advance_ms(200); // 1 expired (600>500), 2 alive (expires at 900)
        assert_eq!(cache.purge_expired(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&2), Some(2));
    }

    #[test]
    fn overwrite_refreshes_value_and_expiry() {
        let clock = Clock::manual(0);
        let cache: TtlCache<&str, i32> = TtlCache::new(clock.clone(), 100);
        cache.put("k", 1);
        clock.advance_ms(90);
        cache.put("k", 2);
        clock.advance_ms(90);
        assert_eq!(cache.get(&"k"), Some(2));
    }
}
