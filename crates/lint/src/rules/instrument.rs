//! Instrumentation-coverage rule, now a set of reachability checks over
//! the workspace call graph. Every public entry point on the catalog
//! service must *reach* an `api_enter("op")` span open (directly or
//! through any chain of resolvable callees — delegation across files and
//! crates counts), must reach an audit record (`record_audit`, or the
//! audit module's `record`) whenever its op declares audit actions — an
//! empty action set in `KNOWN_OPS` marks a deliberately unaudited
//! read/list op, so the audit policy lives in one table — the op string
//! must exist in the audit module's `KNOWN_OPS` table, audit action
//! literals must belong to that op's allowed set, and any function that
//! denies with `PermissionDenied` must reach an `AuditDecision::Deny`
//! (its own body or a callee's — the deny audit may live in a helper).
//!
//! Known false negatives (DESIGN.md §8): actions passed as variables are
//! not checked (`vend_for_entity`-style helpers), the Deny check is
//! function-granular (one audited deny path satisfies it for the whole
//! function), and a call the graph cannot resolve contributes no
//! reachability facts.

use std::collections::{BTreeMap, BTreeSet};

use super::{is_ident, is_punct, Diagnostic, FileCtx, RULE_INSTRUMENT};
use crate::lexer::{Kind, Token};

/// Per-function reachability facts, computed by the driver over the
/// call graph (each flag includes the function's own body).
#[derive(Debug, Clone, Copy, Default)]
pub struct Reach {
    /// Reaches a def whose body opens an `api_enter` span.
    pub api: bool,
    /// Reaches `record_audit` / the audit module's `record`.
    pub audit: bool,
    /// Reaches a body containing an `AuditDecision::Deny` mark.
    pub deny: bool,
}

/// op → allowed audit actions, parsed out of the audit module source.
pub type KnownOps = BTreeMap<String, Vec<String>>;

/// Extract the `KNOWN_OPS: &[(&str, &[&str])]` table from the audit
/// module's token stream. Returns None when the table is absent.
pub fn parse_known_ops(tokens: &[Token]) -> Option<KnownOps> {
    let kw = tokens.iter().position(|t| is_ident(t, "KNOWN_OPS"))?;
    // Skip the type annotation (`: &[(&str, &[&str])]`) — walk the
    // *initializer*, which starts after the `=`.
    let start = (kw..tokens.len()).find(|&i| is_punct(&tokens[i], "="))?;
    let mut ops = KnownOps::new();
    let mut depth = 0i64;
    let mut i = start;
    let mut current: Option<(String, Vec<String>)> = None;
    // Walk the initializer: entries look like `("op", &["a", "b"])`.
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, "[") {
            depth += 1;
        } else if is_punct(t, "]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if is_punct(t, "(") && depth == 1 {
            current = Some((String::new(), Vec::new()));
        } else if is_punct(t, ")") && depth == 1 {
            if let Some((op, actions)) = current.take() {
                if !op.is_empty() {
                    ops.insert(op, actions);
                }
            }
        } else if t.kind == Kind::Str {
            if let Some((op, actions)) = current.as_mut() {
                if op.is_empty() {
                    *op = t.text.clone();
                } else {
                    actions.push(t.text.clone());
                }
            }
        } else if is_punct(t, ";") && depth == 0 && i > start {
            break;
        }
        i += 1;
    }
    if ops.is_empty() {
        None
    } else {
        Some(ops)
    }
}

/// The `api_enter` family. All variants take the op string as their
/// first argument, so the token shape below holds for each.
const API_ENTER_FNS: &[&str] = &["api_enter", "api_enter_t", "api_enter_p"];

/// Find the op string of a direct `api_enter("...")` (or `api_enter_t` /
/// `api_enter_p`) call in a token range, if any.
pub fn direct_api_op(toks: &[Token], range: (usize, usize)) -> Option<(String, u32)> {
    let (open, close) = range;
    for i in open..close {
        if API_ENTER_FNS.iter().any(|f| is_ident(&toks[i], f))
            && i + 2 < close
            && is_punct(&toks[i + 1], "(")
            && toks[i + 2].kind == Kind::Str
        {
            return Some((toks[i + 2].text.clone(), toks[i + 2].line));
        }
    }
    None
}

/// Split a call's argument tokens into top-level comma-separated args.
/// `open` indexes the `(`. Returns (args, index_after_close).
fn call_args(toks: &[Token], open: usize) -> (Vec<Vec<usize>>, usize) {
    let mut args: Vec<Vec<usize>> = vec![Vec::new()];
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") {
            depth += 1;
            if depth > 1 {
                if let Some(last) = args.last_mut() {
                    last.push(i);
                }
            }
        } else if is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}") {
            depth -= 1;
            if depth == 0 {
                return (args, i + 1);
            }
            if let Some(last) = args.last_mut() {
                last.push(i);
            }
        } else if is_punct(t, ",") && depth == 1 {
            args.push(Vec::new());
        } else if depth >= 1 {
            if let Some(last) = args.last_mut() {
                last.push(i);
            }
        }
        i += 1;
    }
    (args, i)
}

/// `reach` maps this file's fn indices to their reachability facts;
/// `has_audit_target` is false when the workspace defines no audit
/// record function at all (fixture corpora), which disables the
/// audit-reachability check rather than flagging every entry.
pub fn check(
    ctx: &FileCtx<'_>,
    known: Option<&KnownOps>,
    reach: &BTreeMap<usize, Reach>,
    has_audit_target: bool,
    out: &mut Vec<Diagnostic>,
) {
    let entry_files = ctx.cfg.list("instrument", "entry_files");
    if !entry_files.iter().any(|f| f == ctx.rel_path) {
        return;
    }
    let Some(known) = known else {
        out.push(ctx.diag(
            1,
            RULE_INSTRUMENT,
            "audit module KNOWN_OPS table not found; cannot check instrumentation".to_string(),
        ));
        return;
    };
    let impl_type = ctx.cfg.str("instrument", "impl_type").unwrap_or_default();
    let global_actions: BTreeSet<&str> =
        known.values().flat_map(|v| v.iter().map(|s| s.as_str())).collect();
    let toks = ctx.tokens;

    for (fn_idx, f) in ctx.scan.fns.iter().enumerate() {
        let Some((open, close)) = f.body else { continue };
        if ctx.scan.test_mask[open] {
            continue;
        }
        let direct = direct_api_op(toks, (open, close));
        let is_entry = f.is_pub && f.impl_type.as_deref() == Some(impl_type.as_str());
        let r = reach.get(&fn_idx).copied().unwrap_or_default();

        if is_entry && direct.is_none() && !r.api {
            out.push(ctx.diag(
                f.line,
                RULE_INSTRUMENT,
                format!("pub entry point `{}` does not reach api_enter (directly or through any resolvable callee)", f.name),
            ));
        }
        // Audit reachability: an entry whose op declares audit actions in
        // KNOWN_OPS must be able to land an audit record before returning
        // — on the success path and on denies. An empty action set is the
        // policy table's way of declaring an unaudited read/list op, so
        // those entries are exempt (the exemption lives in KNOWN_OPS, not
        // in per-site pragmas).
        let declares_audit = match &direct {
            Some((op, _)) => known.get(op).is_none_or(|a| !a.is_empty()),
            None => false, // no op span: the api_enter diagnostic above covers it
        };
        if is_entry && has_audit_target && declares_audit && !r.audit {
            out.push(ctx.diag(
                f.line,
                RULE_INSTRUMENT,
                format!("pub entry point `{}` declares audit actions but never reaches an audit record (record_audit) on any return path", f.name),
            ));
        }
        if let Some((op, op_line)) = &direct {
            if !known.contains_key(op) {
                out.push(ctx.diag(
                    *op_line,
                    RULE_INSTRUMENT,
                    format!("api op \"{op}\" is not in audit::KNOWN_OPS"),
                ));
            }
        }

        // (a) Every literal action handed to record_audit must be a known
        // action — catches ad-hoc names like "create" that exist in no
        // op's allowed set.
        let mut i = open;
        while i < close {
            if is_ident(&toks[i], "record_audit") && i + 1 < close && is_punct(&toks[i + 1], "(") {
                let (args, after) = call_args(toks, i + 1);
                // record_audit(principal, action, entity, decision, detail)
                if let Some(arg) = args.get(1) {
                    if let [only] = arg.as_slice() {
                        if toks[*only].kind == Kind::Str {
                            let action = toks[*only].text.as_str();
                            if !global_actions.contains(action) {
                                out.push(ctx.diag(
                                    toks[*only].line,
                                    RULE_INSTRUMENT,
                                    format!("audit action \"{action}\" is not in audit::KNOWN_OPS"),
                                ));
                            }
                        }
                    }
                }
                i = after;
                continue;
            }
            i += 1;
        }
        // (b) In an op-bearing function, any string literal that IS a
        // known audit action must be allowed for that op — catches
        // cross-op mixups even when the action travels through a helper
        // (e.g. vend_for_entity) rather than record_audit directly.
        if let Some((op, _)) = &direct {
            if let Some(allowed) = known.get(op) {
                for t in toks.iter().take(close).skip(open) {
                    if t.kind == Kind::Str
                        && global_actions.contains(t.text.as_str())
                        && !allowed.iter().any(|a| a == &t.text)
                    {
                        out.push(ctx.diag(
                            t.line,
                            RULE_INSTRUMENT,
                            format!(
                                "audit action \"{}\" does not match api op \"{op}\" (allowed: {})",
                                t.text,
                                allowed.join(", ")
                            ),
                        ));
                    }
                }
            }
        }

        // Deny paths must audit: PermissionDenied without a reachable
        // Deny mark (own body or any resolvable callee's).
        let has_denied = (open..close).any(|i| is_ident(&toks[i], "PermissionDenied"));
        if has_denied && !r.deny {
            out.push(ctx.diag(
                f.line,
                RULE_INSTRUMENT,
                format!("`{}` constructs PermissionDenied without reaching a Deny audit decision", f.name),
            ));
        }
    }
}
