//! A lightweight Rust lexer: just enough fidelity to walk real source —
//! raw/byte strings, nested block comments, lifetimes vs char literals —
//! without pulling in a full parser. Token text is preserved so rules can
//! pattern-match on identifier sequences; string literals keep their
//! *contents* (no quotes) so instrumentation rules can read op names.

/// Token classes the rules care about. Everything that is not one of the
/// named classes is a single `Punct` (with `::` fused into one token so
/// path patterns like `SystemTime :: now` are three tokens, not four).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Ident,
    Punct,
    Str,
    Char,
    Lifetime,
    Num,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

/// A `// uc-lint: allow(rule, ...) -- reason` suppression comment.
/// `rules` is empty when the pragma is syntactically malformed; the
/// driver reports both malformed pragmas and pragmas without a reason.
#[derive(Debug, Clone)]
pub struct Pragma {
    pub line: u32,
    pub rules: Vec<String>,
    pub has_reason: bool,
    pub malformed: bool,
}

#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub pragmas: Vec<Pragma>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn parse_pragma(comment: &str, line: u32) -> Option<Pragma> {
    // Only a comment that *starts* with `uc-lint:` is a pragma attempt —
    // prose that merely mentions uc-lint (doc comments, this line) is not.
    let rest = comment.trim_start().strip_prefix("uc-lint:")?.trim_start();
    if !rest.starts_with("allow") {
        return None;
    }
    let Some(body) = rest.strip_prefix("allow(") else {
        return Some(Pragma { line, rules: Vec::new(), has_reason: false, malformed: true });
    };
    let Some(close) = body.find(')') else {
        return Some(Pragma { line, rules: Vec::new(), has_reason: false, malformed: true });
    };
    let rules: Vec<String> = body[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = body[close + 1..].trim_start();
    let has_reason = tail
        .strip_prefix("--")
        .map(|r| !r.trim().is_empty())
        .unwrap_or(false);
    Some(Pragma { line, rules, has_reason, malformed: false })
}

/// Lex a whole source file. Never fails: unterminated constructs consume
/// to end-of-file, which is the forgiving behavior a linter wants.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers doc comments). May hold a pragma.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let mut text = String::new();
            i += 2;
            while i < n && b[i] != '\n' {
                text.push(b[i]);
                i += 1;
            }
            if let Some(p) = parse_pragma(&text, line) {
                out.pragmas.push(p);
            }
            continue;
        }
        // Nested block comment.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte string prefixes: r"", r#""#, b"", br#""#.
        if c == 'r' || c == 'b' {
            let mut j = i;
            let mut saw_r = false;
            if b[j] == 'b' {
                j += 1;
                if j < n && b[j] == 'r' {
                    saw_r = true;
                    j += 1;
                }
            } else {
                saw_r = true;
                j += 1;
            }
            let mut hashes = 0usize;
            if saw_r {
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
            }
            if j < n && b[j] == '"' && (saw_r || hashes == 0) {
                // It really is a (raw/byte) string literal.
                let start_line = line;
                let raw = saw_r && (hashes > 0 || b[i] == 'r' || (b[i] == 'b' && b[i + 1] == 'r'));
                let mut text = String::new();
                i = j + 1;
                'strloop: while i < n {
                    if b[i] == '\n' {
                        line += 1;
                        text.push('\n');
                        i += 1;
                        continue;
                    }
                    if !raw && b[i] == '\\' && i + 1 < n {
                        text.push(b[i]);
                        text.push(b[i + 1]);
                        i += 2;
                        continue;
                    }
                    if b[i] == '"' {
                        // Raw strings need `"` followed by `hashes` hashes.
                        let mut k = i + 1;
                        let mut seen = 0usize;
                        while seen < hashes && k < n && b[k] == '#' {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            i = k;
                            break 'strloop;
                        }
                    }
                    text.push(b[i]);
                    i += 1;
                }
                out.tokens.push(Token { kind: Kind::Str, text, line: start_line });
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while i < n && is_ident_continue(b[i]) {
                text.push(b[i]);
                i += 1;
            }
            out.tokens.push(Token { kind: Kind::Ident, text, line });
            continue;
        }
        if c.is_ascii_digit() {
            let mut text = String::new();
            while i < n
                && (is_ident_continue(b[i])
                    || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit()))
            {
                text.push(b[i]);
                i += 1;
            }
            out.tokens.push(Token { kind: Kind::Num, text, line });
            continue;
        }
        if c == '"' {
            let start_line = line;
            let mut text = String::new();
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    text.push(b[i]);
                    text.push(b[i + 1]);
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    i += 1;
                    break;
                }
                if b[i] == '\n' {
                    line += 1;
                }
                text.push(b[i]);
                i += 1;
            }
            out.tokens.push(Token { kind: Kind::Str, text, line: start_line });
            continue;
        }
        if c == '\'' {
            // Lifetime vs char literal. `'a` (ident not closed by a quote)
            // is a lifetime; `'a'`, `'\n'`, `'\u{1F600}'` are chars.
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal: scan to the closing quote.
                let start_line = line;
                let mut text = String::new();
                i += 1;
                while i < n && b[i] != '\'' {
                    if b[i] == '\\' && i + 1 < n {
                        text.push(b[i]);
                        text.push(b[i + 1]);
                        i += 2;
                        continue;
                    }
                    text.push(b[i]);
                    i += 1;
                }
                i += 1; // closing quote
                out.tokens.push(Token { kind: Kind::Char, text, line: start_line });
                continue;
            }
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == '\'' {
                    // 'x' — a char literal.
                    let text: String = b[i + 1..j].iter().collect();
                    out.tokens.push(Token { kind: Kind::Char, text, line });
                    i = j + 1;
                } else {
                    // 'lifetime
                    let text: String = b[i + 1..j].iter().collect();
                    out.tokens.push(Token { kind: Kind::Lifetime, text, line });
                    i = j;
                }
                continue;
            }
            // `'('` style single-punct char, or a stray quote.
            if i + 2 < n && b[i + 2] == '\'' {
                out.tokens.push(Token { kind: Kind::Char, text: b[i + 1].to_string(), line });
                i += 3;
                continue;
            }
            i += 1;
            continue;
        }
        // `::` fused; everything else is a single-char punct.
        if c == ':' && i + 1 < n && b[i + 1] == ':' {
            out.tokens.push(Token { kind: Kind::Punct, text: "::".into(), line });
            i += 2;
            continue;
        }
        out.tokens.push(Token { kind: Kind::Punct, text: c.to_string(), line });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn fuses_path_separator() {
        assert_eq!(texts("SystemTime::now()"), vec!["SystemTime", "::", "now", "(", ")"]);
    }

    #[test]
    fn raw_strings_do_not_leak_tokens() {
        let lexed = lex(r####"let s = r#"SystemTime::now() "quoted" "#; x"####);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "x"]);
        // the raw-string content is carried on one Str token
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == Kind::Str && t.text.contains("SystemTime::now")));
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(texts("a /* one /* two */ still comment */ b"), vec!["a", "b"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; }");
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars = lexed.tokens.iter().filter(|t| t.kind == Kind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn tracks_lines_across_strings_and_comments() {
        let lexed = lex("a\n\"two\nline\"\n/*\n*/\nb");
        let a = &lexed.tokens[0];
        let b = &lexed.tokens[2];
        assert_eq!((a.text.as_str(), a.line), ("a", 1));
        assert_eq!((b.text.as_str(), b.line), ("b", 6));
    }

    #[test]
    fn pragma_with_reason() {
        let lexed = lex("// uc-lint: allow(hygiene, locks) -- guard is provably short\nfn f() {}");
        assert_eq!(lexed.pragmas.len(), 1);
        let p = &lexed.pragmas[0];
        assert_eq!(p.rules, vec!["hygiene", "locks"]);
        assert!(p.has_reason && !p.malformed);
    }

    #[test]
    fn pragma_without_reason_is_flagged() {
        let lexed = lex("// uc-lint: allow(hygiene)\nfn f() {}");
        assert!(!lexed.pragmas[0].has_reason);
        let lexed = lex("// uc-lint: allow hygiene please\nfn f() {}");
        assert!(lexed.pragmas[0].malformed);
    }

    #[test]
    fn prose_mentioning_uc_lint_is_not_a_pragma() {
        let lexed = lex("//! the single audited site (uc-lint: determinism allowlist)\nfn f() {}");
        assert!(lexed.pragmas.is_empty());
        let lexed = lex("// uc-lint: please ignore\nfn f() {}");
        assert!(lexed.pragmas.is_empty());
    }
}
