//! Ablation: batched metadata resolution vs per-securable calls (§4.5).
//!
//! The paper's motivating case: nested views depending on hundreds of
//! base tables. One `resolve_for_query` call returns the whole closure —
//! metadata, authorization, FGAC, credentials — versus paying the
//! network hop per securable.

use std::time::Duration;

use uc_bench::{fmt_dur, print_table, World, WorldConfig, ADMIN};
use uc_catalog::service::crud::TableSpec;
use uc_catalog::types::FullName;
use uc_cloudstore::AccessLevel;
use uc_delta::value::{DataType, Field, Schema};

fn main() {
    let world = World::build(&WorldConfig {
        api_latency: Duration::from_micros(500), // the hop batching amortizes
        ..Default::default()
    });
    let ctx = world.admin();
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    world.uc.create_schema(&ctx, &world.ms, "main", "s").unwrap();
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);

    let mut rows = Vec::new();
    for &fanout in &[10usize, 50, 100, 200] {
        // a view over `fanout` base tables
        let mut deps = Vec::new();
        for i in 0..fanout {
            let name = format!("main.s.base_{fanout}_{i}");
            world
                .uc
                .create_table(&ctx, &world.ms, TableSpec::managed(&name, schema.clone()).unwrap())
                .unwrap();
            deps.push(FullName::parse(&name).unwrap());
        }
        let view = format!("main.s.wide_view_{fanout}");
        world
            .uc
            .create_view(&ctx, &world.ms, &FullName::parse(&view).unwrap(), "SELECT …", schema.clone(), &deps)
            .unwrap();

        // batched: one call resolves view + all bases + credentials
        let trusted = uc_catalog::service::Context::trusted(ADMIN, "dbr");
        let t0 = uc_bench::Stopwatch::start();
        let resolved = world
            .uc
            .resolve_for_query(&trusted, &world.ms, &[FullName::parse(&view).unwrap()], true)
            .unwrap();
        let batched = t0.elapsed();
        assert_eq!(resolved[0].dependencies.len(), fanout);
        let batched_calls = 1;

        // unbatched: one metadata call + one credential call per securable
        let t0 = uc_bench::Stopwatch::start();
        for dep in &deps {
            world.uc.get_securable(&trusted, &world.ms, dep, "relation").unwrap();
            world
                .uc
                .temp_credentials(&trusted, &world.ms, dep, "relation", AccessLevel::Read)
                .unwrap();
        }
        world.uc.get_securable(&trusted, &world.ms, &FullName::parse(&view).unwrap(), "relation").unwrap();
        let unbatched = t0.elapsed();
        let unbatched_calls = 2 * fanout + 1;

        rows.push(vec![
            fanout.to_string(),
            format!("{batched_calls}"),
            fmt_dur(batched),
            format!("{unbatched_calls}"),
            fmt_dur(unbatched),
            format!("{:.1}×", unbatched.as_secs_f64() / batched.as_secs_f64()),
        ]);
    }
    print_table(
        "Ablation — batched vs per-securable resolution (0.5 ms network hop)",
        &["base tables", "batched calls", "batched", "unbatched calls", "unbatched", "speedup"],
        &rows,
    );
    println!("\nconclusion: batching turns O(dependencies) network hops into one —\nessential for nested views over 100s of base tables (§4.5)");
}
