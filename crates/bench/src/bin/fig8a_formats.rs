//! Figure 8(a): distribution of table storage formats.
//!
//! Paper: the majority of tables are Delta, but other formats have real
//! adoption — the catalog must be format-agnostic.

use uc_bench::print_table;
use uc_catalog::types::TableFormat;
use uc_workload::population::{Population, PopulationParams};

fn main() {
    let population = Population::generate(&PopulationParams { num_metastores: 2_000, ..Default::default() });
    let hist = population.format_histogram();
    let rows: Vec<Vec<String>> = hist
        .iter()
        .map(|(f, p)| {
            vec![
                f.as_str().to_string(),
                format!("{:.1} %", p * 100.0),
                if *f == TableFormat::Delta { "majority" } else { "present" }.to_string(),
            ]
        })
        .collect();
    print_table("Fig 8(a) — table formats", &["format", "measured", "paper"], &rows);
    let delta = hist.iter().find(|(f, _)| *f == TableFormat::Delta).unwrap().1;
    assert!(delta > 0.5, "Delta must be the majority format");
    let others: f64 = hist.iter().filter(|(f, _)| *f != TableFormat::Delta).map(|(_, p)| p).sum();
    println!(
        "\nconclusion: Delta is the majority ({:.0} %), but {:.0} % of tables use other\n\
         formats — format-agnostic governance is required (matches paper)",
        delta * 100.0,
        others * 100.0
    );
}
