//! Multi-node behaviour: sharding, dual ownership, conflict storms, and
//! cache coherence under node churn — the no-consensus design of §4.5.

use std::sync::Arc;

use uc_bench::{World, WorldConfig, ADMIN};
use uc_catalog::service::crud::TableSpec;
use uc_catalog::service::{Context, UcConfig, UnityCatalog};
use uc_catalog::sharding::ShardRouter;
use uc_catalog::types::FullName;
use uc_delta::value::{DataType, Field, Schema};

fn schema() -> Schema {
    Schema::new(vec![Field::new("id", DataType::Int)])
}

fn spawn_node(world: &World, id: &str) -> Arc<UnityCatalog> {
    UnityCatalog::new(world.db.clone(), world.store.clone(), UcConfig::default(), id)
}

#[test]
fn writes_race_across_nodes_without_corruption() {
    // Two nodes both "own" the metastore (split-brain) and hammer writes.
    // The metastore-version conditioning must serialize everything: every
    // created table exists exactly once, no name is double-assigned.
    let world = World::build(&WorldConfig::default());
    let ctx = Context::user(ADMIN);
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    world.uc.create_schema(&ctx, &world.ms, "main", "s").unwrap();
    let node_b = spawn_node(&world, "node-b");

    let mk = |node: Arc<UnityCatalog>, ms: uc_catalog::ids::Uid, start: usize| {
        std::thread::spawn(move || {
            let ctx = Context::user(ADMIN);
            for i in start..start + 20 {
                node.create_table(
                    &ctx,
                    &ms,
                    TableSpec::managed(&format!("main.s.t{i}"), schema()).unwrap(),
                )
                .unwrap();
            }
        })
    };
    let h1 = mk(world.uc.clone(), world.ms.clone(), 0);
    let h2 = mk(node_b.clone(), world.ms.clone(), 20);
    h1.join().unwrap();
    h2.join().unwrap();

    // both nodes agree on the full table set
    for node in [&world.uc, &node_b] {
        node.reconcile_metastore(&world.ms);
        let kids = node
            .list_children(&ctx, &world.ms, &FullName::parse("main.s").unwrap(), None)
            .unwrap();
        assert_eq!(kids.len(), 40, "node {} sees all tables", node.node_id());
    }
}

#[test]
fn same_name_created_on_both_nodes_yields_exactly_one_winner() {
    let world = World::build(&WorldConfig::default());
    let ctx = Context::user(ADMIN);
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    world.uc.create_schema(&ctx, &world.ms, "main", "s").unwrap();
    let node_b = spawn_node(&world, "node-b");

    let mut wins = 0;
    let mut losses = 0;
    for i in 0..10 {
        let name = format!("main.s.contested{i}");
        let a = world.uc.create_table(&ctx, &world.ms, TableSpec::managed(&name, schema()).unwrap());
        let b = node_b.create_table(&ctx, &world.ms, TableSpec::managed(&name, schema()).unwrap());
        match (a.is_ok(), b.is_ok()) {
            (true, false) | (false, true) => {
                wins += 1;
                losses += 1;
            }
            other => panic!("expected exactly one winner, got {other:?}"),
        }
    }
    assert_eq!((wins, losses), (10, 10));
}

#[test]
fn conflict_storm_on_one_entity_retries_to_completion() {
    // Many threads on two nodes update the same catalog's comment: the
    // write path retries serialization conflicts internally; every update
    // must eventually land.
    let world = World::build(&WorldConfig::default());
    let ctx = Context::user(ADMIN);
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    let node_b = spawn_node(&world, "node-b");
    let threads = 6;
    let per_thread = 10;
    let mut handles = Vec::new();
    for t in 0..threads {
        let node = if t % 2 == 0 { world.uc.clone() } else { node_b.clone() };
        let ms = world.ms.clone();
        handles.push(std::thread::spawn(move || {
            let ctx = Context::user(ADMIN);
            for i in 0..per_thread {
                node.update_comment(
                    &ctx,
                    &ms,
                    &FullName::parse("main").unwrap(),
                    "catalog",
                    &format!("t{t}-i{i}"),
                )
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Every update succeeded (retry loops absorbed any serialization
    // conflicts — on multi-core hosts `write_retries` is typically > 0),
    // and both nodes converge on the same final value.
    world.uc.reconcile_metastore(&world.ms);
    node_b.reconcile_metastore(&world.ms);
    let read = |node: &Arc<UnityCatalog>| {
        node.get_securable(&ctx, &world.ms, &FullName::parse("main").unwrap(), "catalog")
            .unwrap()
            .comment
            .clone()
            .unwrap()
    };
    let final_a = read(&world.uc);
    let final_b = read(&node_b);
    assert!(final_a.starts_with('t'));
    assert_eq!(final_a, final_b, "both nodes converge after reconciliation");
}

#[test]
fn router_rebalances_on_node_loss_and_service_continues() {
    let world = World::build(&WorldConfig::default());
    let ctx = Context::user(ADMIN);
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    let node_b = spawn_node(&world, "node-b");
    let node_c = spawn_node(&world, "node-c");

    let mut router = ShardRouter::new(vec![world.uc.clone(), node_b.clone(), node_c.clone()]);
    let before = router.node_for(&world.ms).node_id().to_string();

    // route through the assigned node
    router
        .node_for(&world.ms)
        .create_schema(&ctx, &world.ms, "main", "s1")
        .unwrap();

    // the assigned node "dies"
    router.remove_node(&before);
    let after = router.node_for(&world.ms).node_id().to_string();
    assert_ne!(before, after);

    // the replacement node serves reads (cold cache → DB) and writes
    let node = router.node_for(&world.ms);
    let kids = node
        .list_children(&ctx, &world.ms, &FullName::parse("main").unwrap(), None)
        .unwrap();
    assert_eq!(kids.len(), 1);
    node.create_schema(&ctx, &world.ms, "main", "s2").unwrap();
    assert_eq!(
        node.list_children(&ctx, &world.ms, &FullName::parse("main").unwrap(), None)
            .unwrap()
            .len(),
        2
    );
}

#[test]
fn cold_node_bootstraps_cache_from_db_reads() {
    let world = World::build(&WorldConfig::default());
    let ctx = Context::user(ADMIN);
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    world.uc.create_schema(&ctx, &world.ms, "main", "s").unwrap();
    for i in 0..10 {
        world
            .uc
            .create_table(&ctx, &world.ms, TableSpec::managed(&format!("main.s.t{i}"), schema()).unwrap())
            .unwrap();
    }
    let cold = spawn_node(&world, "node-cold");
    // first pass misses, second pass hits
    for _ in 0..2 {
        for i in 0..10 {
            cold.get_table(&ctx, &world.ms, &format!("main.s.t{i}")).unwrap();
        }
    }
    let hits = cold.cache_stats().hits.load(std::sync::atomic::Ordering::Relaxed);
    let misses = cold.cache_stats().misses.load(std::sync::atomic::Ordering::Relaxed);
    assert!(hits > 0, "second pass must hit");
    assert!(misses > 0, "first pass must miss");
}

#[test]
fn truncated_changelog_forces_full_reconcile() {
    // If the change log was truncated past a node's position, selective
    // invalidation can't be trusted — the node must fall back to a full
    // evict (and still end up coherent).
    let world = World::build(&WorldConfig::default());
    let ctx = Context::user(ADMIN);
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    world.uc.create_schema(&ctx, &world.ms, "main", "s").unwrap();
    for i in 0..20 {
        world
            .uc
            .create_table(&ctx, &world.ms, TableSpec::managed(&format!("main.s.t{i}"), schema()).unwrap())
            .unwrap();
    }
    let node_b = spawn_node(&world, "node-b");
    // warm node B
    for i in 0..20 {
        node_b.get_table(&ctx, &world.ms, &format!("main.s.t{i}")).unwrap();
    }
    // node A writes; then the changelog is aggressively truncated (as a
    // bounded-retention deployment would)
    world
        .uc
        .update_comment(&ctx, &world.ms, &FullName::parse("main.s.t3").unwrap(), "relation", "fresh")
        .unwrap();
    world.db.changelog().truncate_before(world.db.current_csn() + 1);
    node_b.reconcile_metastore(&world.ms);
    assert!(
        node_b
            .cache_stats()
            .full_reconciles
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "truncation must force the full strategy"
    );
    // and node B still serves the fresh value
    let t3 = node_b.get_table(&ctx, &world.ms, "main.s.t3").unwrap();
    assert_eq!(t3.comment, Some("fresh".into()));
}

#[test]
fn concurrent_path_registrations_never_violate_invariant() {
    // Failure injection: many threads across two nodes race to create
    // external tables whose paths overlap; whatever subset wins, the
    // one-asset-per-path invariant must hold in the end.
    let world = World::build(&WorldConfig::default());
    let ctx = Context::user(ADMIN);
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    world.uc.create_schema(&ctx, &world.ms, "main", "s").unwrap();
    let root = world.store.create_bucket("ext");
    world.uc.create_storage_credential(&ctx, &world.ms, "ec", &root).unwrap();
    world.uc.create_external_location(&ctx, &world.ms, "el", "s3://ext/data", "ec").unwrap();
    let node_b = spawn_node(&world, "node-b");

    let mut handles = Vec::new();
    for t in 0..4 {
        let node = if t % 2 == 0 { world.uc.clone() } else { node_b.clone() };
        let ms = world.ms.clone();
        handles.push(std::thread::spawn(move || {
            let ctx = Context::user(ADMIN);
            for i in 0..10 {
                // deliberately overlapping path families: x, x/sub
                let depth = (t + i) % 2;
                let path = if depth == 0 {
                    format!("s3://ext/data/dir{i}")
                } else {
                    format!("s3://ext/data/dir{i}/sub")
                };
                let spec = uc_catalog::service::crud::TableSpec {
                    name: FullName::parse(&format!("main.s.race_{t}_{i}")).unwrap(),
                    columns: schema(),
                    format: uc_catalog::types::TableFormat::Parquet,
                    table_type: uc_catalog::types::TableType::External,
                    storage_path: Some(path),
                    foreign_type: None,
                };
                let _ = node.create_table(&ctx, &ms, spec); // conflicts allowed
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // invariant check over the raw path index
    let rt = world.db.begin_read();
    let all = uc_catalog::model::paths::all_paths(&rt, &world.ms);
    for (i, (p1, _)) in all.iter().enumerate() {
        for (p2, _) in &all[i + 1..] {
            assert!(!p1.overlaps(p2), "{p1} overlaps {p2}");
        }
    }
    assert!(all.len() >= 10, "a healthy subset must have won");
}
