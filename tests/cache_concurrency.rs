//! Concurrency stress tests for the sharded metadata cache (DESIGN.md §7).
//!
//! The paper's evaluation (Fig 10b) sweeps 1→64 concurrent clients against
//! the cached read path; these tests drive real reader threads spinning
//! `get_table` / `resolve_for_query` against a writer thread doing
//! create/update/drop on the same metastore and assert the snapshot-read
//! invariants the seqlock + shard design must uphold:
//!
//! * **No torn reads** — a lookup returns either a complete entity or
//!   `NotFound`, never a half-installed one; the entity returned for a
//!   name is the entity *with that name* (name→entity consistency at the
//!   pinned version).
//! * **Writer progress under readers** — the per-metastore write gate
//!   serializes mutation without starving behind the lock-free hit path.
//! * **Convergence** — once the writer stops, a cached node answers
//!   exactly like a cache-disabled node reading the database.
//!
//! Each scenario runs at shard count 1 (the single-lock ablation layout)
//! and the default 16, so both extremes of the sharding knob stay correct.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use uc_catalog::cache::CacheConfig;
use uc_catalog::service::crud::TableSpec;
use uc_catalog::service::{Context, UcConfig, UnityCatalog};
use uc_catalog::types::FullName;
use uc_cloudstore::ObjectStore;
use uc_delta::value::{DataType, Field, Schema};
use uc_txdb::Db;

const ADMIN: &str = "admin";
/// Tables that exist for the whole run (readers expect hits).
const STABLE_TABLES: usize = 8;
/// Tables the writer churns through create/update/drop (readers accept
/// found-or-not-found, never anything inconsistent).
const CHURN_TABLES: usize = 4;

fn int_schema() -> Schema {
    Schema::new(vec![Field::new("x", DataType::Int)])
}

fn node_with_shards(db: &Db, store: &ObjectStore, shards: usize, id: &str) -> Arc<UnityCatalog> {
    UnityCatalog::new(
        db.clone(),
        store.clone(),
        UcConfig {
            cache: CacheConfig { shards, ..Default::default() },
            ..Default::default()
        },
        id,
    )
}

struct StressWorld {
    db: Db,
    store: ObjectStore,
    uc: Arc<UnityCatalog>,
    ms: uc_catalog::ids::Uid,
}

fn stress_world(shards: usize) -> StressWorld {
    let db = Db::in_memory();
    let store = ObjectStore::in_memory();
    let uc = node_with_shards(&db, &store, shards, "node-0");
    let ms = uc.create_metastore(ADMIN, "stress", "us-west-2").unwrap();
    let ctx = Context::user(ADMIN);
    let root = store.create_bucket("lake");
    uc.create_storage_credential(&ctx, &ms, "lake_cred", &root).unwrap();
    uc.set_metastore_root(&ctx, &ms, "s3://lake/managed").unwrap();
    uc.create_catalog(&ctx, &ms, "main").unwrap();
    uc.create_schema(&ctx, &ms, "main", "s").unwrap();
    for i in 0..STABLE_TABLES {
        uc.create_table(
            &ctx,
            &ms,
            TableSpec::managed(&format!("main.s.stable{i}"), int_schema()).unwrap(),
        )
        .unwrap();
    }
    StressWorld { db, store, uc, ms }
}

/// Readers spin lookups while a writer churns tables in the same schema.
/// Asserts name→entity consistency on every single read.
fn run_stress(shards: usize, reader_threads: usize, writer_iters: usize) {
    let w = stress_world(shards);
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let torn = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for r in 0..reader_threads {
            let uc = w.uc.clone();
            let ms = w.ms.clone();
            let stop = &stop;
            let reads = &reads;
            let torn = &torn;
            scope.spawn(move || {
                let ctx = Context::user(ADMIN);
                let mut i = r; // offset start so threads don't march in step
                while !stop.load(Ordering::Relaxed) {
                    // Stable tables must always resolve, correctly.
                    let stable = format!("stable{}", i % STABLE_TABLES);
                    match uc.get_table(&ctx, &ms, &format!("main.s.{stable}")) {
                        Ok(ent) => {
                            if ent.name != stable || !ent.is_active() {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => panic!("stable table lookup failed: {e}"),
                    }
                    // Churned tables may or may not exist — but a returned
                    // entity must be the named one, complete and active.
                    let churn = format!("churn{}", i % CHURN_TABLES);
                    if let Ok(ent) = uc.get_table(&ctx, &ms, &format!("main.s.{churn}")) {
                        if ent.name != churn || !ent.is_active() {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // The resolve path exercises chain walks (schema +
                    // catalog lookups) against the same shards.
                    if i % 7 == 0 {
                        let refs = [FullName::parse(&format!("main.s.{stable}")).unwrap()];
                        let resolved = uc
                            .resolve_for_query(&ctx, &ms, &refs, false)
                            .expect("stable table must resolve");
                        assert_eq!(resolved.len(), 1);
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        let ctx = Context::user(ADMIN);
        for j in 0..writer_iters {
            let t = j % CHURN_TABLES;
            let name = format!("main.s.churn{t}");
            match j % 3 {
                0 => {
                    // May already exist from a previous lap — then update.
                    let spec = TableSpec::managed(&name, int_schema()).unwrap();
                    if w.uc.create_table(&ctx, &w.ms, spec).is_err() {
                        let _ = w.uc.update_comment(
                            &ctx,
                            &w.ms,
                            &FullName::parse(&name).unwrap(),
                            "relation",
                            &format!("lap {j}"),
                        );
                    }
                }
                1 => {
                    let _ = w.uc.update_comment(
                        &ctx,
                        &w.ms,
                        &FullName::parse(&name).unwrap(),
                        "relation",
                        &format!("lap {j}"),
                    );
                }
                _ => {
                    let _ = w.uc.drop_securable(
                        &ctx,
                        &w.ms,
                        &FullName::parse(&name).unwrap(),
                        "relation",
                    );
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(
        torn.load(Ordering::Relaxed),
        0,
        "readers observed inconsistent entities (shards={shards})"
    );
    assert!(
        reads.load(Ordering::Relaxed) > 0,
        "readers made no progress (shards={shards})"
    );

    // Convergence: a cache-disabled node over the same database is ground
    // truth; the stressed node must agree on every table.
    let truth = UnityCatalog::new(
        w.db.clone(),
        w.store.clone(),
        UcConfig { cache: CacheConfig::disabled(), ..Default::default() },
        "node-truth",
    );
    let ctx = Context::user(ADMIN);
    for i in 0..STABLE_TABLES {
        let name = format!("main.s.stable{i}");
        let cached = w.uc.get_table(&ctx, &w.ms, &name).unwrap();
        let direct = truth.get_table(&ctx, &w.ms, &name).unwrap();
        assert_eq!(cached.id, direct.id, "{name} diverged");
    }
    for t in 0..CHURN_TABLES {
        let name = format!("main.s.churn{t}");
        let cached = w.uc.get_table(&ctx, &w.ms, &name).ok().map(|e| e.id.clone());
        let direct = truth.get_table(&ctx, &w.ms, &name).ok().map(|e| e.id.clone());
        assert_eq!(cached, direct, "{name} diverged after writer stopped");
    }
    // The stress must actually have exercised the cache.
    assert!(w.uc.cache_stats().hits.load(Ordering::Relaxed) > 0);
}

#[test]
fn readers_vs_writer_sharded() {
    run_stress(16, 4, 300);
}

#[test]
fn readers_vs_writer_single_shard() {
    run_stress(1, 4, 300);
}

/// Write-through visibility: after a writer's call returns, a reader on
/// the same node sees the new state immediately (no torn window between
/// entry install and pin advance that loses the entity).
#[test]
fn own_writes_visible_immediately() {
    let w = stress_world(16);
    let ctx = Context::user(ADMIN);
    for j in 0..50 {
        let name = format!("main.s.flip{}", j % 2);
        let spec = TableSpec::managed(&name, int_schema()).unwrap();
        if w.uc.create_table(&ctx, &w.ms, spec).is_ok() {
            let ent = w
                .uc
                .get_table(&ctx, &w.ms, &name)
                .expect("created table must be visible to its own node");
            assert!(ent.is_active());
            w.uc
                .drop_securable(&ctx, &w.ms, &FullName::parse(&name).unwrap(), "relation")
                .unwrap();
            assert!(
                w.uc.get_table(&ctx, &w.ms, &name).is_err(),
                "dropped table must disappear immediately"
            );
        }
    }
}

/// Concurrent first-touch of a metastore cache: every thread must land on
/// the same `MsCache` instance (the `for_metastore` fast path races its
/// insert path).
#[test]
fn concurrent_first_touch_converges() {
    let w = stress_world(4);
    let ctx = Context::user(ADMIN);
    // Fresh node over the same substrate: its per-ms map starts empty, so
    // every thread races the first-touch insert.
    let fresh = node_with_shards(&w.db, &w.store, 4, "node-fresh");
    std::thread::scope(|scope| {
        for r in 0..8 {
            let uc = fresh.clone();
            let ms = w.ms.clone();
            let ctx = ctx.clone();
            scope.spawn(move || {
                let name = format!("main.s.stable{}", r % STABLE_TABLES);
                for _ in 0..50 {
                    uc.get_table(&ctx, &ms, &name).unwrap();
                }
            });
        }
    });
    // All threads' installs landed in one cache: a warm re-read is a hit.
    let before = fresh.cache_stats().hits.load(Ordering::Relaxed);
    for r in 0..STABLE_TABLES {
        fresh
            .get_table(&ctx, &w.ms, &format!("main.s.stable{r}"))
            .unwrap();
    }
    let after = fresh.cache_stats().hits.load(Ordering::Relaxed);
    // Each get_table performs several cached lookups (catalog, schema,
    // table, ownership chain) — all of them must hit on a warm cache.
    assert!(after - before >= STABLE_TABLES as u64, "warm reads must all hit");
    let misses_before = fresh.cache_stats().misses.load(Ordering::Relaxed);
    fresh.get_table(&ctx, &w.ms, "main.s.stable0").unwrap();
    assert_eq!(
        fresh.cache_stats().misses.load(Ordering::Relaxed),
        misses_before,
        "a fully warm read must not miss"
    );
}
