//! §6.1 aggregate usage statistics, regenerated from the calibrated
//! population and trace models (scaled 1:1000 relative to production).
//!
//! Paper: ~100 M tables, 550 K volumes, 400 K models, 4 M schemas, 200 K
//! catalogs, 100 K metastores; 98.2 % of API requests are reads; asset
//! counts per container are heavy-tailed (mode ≈30 tables per catalog,
//! largest catalogs ≥ 500 K tables).

use uc_bench::{parse_snapshot, print_table, SnapshotValue, World, WorldConfig};
use uc_catalog::types::SecurableKind;
use uc_obs::Obs;
use uc_workload::population::{Population, PopulationParams};
use uc_workload::stats::quantile;
use uc_workload::trace::{Trace, TraceParams};

fn main() {
    // Scale: paper ratios hold per-metastore; we generate 2 000 of the
    // 100 000 metastores and compare *ratios*.
    let population = Population::generate(&PopulationParams { num_metastores: 2_000, ..Default::default() });
    let counts = population.kind_counts();
    let scale = 100_000.0 / counts["metastores"] as f64;

    let paper: &[(&str, f64)] = &[
        ("metastores", 100e3),
        ("catalogs", 200e3),
        ("schemas", 4e6),
        ("tables", 100e6),
        ("volumes", 550e3),
        ("models", 400e3),
    ];
    let rows: Vec<Vec<String>> = paper
        .iter()
        .map(|(k, target)| {
            let measured = *counts.get(*k).unwrap_or(&0) as f64 * scale;
            vec![
                k.to_string(),
                format!("{:.2e}", measured),
                format!("{:.2e}", target),
                format!("{:.1}×", measured / target),
            ]
        })
        .collect();
    print_table(
        "§6.1 — asset counts (scaled to 100 K metastores)",
        &["kind", "extrapolated", "paper", "ratio"],
        &rows,
    );

    // Heavy tails.
    let per_catalog: Vec<f64> = population
        .assets_per_catalog(SecurableKind::Table)
        .into_iter()
        .map(|c| c as f64)
        .collect();
    let volumes_per_catalog: Vec<f64> = population
        .assets_per_catalog(SecurableKind::Volume)
        .into_iter()
        .filter(|&c| c > 0)
        .map(|c| c as f64)
        .collect();
    print_table(
        "§6.1 — per-catalog distribution shape",
        &["metric", "measured", "paper"],
        &[
            vec!["tables/catalog p50".into(), format!("{:.0}", quantile(&per_catalog, 0.5)), "mode ~30".into()],
            vec!["tables/catalog p99".into(), format!("{:.0}", quantile(&per_catalog, 0.99)), "heavy tail".into()],
            vec![
                "tables/catalog max".into(),
                format!("{:.0}", per_catalog.iter().cloned().fold(0.0, f64::max)),
                "≥ 500 K at full scale".into(),
            ],
            vec![
                "volumes/catalog p50".into(),
                format!("{:.0}", quantile(&volumes_per_catalog, 0.5)),
                "mode < 6".into(),
            ],
        ],
    );

    // Read/write mix from the trace model.
    let trace = Trace::generate(&TraceParams { num_events: 200_000, ..Default::default() });
    let writes = trace.write_fraction();
    print_table(
        "§6.1 — API mix",
        &["metric", "measured", "paper"],
        &[vec![
            "read fraction".into(),
            format!("{:.1} %", (1.0 - writes) * 100.0),
            "98.2 %".into(),
        ]],
    );
    assert!((1.0 - writes - 0.982).abs() < 0.005);

    // Cross-check through the telemetry plane: replay a miniature mix
    // against an instrumented world and read the counts back out of the
    // uc-obs metrics snapshot — the same exporter CI diffs for
    // determinism — instead of trusting the workload model's own tally.
    let obs = Obs::enabled();
    let w = World::build(&WorldConfig { obs: obs.clone(), ..Default::default() });
    let ctx = w.admin();
    let calls_before = obs.counter("catalog.api.calls").get();
    w.uc.create_catalog(&ctx, &w.ms, "main").unwrap();
    w.uc.create_schema(&ctx, &w.ms, "main", "s").unwrap();
    for _ in 0..500 {
        let _ = w.uc.list_catalogs(&ctx, &w.ms).unwrap();
    }
    let parsed = parse_snapshot(&obs.metrics_snapshot());
    let counter = |name: &str| match parsed.get(name) {
        Some(SnapshotValue::Counter(n)) => *n,
        _ => 0,
    };
    let api_calls = counter("catalog.api.calls") - calls_before;
    let snapshot_writes =
        counter("catalog.create_catalog.count") + counter("catalog.create_schema.count");
    print_table(
        "§6.1 — replayed mix, read back from the metrics snapshot",
        &["metric", "value"],
        &[
            vec!["api calls".into(), api_calls.to_string()],
            vec!["write calls".into(), snapshot_writes.to_string()],
            vec![
                "read fraction".into(),
                format!("{:.1} %", (api_calls - snapshot_writes) as f64 / api_calls as f64 * 100.0),
            ],
            vec!["txdb commits".into(), counter("txdb.commit.count").to_string()],
        ],
    );
    // 503, not 502: one of the writes re-enters a public API internally,
    // and the counter meters entries, not client requests. Deterministic
    // either way, which is what the snapshot gate cares about.
    assert_eq!(api_calls, 503, "2 writes (+1 nested entry) + 500 reads");

    // The dimensional-telemetry conservation law: for every op, the
    // per-tenant labeled values (registered slots + overflow) sum exactly
    // to the op's global counter — nothing is lost to the bounded label
    // table, nothing double-counted.
    for op in ["list_catalogs", "create_catalog", "create_schema"] {
        let global = counter(&format!("catalog.{op}.count"));
        let by_tenant =
            uc_bench::labeled_counter_sum(&parsed, &format!("catalog.{op}.count.by_tenant"));
        assert_eq!(
            by_tenant, global,
            "per-tenant {op} counts must sum to the global counter"
        );
        assert!(global > 0, "{op} was exercised");
    }

    println!("\nconclusion: the calibrated models reproduce the published aggregates");
}
