//! Read-scaling bench for the metadata cache: cached vs uncached
//! `getTable` throughput as the client thread count grows.
//!
//! Fig 10(b) sweeps 1→64 clients and credits the write-through cache
//! (§4.5) with the throughput headroom; this bench tracks how the *cached*
//! path itself scales with threads — the dimension that regresses when a
//! shared lock serializes cache hits. Results are appended to
//! `BENCH_cache.json` (one entry per `UC_BENCH_LABEL`), so the perf
//! trajectory of the read path is recorded across commits.
//!
//! Environment knobs:
//!
//! * `UC_BENCH_LABEL`  — label for this run's entry (default `run`);
//!   an existing entry with the same label is replaced.
//! * `UC_BENCH_QUICK`  — when set, a short CI sanity mode: fewer thread
//!   counts, shorter duration, and a gate asserting the cached path
//!   out-runs the uncached path at 8 threads.
//! * `UC_BENCH_OUT`    — output path (default `BENCH_cache.json`, or
//!   `BENCH_cache_quick.json` in quick mode so CI smoke runs never
//!   overwrite the canonical record).
//!
//! The world models the paper's setup: a bounded database pool with a
//! per-read round trip (pool=8, 1 ms), standing in for the remote OLTP
//! instance. The engine→catalog hop is zero here — unlike `fig10b_cache`,
//! which measures end-to-end latency, this bench isolates the in-process
//! cache path so lock contention is what dominates a cached hit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};
use uc_bench::{closed_loop, print_table, World, WorldConfig};
use uc_catalog::service::crud::TableSpec;
use uc_delta::value::{DataType, Field, Schema};

const TABLES: usize = 100;

#[derive(Serialize, Deserialize, Default)]
struct BenchFile {
    bench: String,
    note: String,
    runs: Vec<Run>,
}

#[derive(Serialize, Deserialize)]
struct Run {
    label: String,
    quick: bool,
    threads: Vec<u64>,
    cached_rps: Vec<f64>,
    cached_mean_us: Vec<f64>,
    cached_p99_us: Vec<f64>,
    uncached_rps: Vec<f64>,
    hit_rate: f64,
}

fn build(cache: bool) -> World {
    let world = World::build(&WorldConfig {
        db_pool: 8,
        db_latency: Duration::from_millis(1),
        cache,
        ..Default::default()
    });
    let ctx = world.admin();
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    world.uc.create_schema(&ctx, &world.ms, "main", "s").unwrap();
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    for i in 0..TABLES {
        world
            .uc
            .create_table(
                &ctx,
                &world.ms,
                TableSpec::managed(&format!("main.s.t{i}"), schema.clone()).unwrap(),
            )
            .unwrap();
    }
    world
}

fn sweep(world: &World, threads: usize, duration: Duration) -> uc_bench::LoadSummary {
    let ctx = world.admin();
    let counter = AtomicU64::new(0);
    closed_loop(threads, duration, || {
        let i = counter.fetch_add(1, Ordering::Relaxed) as usize % TABLES;
        world
            .uc
            .get_table(&ctx, &world.ms, &format!("main.s.t{i}"))
            .unwrap();
    })
}

fn main() {
    let quick = std::env::var("UC_BENCH_QUICK").is_ok();
    let label = std::env::var("UC_BENCH_LABEL").unwrap_or_else(|_| "run".to_string());
    // Quick mode is a CI sanity gate; keep its short-duration points out
    // of the canonical record unless an output path is given explicitly.
    let default_out = if quick { "BENCH_cache_quick.json" } else { "BENCH_cache.json" };
    let out_path = std::env::var("UC_BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    let thread_counts: &[usize] = if quick { &[1, 8] } else { &[1, 2, 4, 8, 16, 32] };
    let duration = if quick {
        Duration::from_millis(200)
    } else {
        Duration::from_millis(400)
    };

    println!("building cached and uncached worlds ({TABLES} tables each)…");
    let cached = build(true);
    let uncached = build(false);
    // Warm the cached node so the sweep measures steady-state hits.
    sweep(&cached, 2, Duration::from_millis(100));

    let mut run = Run {
        label: label.clone(),
        quick,
        threads: Vec::new(),
        cached_rps: Vec::new(),
        cached_mean_us: Vec::new(),
        cached_p99_us: Vec::new(),
        uncached_rps: Vec::new(),
        hit_rate: 0.0,
    };
    let mut rows = Vec::new();
    for &threads in thread_counts {
        let with = sweep(&cached, threads, duration);
        let without = sweep(&uncached, threads, duration);
        run.threads.push(threads as u64);
        run.cached_rps.push(with.throughput_rps);
        run.cached_mean_us.push(with.mean.as_secs_f64() * 1e6);
        run.cached_p99_us.push(with.p99.as_secs_f64() * 1e6);
        run.uncached_rps.push(without.throughput_rps);
        rows.push(vec![
            threads.to_string(),
            format!("{:.0}", with.throughput_rps),
            format!("{:.1}", with.mean.as_secs_f64() * 1e6),
            format!("{:.1}", with.p99.as_secs_f64() * 1e6),
            format!("{:.0}", without.throughput_rps),
        ]);
        if threads == 8 && quick {
            assert!(
                with.throughput_rps >= without.throughput_rps,
                "sanity gate: cached path ({:.0} rps) must not be slower than \
                 uncached ({:.0} rps) at 8 threads",
                with.throughput_rps,
                without.throughput_rps,
            );
        }
    }
    run.hit_rate = cached.uc.cache_stats().hit_rate();
    print_table(
        &format!("cache read scaling — getTable, label={label}"),
        &["threads", "cached rps", "mean µs", "p99 µs", "uncached rps"],
        &rows,
    );
    println!("cache hit rate: {:.2} %", run.hit_rate * 100.0);

    let mut file: BenchFile = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    file.bench = "cache_read_scaling".to_string();
    file.note = format!(
        "getTable closed-loop throughput vs threads ({TABLES} tables; db pool=8 @1ms/read, \
         zero api hop). cached sweeps hit the metadata cache; uncached reads the db every call."
    );
    file.runs.retain(|r| r.label != label);
    file.runs.push(run);
    let json = serde_json::to_string_pretty(&file).expect("bench file serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench file");
    println!("wrote {out_path}");
}
