#![forbid(unsafe_code)]
//! Unity Catalog: an open, universal Lakehouse catalog — Rust reproduction.
//!
//! This crate implements the paper's primary contribution: a multi-tenant
//! catalog service over a three-level namespace (metastore → catalog →
//! schema → asset) with
//!
//! * a generic **entity–relationship data model** with a declarative
//!   asset-type registry ([`model`]) — adding an asset type is adding a
//!   manifest, demonstrated by the MLflow-style registered models;
//! * the **one-asset-per-path principle** enforced transactionally over
//!   storage paths ([`model::paths`]);
//! * **consistent governance**: ownership, SQL-style hierarchical grants,
//!   fine-grained access control (row filters / column masks for trusted
//!   engines), attribute-based access control, and audit logging
//!   ([`authz`], [`audit`]);
//! * **credential vending**: clients never touch cloud storage directly;
//!   the catalog resolves names *or raw paths* to assets, authorizes, and
//!   mints down-scoped expiring tokens ([`service`], §4.3.1);
//! * the §4.5 **performance design**: a per-metastore write-through
//!   multi-version cache giving snapshot reads and serializable writes
//!   without distributed consensus, plus TTL caches for immutable
//!   metadata and batched metadata resolution ([`cache`]);
//! * **discovery support**: metadata change events, lineage ingestion,
//!   and a batch authorization API for second-tier services ([`events`],
//!   [`lineage`]);
//! * **openness**: catalog federation over foreign catalogs, a Delta
//!   Sharing-style protocol, an Iceberg REST-style facade via UniForm,
//!   and catalog-owned commits enabling multi-table transactions.
//!
//! The entry point is [`service::UnityCatalog`] (one node) and
//! [`sharding::ShardRouter`] (a fleet of nodes over one database).

pub mod audit;
pub mod authz;
pub mod cache;
pub mod error;
pub mod events;
pub mod ids;
pub(crate) mod jsonutil;
pub mod lineage;
pub mod model;
pub mod service;
pub mod sharding;
pub mod types;

pub use error::{UcError, UcResult};
pub use ids::Uid;
pub use model::entity::Entity;
pub use service::{Context, EngineIdentity, UcConfig, UnityCatalog};
pub use types::{FullName, SecurableKind};
