//! Figure 6(b): distribution of table types.
//!
//! Paper: managed ≈53 % (most common), foreign ≈16 %, plus external,
//! views, and shallow clones; HMS's three types (managed, external,
//! views) cover only ~82 % of table usage.

use uc_bench::print_table;
use uc_catalog::types::TableType;
use uc_workload::population::{Population, PopulationParams};

fn main() {
    let population = Population::generate(&PopulationParams { num_metastores: 2_000, ..Default::default() });
    let hist = population.table_type_histogram();
    let paper = |t: TableType| match t {
        TableType::Managed => "~53 %",
        TableType::Foreign => "~16 %",
        _ => "remainder",
    };
    let rows: Vec<Vec<String>> = hist
        .iter()
        .map(|(t, f)| vec![t.as_str().to_string(), format!("{:.1} %", f * 100.0), paper(*t).to_string()])
        .collect();
    print_table("Fig 6(b) — table types", &["type", "measured", "paper"], &rows);

    let get = |t: TableType| hist.iter().find(|(x, _)| *x == t).unwrap().1;
    let hms_covered = get(TableType::Managed) + get(TableType::External) + get(TableType::View);
    println!(
        "\nHMS-supported types (managed/external/view) cover {:.1} % of tables \
         (paper: 82 %)",
        hms_covered * 100.0
    );
    assert!((get(TableType::Managed) - 0.53).abs() < 0.03);
    assert!((hms_covered - 0.82).abs() < 0.04);
    println!("conclusion: ~1 in 6 tables is foreign — federation is load-bearing (matches paper)");
}
