//! Chaos suite: deterministic fault injection across the whole stack.
//!
//! Every test builds a world whose storage, STS, database, and catalog
//! all share one seeded [`FaultPlan`], arms a fault mode, drives a real
//! workload (life-of-a-query through the engine, or multi-node cache
//! coherence), and asserts the §4.5 invariants hold *under* the faults:
//! caches agree with the database, one asset per path, no lost or
//! duplicate writes, and bounded retries recover from transient failure.
//!
//! Determinism: the seed is printed at the start of every test
//! (`UC_CHAOS_SEED=<n>`); rerunning with that seed in the environment
//! reproduces the identical fault schedule, byte for byte — see
//! `same_seed_replays_identical_fault_schedule`.

use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use uc_catalog::cache::CacheConfig;
use uc_catalog::service::crud::{BulkSchemaSpec, TableSpec};
use uc_catalog::service::{Context, UcConfig, UnityCatalog};
use uc_catalog::sharding::ShardRouter;
use uc_catalog::types::FullName;
use uc_cloudstore::faults::{points, FaultMode, FaultPlan};
use uc_cloudstore::{AccessLevel, Clock, LatencyModel, ObjectStore, StsService};
use uc_delta::value::{DataType, Field, Schema, Value};
use uc_engine::{Engine, EngineConfig};
use uc_obs::Obs;
use uc_txdb::{Db, DbConfig};

const ADMIN: &str = "admin";

/// A world whose every layer shares one fault plan, one manual clock, and
/// one observability handle (tracing live, timestamped from the virtual
/// clock, so span events replay under the same seed).
struct ChaosWorld {
    plan: FaultPlan,
    db: Db,
    store: ObjectStore,
    uc: Arc<UnityCatalog>,
    ms: uc_catalog::ids::Uid,
    obs: Obs,
}

/// Seed selection: `UC_CHAOS_SEED` env var if set (replay), otherwise the
/// test's own fixed default. The chosen seed is printed so a failing run
/// can be reproduced exactly.
fn chaos_seed(default: u64) -> u64 {
    let seed = std::env::var("UC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    eprintln!("chaos: UC_CHAOS_SEED={seed} (set this env var to replay the fault schedule)");
    seed
}

fn chaos_world(seed: u64) -> ChaosWorld {
    let plan = FaultPlan::seeded(seed);
    let clock = Clock::manual(0);
    let obs_clock = clock.clone();
    let obs = Obs::with_clock_fn(Arc::new(move || obs_clock.now_ms()));
    let sts = StsService::new(clock).with_faults(plan.clone()).with_obs(obs.clone());
    let store = ObjectStore::with_faults(sts, LatencyModel::zero(), plan.clone())
        .with_obs(obs.clone());
    let db = Db::new(DbConfig { faults: plan.clone(), obs: obs.clone(), ..Default::default() });
    let uc = UnityCatalog::new(
        db.clone(),
        store.clone(),
        UcConfig { faults: plan.clone(), obs: obs.clone(), ..Default::default() },
        "node-0",
    );
    let ms = uc.create_metastore(ADMIN, "chaos", "us-west-2").unwrap();
    let ctx = Context::user(ADMIN);
    let root = store.create_bucket("lake");
    uc.create_storage_credential(&ctx, &ms, "lake_cred", &root).unwrap();
    uc.set_metastore_root(&ctx, &ms, "s3://lake/managed").unwrap();
    ChaosWorld { plan, db, store, uc, ms, obs }
}

/// A second catalog node over the same database and store, sharing the
/// same fault plan (the catalog points are per-config, so pass it again).
fn spawn_node(w: &ChaosWorld, id: &str) -> Arc<UnityCatalog> {
    UnityCatalog::new(
        w.db.clone(),
        w.store.clone(),
        UcConfig { faults: w.plan.clone(), ..Default::default() },
        id,
    )
}

/// A cache-disabled node: every read goes to the database, so its answers
/// are ground truth for cache≡DB equivalence checks.
fn truth_node(w: &ChaosWorld) -> Arc<UnityCatalog> {
    UnityCatalog::new(
        w.db.clone(),
        w.store.clone(),
        UcConfig { cache: CacheConfig::disabled(), ..Default::default() },
        "node-truth",
    )
}

fn int_schema() -> Schema {
    Schema::new(vec![Field::new("x", DataType::Int)])
}

/// Current metastore version straight from the database.
fn db_ms_version(w: &ChaosWorld) -> u64 {
    let rt = w.db.begin_read();
    uc_catalog::cache::read_ms_version(&rt, &w.ms)
}

// ---------------------------------------------------------------------
// Fault mode 1: storage-operation failures (Delta commit primitive)
// ---------------------------------------------------------------------

#[test]
fn storage_faults_cause_no_lost_or_duplicate_writes() {
    let seed = chaos_seed(0xD1CE);
    let w = chaos_world(seed);
    let engine = Engine::new(w.uc.clone(), w.ms.clone(), EngineConfig::trusted("dbr"));
    let mut s = engine.session(ADMIN);
    s.execute("CREATE CATALOG main").unwrap();
    s.execute("CREATE SCHEMA main.s").unwrap();
    s.execute("CREATE TABLE main.s.t (x BIGINT)").unwrap();

    // Fail ~30% of conditional writes — the atomic primitive every Delta
    // commit rides on.
    w.plan.arm(points::STORE_PUT_IF_ABSENT, FaultMode::Probability(0.3));

    let mut committed = BTreeSet::new();
    let mut failed = 0u32;
    for i in 0..40i64 {
        match s.execute(&format!("INSERT INTO main.s.t VALUES ({i})")) {
            Ok(_) => {
                committed.insert(i);
            }
            Err(e) => {
                // Fault surfaces as a storage error, not a panic or a
                // silent half-write.
                assert!(
                    e.to_string().contains("injected fault"),
                    "unexpected error shape: {e}"
                );
                failed += 1;
            }
        }
    }
    assert!(failed > 0, "p=0.3 over 40 commits must fail at least once");
    assert!(!committed.is_empty(), "p=0.3 over 40 commits must succeed at least once");
    assert!(w.plan.injected(points::STORE_PUT_IF_ABSENT) > 0);

    // Heal and read back: exactly the acknowledged writes are visible —
    // no lost writes, no duplicates, no phantom rows from failed commits.
    w.plan.disarm(points::STORE_PUT_IF_ABSENT);
    let result = s.execute("SELECT * FROM main.s.t").unwrap();
    let mut seen = Vec::new();
    for row in &result.rows {
        match &row[0] {
            Value::Int(v) => seen.push(*v),
            other => panic!("unexpected value {other:?}"),
        }
    }
    seen.sort_unstable();
    let expect: Vec<i64> = committed.iter().copied().collect();
    assert_eq!(seen, expect, "visible rows must be exactly the acknowledged inserts");
}

// ---------------------------------------------------------------------
// Fault mode 2: token expiry mid-scan → engine re-vends and retries
// ---------------------------------------------------------------------

#[test]
fn token_expiry_mid_scan_recovers_by_revending() {
    let seed = chaos_seed(0xE0F);
    let w = chaos_world(seed);
    let engine = Engine::new(w.uc.clone(), w.ms.clone(), EngineConfig::trusted("dbr"));
    let mut s = engine.session(ADMIN);
    s.execute("CREATE CATALOG main").unwrap();
    s.execute("CREATE SCHEMA main.s").unwrap();
    s.execute("CREATE TABLE main.s.t (x BIGINT)").unwrap();
    // several commits → several files → several storage ops per scan
    for i in 0..5 {
        s.execute(&format!("INSERT INTO main.s.t VALUES ({i})")).unwrap();
    }

    // The first two token verifications fail as "expired", then heal:
    // the scan's first attempt dies, the engine re-vends a read token
    // through the catalog (full re-authorization) and retries.
    w.plan.arm(points::STS_VERIFY, FaultMode::FirstN(2));
    let result = s.execute("SELECT * FROM main.s.t").unwrap();
    assert_eq!(result.rows.len(), 5);
    assert_eq!(w.plan.injected(points::STS_VERIFY), 2, "both scheduled expiries fired");

    // An expiry landing *mid*-scan (after the snapshot was read) recovers
    // the same way: re-vend, rescan from the snapshot.
    w.plan.arm(points::STS_VERIFY, FaultMode::Schedule(vec![3]));
    let result = s.execute("SELECT * FROM main.s.t").unwrap();
    assert_eq!(result.rows.len(), 5);
    assert_eq!(w.plan.injected(points::STS_VERIFY), 1, "mid-scan expiry fired once");
    w.plan.disarm(points::STS_VERIFY);
}

// ---------------------------------------------------------------------
// Fault mode 3: commit-conflict storm + transient DB outages
// ---------------------------------------------------------------------

#[test]
fn commit_conflict_storm_is_absorbed_by_write_retries() {
    let seed = chaos_seed(0x57072);
    let w = chaos_world(seed);
    let ctx = Context::user(ADMIN);
    w.uc.create_catalog(&ctx, &w.ms, "main").unwrap();
    w.uc.create_schema(&ctx, &w.ms, "main", "s").unwrap();
    let ver_before = db_ms_version(&w);
    let retries_before = w.uc.service_stats().write_retries.load(Ordering::Relaxed);

    // Five consecutive injected serialization conflicts, then the storm
    // passes. The write protocol must retry through all of them.
    w.plan.arm(points::TXDB_COMMIT_CONFLICT, FaultMode::FirstN(5));
    w.uc.create_table(&ctx, &w.ms, TableSpec::managed("main.s.stormy", int_schema()).unwrap())
        .unwrap();
    w.plan.disarm(points::TXDB_COMMIT_CONFLICT);

    let retries_after = w.uc.service_stats().write_retries.load(Ordering::Relaxed);
    assert!(retries_after >= retries_before + 5, "each injected conflict costs one retry");
    assert!(
        w.uc.service_stats().write_backoff_ms.load(Ordering::Relaxed) > 0,
        "retries must back off"
    );
    // One logical write → exactly one version bump, despite six attempts.
    assert_eq!(db_ms_version(&w), ver_before + 1, "no duplicate application of the write");
    assert!(w.uc.get_table(&ctx, &w.ms, "main.s.stormy").is_ok());

    // The trace saw the storm happen, not just its end state: every
    // injected conflict left a span event at the txdb layer, every retry
    // left one at the catalog layer, and the injection itself is an event
    // on whatever span was active when it fired.
    assert_eq!(
        w.obs.count_events("txdb.conflict", Some("injected")),
        5,
        "one conflict event per injected serialization failure"
    );
    assert!(
        w.obs.count_events("write.retry", Some("cause=conflict")) >= 5,
        "one retry event per absorbed conflict"
    );
    assert!(
        w.obs.count_events("fault.injected", Some(points::TXDB_COMMIT_CONFLICT)) >= 5,
        "fault injections are visible in the trace"
    );
    // And the commit spans tell the same story: five conflicted, one ok.
    let jsonl = w.obs.trace_jsonl();
    let conflicted = jsonl
        .lines()
        .filter(|l| l.contains(r#""layer":"txdb""#))
        .count();
    assert!(conflicted > 0, "txdb spans present in the dump");
    assert!(jsonl.lines().any(|l| l.contains(r#""status":"conflict""#)));
}

#[test]
fn transient_db_unavailability_is_retried_with_backoff() {
    let seed = chaos_seed(0xDB0FF);
    let w = chaos_world(seed);
    let ctx = Context::user(ADMIN);
    w.uc.create_catalog(&ctx, &w.ms, "main").unwrap();
    w.uc.create_schema(&ctx, &w.ms, "main", "s").unwrap();

    // Both unavailability shapes: a pool-permit timeout and a backend
    // outage at commit. Each heals after two hits.
    w.plan.arm(points::TXDB_POOL_TIMEOUT, FaultMode::FirstN(2));
    w.plan.arm(points::TXDB_COMMIT_UNAVAILABLE, FaultMode::FirstN(2));
    let clock_before = w.uc.clock().now_ms();
    w.uc.create_table(&ctx, &w.ms, TableSpec::managed("main.s.flaky", int_schema()).unwrap())
        .unwrap();
    w.plan.disarm(points::TXDB_POOL_TIMEOUT);
    w.plan.disarm(points::TXDB_COMMIT_UNAVAILABLE);

    assert_eq!(w.plan.injected(points::TXDB_POOL_TIMEOUT), 2);
    assert_eq!(w.plan.injected(points::TXDB_COMMIT_UNAVAILABLE), 2);
    let backoff = w.uc.service_stats().write_backoff_ms.load(Ordering::Relaxed);
    assert!(backoff > 0, "unavailability retries must back off");
    // The backoff is virtual: it advanced the manual clock, no wall sleep.
    assert!(w.uc.clock().now_ms() >= clock_before + backoff);
    assert!(w.uc.get_table(&ctx, &w.ms, "main.s.flaky").is_ok());
}

#[test]
fn sustained_outage_fails_cleanly_and_heals() {
    let seed = chaos_seed(0xDEAD);
    let w = chaos_world(seed);
    let ctx = Context::user(ADMIN);
    w.uc.create_catalog(&ctx, &w.ms, "main").unwrap();
    w.uc.create_schema(&ctx, &w.ms, "main", "s").unwrap();
    let ver_before = db_ms_version(&w);

    // Outage longer than the retry bound: the write must fail with a
    // clean error, leave no partial state, and succeed once healed.
    w.plan.arm(points::TXDB_COMMIT_UNAVAILABLE, FaultMode::FirstN(1000));
    let err = w
        .uc
        .create_table(&ctx, &w.ms, TableSpec::managed("main.s.doomed", int_schema()).unwrap())
        .unwrap_err();
    assert!(err.to_string().contains("transient failures"), "clean abort error: {err}");
    assert_eq!(db_ms_version(&w), ver_before, "failed write must not bump the version");
    w.plan.disarm(points::TXDB_COMMIT_UNAVAILABLE);

    w.uc.create_table(&ctx, &w.ms, TableSpec::managed("main.s.doomed", int_schema()).unwrap())
        .unwrap();
    assert_eq!(db_ms_version(&w), ver_before + 1);
}

// ---------------------------------------------------------------------
// Fault mode 4: credential vending outage
// ---------------------------------------------------------------------

#[test]
fn vending_outage_degrades_gracefully_and_recovers() {
    let seed = chaos_seed(0x5E11);
    let w = chaos_world(seed);
    let engine = Engine::new(w.uc.clone(), w.ms.clone(), EngineConfig::trusted("dbr"));
    let mut s = engine.session(ADMIN);
    s.execute("CREATE CATALOG main").unwrap();
    s.execute("CREATE SCHEMA main.s").unwrap();
    s.execute("CREATE TABLE main.s.t (x BIGINT)").unwrap();
    s.execute("INSERT INTO main.s.t VALUES (1)").unwrap();

    w.plan.arm(points::CATALOG_VEND, FaultMode::FirstN(1));
    let err = w
        .uc
        .temp_credentials(
            &Context::user(ADMIN),
            &w.ms,
            &FullName::parse("main.s.t").unwrap(),
            "relation",
            AccessLevel::Read,
        )
        .unwrap_err();
    assert!(err.to_string().contains("vending unavailable"), "graceful error: {err}");
    // Healed: the very next vend succeeds and the token works end to end.
    let tok = w
        .uc
        .temp_credentials(
            &Context::user(ADMIN),
            &w.ms,
            &FullName::parse("main.s.t").unwrap(),
            "relation",
            AccessLevel::Read,
        )
        .unwrap();
    assert!(w.store.sts().verify(&tok).is_ok());
    assert_eq!(s.execute("SELECT * FROM main.s.t").unwrap().rows.len(), 1);
}

// ---------------------------------------------------------------------
// Fault mode 5: multi-node cache coherence under node churn
// ---------------------------------------------------------------------

#[test]
fn cache_matches_database_under_node_churn_and_cache_faults() {
    let seed = chaos_seed(0xC0C0A);
    let w = chaos_world(seed);
    let ctx = Context::user(ADMIN);
    w.uc.create_catalog(&ctx, &w.ms, "main").unwrap();
    w.uc.create_schema(&ctx, &w.ms, "main", "s").unwrap();

    let node_b = spawn_node(&w, "node-b");
    let node_c = spawn_node(&w, "node-c");
    let mut router = ShardRouter::new(vec![w.uc.clone(), node_b.clone(), node_c.clone()]);

    // Nodes sometimes crash between DB commit and cache update, and
    // sometimes drop reconciliation passes entirely.
    w.plan.arm(points::CATALOG_CACHE_SKIP, FaultMode::Probability(0.4));
    w.plan.arm(points::CATALOG_RECONCILE_SKIP, FaultMode::EveryNth(2));

    let schema_name = FullName::parse("main.s").unwrap();
    for round in 0..12 {
        // write through whichever node currently owns the metastore
        let owner = router.node_for(&w.ms);
        owner
            .create_table(&ctx, &w.ms, TableSpec::managed(&format!("main.s.t{round}"), int_schema()).unwrap())
            .unwrap();
        owner
            .update_comment(&ctx, &w.ms, &FullName::parse(&format!("main.s.t{round}")).unwrap(), "relation", &format!("round {round}"))
            .unwrap();
        // interleave reads on every surviving node (warms caches, some of
        // which are now stale by injected fault)
        for node in router.nodes() {
            let _ = node.list_children(&ctx, &w.ms, &schema_name, None).unwrap();
        }
        // node churn: every 4th round the owner dies; every 6th a node
        // rejoins cold
        if round % 4 == 3 {
            let dead = owner.node_id().to_string();
            router.remove_node(&dead);
        }
        if round % 6 == 5 {
            router.add_node(spawn_node(&w, &format!("node-r{round}")));
        }
        // reconciliation keeper runs on every node — some passes are
        // dropped by the armed fault
        for node in router.nodes() {
            node.reconcile_metastore(&w.ms);
        }
    }
    assert!(w.plan.injected(points::CATALOG_CACHE_SKIP) > 0, "cache-skip fault must fire");
    assert!(w.plan.injected(points::CATALOG_RECONCILE_SKIP) > 0, "reconcile-skip fault must fire");

    // Heal, reconcile once for real, and check cache≡DB on every node.
    w.plan.disarm(points::CATALOG_CACHE_SKIP);
    w.plan.disarm(points::CATALOG_RECONCILE_SKIP);
    let truth = truth_node(&w);
    let db_tables = truth.list_children(&ctx, &w.ms, &schema_name, None).unwrap();
    assert_eq!(db_tables.len(), 12, "every acknowledged create is durable");
    for node in router.nodes() {
        node.reconcile_metastore(&w.ms);
        let cached = node.list_children(&ctx, &w.ms, &schema_name, None).unwrap();
        assert_eq!(cached.len(), db_tables.len(), "node {} agrees on count", node.node_id());
        for t in &db_tables {
            let via_cache = node
                .get_table(&ctx, &w.ms, &format!("main.s.{}", t.name))
                .unwrap();
            assert_eq!(via_cache.id, t.id, "node {} id for {}", node.node_id(), t.name);
            assert_eq!(via_cache.comment, t.comment, "node {} comment for {}", node.node_id(), t.name);
        }
    }

    // One-asset-per-path still holds over the raw path index.
    let rt = w.db.begin_read();
    let all = uc_catalog::model::paths::all_paths(&rt, &w.ms);
    for (i, (p1, _)) in all.iter().enumerate() {
        for (p2, _) in &all[i + 1..] {
            assert!(!p1.overlaps(p2), "{p1} overlaps {p2}");
        }
    }
}

// ---------------------------------------------------------------------
// Fault mode 6: bulk-loaded 10⁵-asset namespace under a fault storm
// ---------------------------------------------------------------------

/// Bulk-import a six-figure namespace through the chunked write path
/// while commits randomly conflict, the backend flickers, and the
/// write-through cache drops updates — then verify the namespace came
/// out exactly right: every acknowledged row durable, a mid-storm
/// subtree drop cascades exactly once, and the cache agrees with the
/// database after one reconcile pass.
#[test]
fn bulk_namespace_survives_fault_storm() {
    let seed = chaos_seed(0xB1_6B16);
    let w = chaos_world(seed);
    let ctx = Context::user(ADMIN);
    w.uc.create_catalog(&ctx, &w.ms, "main").unwrap();

    // 10⁵ assets in release; debug builds shrink the population so plain
    // `cargo test` stays fast. `UC_CHAOS_ASSETS` overrides both.
    let assets: usize = std::env::var("UC_CHAOS_ASSETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 20_000 } else { 100_000 });
    const TABLES_PER_SCHEMA: usize = 200;
    let n_schemas = (assets / (TABLES_PER_SCHEMA + 1)).max(2);
    let specs: Vec<BulkSchemaSpec> = (0..n_schemas)
        .map(|s| BulkSchemaSpec {
            name: format!("s{s:05}"),
            tables: (0..TABLES_PER_SCHEMA).map(|t| format!("t{t}")).collect(),
        })
        .collect();

    // The storm: serialization conflicts and transient outages hit the
    // chunked commits (each absorbed by the bounded write retry), while
    // the write-through cache drops a third of its updates.
    w.plan.arm(points::TXDB_COMMIT_CONFLICT, FaultMode::Probability(0.05));
    w.plan.arm(points::TXDB_COMMIT_UNAVAILABLE, FaultMode::Probability(0.02));
    w.plan.arm(points::CATALOG_CACHE_SKIP, FaultMode::Probability(0.3));

    let created = w
        .uc
        .bulk_create_tables(&ctx, &w.ms, "main", &specs, &int_schema(), 2 * TABLES_PER_SCHEMA)
        .unwrap();
    assert_eq!(created, n_schemas * (TABLES_PER_SCHEMA + 1), "every row acknowledged");

    // Mid-storm subtree drop: one schema and its whole table set go away
    // in a single cascading write, retried through whatever it hits.
    let victim = FullName::parse("main.s00001").unwrap();
    let dropped = w.uc.drop_securable(&ctx, &w.ms, &victim, "schema").unwrap();
    assert_eq!(dropped, TABLES_PER_SCHEMA + 1, "cascade covers the schema and its tables");

    assert!(w.plan.injected(points::TXDB_COMMIT_CONFLICT) > 0, "conflict storm must fire");
    assert!(w.plan.injected(points::CATALOG_CACHE_SKIP) > 0, "cache-skip fault must fire");
    w.plan.disarm(points::TXDB_COMMIT_CONFLICT);
    w.plan.disarm(points::TXDB_COMMIT_UNAVAILABLE);
    w.plan.disarm(points::CATALOG_CACHE_SKIP);

    // Ground truth from a cache-disabled node: exactly the surviving
    // schemas remain, and nothing under the dropped one resolves.
    let truth = truth_node(&w);
    let cat = FullName::parse("main").unwrap();
    let db_schemas = truth.list_children(&ctx, &w.ms, &cat, None).unwrap();
    assert_eq!(db_schemas.len(), n_schemas - 1, "one schema dropped, the rest durable");
    assert!(truth.get_securable(&ctx, &w.ms, &victim, "schema").is_err());
    assert!(truth.get_table(&ctx, &w.ms, "main.s00001.t0").is_err());

    // Cache ≡ DB after one reconcile, sampled across the namespace.
    w.uc.reconcile_metastore(&w.ms);
    for s in (0..n_schemas).step_by((n_schemas / 7).max(1)) {
        if s == 1 {
            continue; // the dropped schema
        }
        let parent = FullName::parse(&format!("main.s{s:05}")).unwrap();
        let cached = w.uc.list_children(&ctx, &w.ms, &parent, None).unwrap();
        assert_eq!(cached.len(), TABLES_PER_SCHEMA, "schema s{s:05} table count");
        let name = format!("main.s{s:05}.t{}", s % TABLES_PER_SCHEMA);
        let via_cache = w.uc.get_table(&ctx, &w.ms, &name).unwrap();
        let via_db = truth.get_table(&ctx, &w.ms, &name).unwrap();
        assert_eq!(via_cache.id, via_db.id, "cache and db disagree on {name}");
    }
    assert!(w.uc.get_table(&ctx, &w.ms, "main.s00001.t0").is_err());
}

// ---------------------------------------------------------------------
// Determinism: the same seed replays the same fault schedule
// ---------------------------------------------------------------------

#[test]
fn same_seed_replays_identical_fault_schedule() {
    // The whole value of the plane: a failing chaos run prints its seed,
    // and rerunning with that seed injects the identical schedule.
    let run = |seed: u64| {
        let w = chaos_world(seed);
        let engine = Engine::new(w.uc.clone(), w.ms.clone(), EngineConfig::trusted("dbr"));
        let mut s = engine.session(ADMIN);
        s.execute("CREATE CATALOG main").unwrap();
        s.execute("CREATE SCHEMA main.s").unwrap();
        s.execute("CREATE TABLE main.s.t (x BIGINT)").unwrap();
        w.plan.arm(points::STORE_PUT_IF_ABSENT, FaultMode::Probability(0.25));
        w.plan.arm(points::TXDB_COMMIT_CONFLICT, FaultMode::Probability(0.2));
        let mut outcomes = Vec::new();
        for i in 0..25i64 {
            outcomes.push(s.execute(&format!("INSERT INTO main.s.t VALUES ({i})")).is_ok());
            let _ = w.uc.update_comment(
                &Context::user(ADMIN),
                &w.ms,
                &FullName::parse("main.s.t").unwrap(),
                "relation",
                &format!("c{i}"),
            );
        }
        (w.plan.injection_log(), outcomes)
    };
    let (log1, outcomes1) = run(777);
    let (log2, outcomes2) = run(777);
    assert!(!log1.is_empty(), "the schedule must actually inject");
    assert_eq!(log1, log2, "same seed → identical injection log");
    assert_eq!(outcomes1, outcomes2, "same seed → identical workload outcomes");
    let (log3, _) = run(778);
    assert_ne!(log1, log3, "different seed → different schedule");
}
