// Vendored offline shim (see shims/README.md): not held to workspace lint
// standards so the call-site-compatible surface can stay close to upstream.
#![allow(clippy::all)]

//! Workspace-local stand-in for `criterion`.
//!
//! Provides the configuration builder, `bench_function`/`Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros the workspace's
//! benchmarks use. Timing is a simple mean over a fixed-duration sample
//! loop (no statistical analysis, outlier detection, or HTML reports);
//! it exists so `cargo bench` compiles and produces usable numbers in an
//! offline container.

use std::hint;
use std::time::{Duration, Instant};

/// Re-implementation of criterion's `black_box` on top of
/// `std::hint::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { iters: 0, elapsed: Duration::ZERO };

        // Warm-up: run until the warm-up budget is spent; this also gives
        // a per-iteration estimate for sizing measurement batches.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            routine(&mut bencher);
            if bencher.iters == 0 {
                break; // routine never called iter(); nothing to measure
            }
        }
        let per_iter = if bencher.iters > 0 {
            bencher.elapsed.as_nanos().max(1) / bencher.iters as u128
        } else {
            1
        };

        bencher.iters = 0;
        bencher.elapsed = Duration::ZERO;
        let budget = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let mut samples: Vec<u128> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let before_iters = bencher.iters;
            let before_elapsed = bencher.elapsed;
            let mut spent: u128 = 0;
            while spent < budget {
                routine(&mut bencher);
                spent = (bencher.elapsed - before_elapsed).as_nanos();
                if bencher.iters == before_iters {
                    break;
                }
            }
            let iters = bencher.iters - before_iters;
            if iters > 0 {
                samples.push((bencher.elapsed - before_elapsed).as_nanos() / iters as u128);
            }
        }

        if samples.is_empty() {
            println!("{name:<45} (no iterations executed)");
        } else {
            samples.sort_unstable();
            let median = samples[samples.len() / 2];
            let mean: u128 = samples.iter().sum::<u128>() / samples.len() as u128;
            println!(
                "{name:<45} median {} mean {} ({} samples, ~{} est)",
                fmt_ns(median),
                fmt_ns(mean),
                samples.len(),
                fmt_ns(per_iter),
            );
        }
        self
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        hint::black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        assert!(count > 0);
    }
}
