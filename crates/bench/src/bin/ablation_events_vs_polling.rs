//! Ablation: discovery synchronization — change events vs polling (§4.4).
//!
//! Discovery catalogs that poll the operational catalog must rescan the
//! namespace to find anything new; the change-event stream delivers
//! exactly the delta. This bench measures catalog load (API calls and
//! entities reprocessed) and wall time for both strategies across a
//! series of incremental updates.


use uc_bench::{fmt_dur, print_table, World, WorldConfig, ADMIN};
use uc_catalog::service::crud::TableSpec;
use uc_catalog::service::Context;
use uc_delta::value::{DataType, Field, Schema};
use uc_discovery::DiscoveryService;

const BASE_TABLES: usize = 1_000;
const UPDATE_ROUNDS: usize = 20;

fn main() {
    let world = World::build(&WorldConfig::default());
    let ctx = Context::user(ADMIN);
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    world.uc.create_schema(&ctx, &world.ms, "main", "s").unwrap();
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    println!("creating {BASE_TABLES} base tables…");
    for i in 0..BASE_TABLES {
        world
            .uc
            .create_table(&ctx, &world.ms, TableSpec::managed(&format!("main.s.t{i}"), schema.clone()).unwrap())
            .unwrap();
    }

    let eventful = DiscoveryService::new(world.uc.clone(), world.ms.clone(), ADMIN);
    let poller = DiscoveryService::new(world.uc.clone(), world.ms.clone(), ADMIN);
    eventful.sync().unwrap();
    poller.sync_by_polling().unwrap();
    let e0 = eventful.stats();
    let p0 = poller.stats();

    // steady state: one new table lands per round, both stay fresh
    let mut event_time = std::time::Duration::ZERO;
    let mut poll_time = std::time::Duration::ZERO;
    for round in 0..UPDATE_ROUNDS {
        world
            .uc
            .create_table(&ctx, &world.ms, TableSpec::managed(&format!("main.s.new{round}"), schema.clone()).unwrap())
            .unwrap();
        let t0 = uc_bench::Stopwatch::start();
        eventful.sync().unwrap();
        event_time += t0.elapsed();
        let t0 = uc_bench::Stopwatch::start();
        poller.sync_by_polling().unwrap();
        poll_time += t0.elapsed();
        assert_eq!(eventful.search(ADMIN, &format!("new{round}")).unwrap().len(), 1);
        assert_eq!(poller.search(ADMIN, &format!("new{round}")).unwrap().len(), 1);
    }
    let e = eventful.stats();
    let p = poller.stats();
    print_table(
        &format!("Ablation — keeping discovery fresh across {UPDATE_ROUNDS} incremental updates"),
        &["strategy", "entities reprocessed", "catalog API calls", "total sync time"],
        &[
            vec![
                "change events".into(),
                (e.entities_indexed - e0.entities_indexed).to_string(),
                (e.catalog_calls - e0.catalog_calls).to_string(),
                fmt_dur(event_time),
            ],
            vec![
                "polling (full rescan)".into(),
                (p.entities_indexed - p0.entities_indexed).to_string(),
                (p.catalog_calls - p0.catalog_calls).to_string(),
                fmt_dur(poll_time),
            ],
        ],
    );
    let reprocess_ratio = (p.entities_indexed - p0.entities_indexed) as f64
        / (e.entities_indexed - e0.entities_indexed) as f64;
    assert!(reprocess_ratio > 100.0);
    println!(
        "\nconclusion: event-driven sync reprocesses exactly what changed; polling\n\
         reprocesses the whole namespace every round ({reprocess_ratio:.0}× more work) —\n\
         the freshness/overhead trade-off §4.4's change events eliminate"
    );
}
