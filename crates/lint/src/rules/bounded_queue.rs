//! Bounded-queue rule. Admission control exists so overload is *shed*,
//! never absorbed into an unbounded in-memory queue that trades a 429
//! for an OOM. `[admission] functions` in Lint.toml lists the serving
//! plane's enqueue paths as `<rel_path>::<fn_name>`; inside one, any
//! collection-growth call (`.push()` / `.push_back()` / `.push_front()`
//! / `.extend()`) is a diagnostic unless the function body has already
//! compared a `.len()` against something *before* the growth site — the
//! check-capacity-then-push shape — or the site carries a reasoned
//! `// uc-lint: allow(bounded-queue)` pragma.
//!
//! Like every uc-lint rule this is textual and function-local: it does
//! not prove the comparison guards the right collection or that the
//! bound is sensible. Its job is to stop the easy regression — an
//! enqueue added to an `[admission]` function with no capacity check
//! anywhere near it — and to force a written justification for anything
//! cleverer.

use super::{is_punct, Diagnostic, FileCtx, RULE_BOUNDED_QUEUE};
use crate::lexer::Kind;

/// Method calls that grow a collection.
const GROWTH_METHODS: &[&str] = &["push", "push_back", "push_front", "extend"];

/// Comparison operators accepted as evidence of a capacity check.
const COMPARISONS: &[&str] = &["<", ">", "<=", ">=", "=="];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let listed = ctx.cfg.list("admission", "functions");
    if listed.is_empty() {
        return;
    }
    let toks = ctx.tokens;
    for f in &ctx.scan.fns {
        let key = format!("{}::{}", ctx.rel_path, f.name);
        if !listed.iter().any(|l| l == &key) {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        if ctx.scan.test_mask[open] {
            continue;
        }
        // Token index of the first `.len()` whose result is compared
        // within the next few tokens — the capacity-check evidence.
        let mut guard_at: Option<usize> = None;
        let mut i = open + 1;
        while i < close {
            let t = &toks[i];
            if guard_at.is_none()
                && t.kind == Kind::Ident
                && t.text == "len"
                && is_punct(&toks[i - 1], ".")
                && i + 1 < close
                && is_punct(&toks[i + 1], "(")
            {
                let window_end = (i + 6).min(close);
                let compared = (i + 2..window_end).any(|j| {
                    toks[j].kind == Kind::Punct && COMPARISONS.contains(&toks[j].text.as_str())
                });
                if compared {
                    guard_at = Some(i);
                }
            }
            if t.kind == Kind::Ident
                && is_punct(&toks[i - 1], ".")
                && i + 1 < close
                && is_punct(&toks[i + 1], "(")
                && GROWTH_METHODS.contains(&t.text.as_str())
                && guard_at.map(|g| g > i).unwrap_or(true)
            {
                out.push(ctx.diag(
                    t.line,
                    RULE_BOUNDED_QUEUE,
                    format!(
                        "`.{}()` grows a queue inside admission function `{}` with no prior capacity check (compare `.len()` against a bound before growing, or suppress with a reasoned allow(bounded-queue) pragma)",
                        t.text, f.name
                    ),
                ));
            }
            i += 1;
        }
    }
}
