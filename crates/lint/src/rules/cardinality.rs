//! Labeled-metric cardinality ban. The dimensional telemetry plane keeps
//! per-tenant series bounded by routing every label through the
//! `CounterFamily` / `HistogramFamily` slot table (fixed capacity +
//! overflow + heavy-hitter sketch). That bound only holds if hot-path
//! code hands the family a *memoized* label — a `format!` built inline at
//! the call site allocates per request and, worse, invites interpolating
//! an unbounded value (entity uid, table name) straight into the label
//! space. `[hotpath] functions` in Lint.toml lists the hot functions; in
//! those, any `.inc(..)` / `.add(..)` / `.record(..)` whose *label
//! argument* contains a `format!` invocation is a diagnostic unless
//! suppressed with a reasoned `// uc-lint: allow(cardinality)` pragma.
//! The hot set is the same call-graph closure the hotpath rule uses —
//! `[hotpath] functions` names roots, and a label built in a helper two
//! calls below `api_enter` is just as hot as one built inline.
//!
//! The label check itself stays textual: it walks the (first)
//! label-position argument only, so plain-value `record(elapsed)` calls
//! on unlabeled histograms never match.

use std::collections::BTreeMap;

use super::{is_ident, is_punct, Diagnostic, FileCtx, RULE_CARDINALITY};
use crate::lexer::Kind;

/// Family methods whose first argument is the label.
const LABELED_METHODS: &[&str] = &["inc", "add", "record"];

/// `members` maps this file's fn indices to their hot-path root chain,
/// computed by the driver from the call-graph closure.
pub fn check(ctx: &FileCtx<'_>, members: &BTreeMap<usize, String>, out: &mut Vec<Diagnostic>) {
    if members.is_empty() {
        return;
    }
    let toks = ctx.tokens;
    for (fn_idx, f) in ctx.scan.fns.iter().enumerate() {
        if !members.contains_key(&fn_idx) {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        if ctx.scan.test_mask[open] {
            continue;
        }
        let mut i = open + 1;
        while i < close {
            let t = &toks[i];
            if t.kind == Kind::Ident
                && is_punct(&toks[i - 1], ".")
                && i + 1 < close
                && is_punct(&toks[i + 1], "(")
                && LABELED_METHODS.contains(&t.text.as_str())
            {
                // Walk the first (label-position) argument only: stop at a
                // top-level `,` or the closing `)`.
                let mut depth = 0i64;
                let mut j = i + 1;
                while j < close {
                    let a = &toks[j];
                    if is_punct(a, "(") || is_punct(a, "[") || is_punct(a, "{") {
                        depth += 1;
                    } else if is_punct(a, ")") || is_punct(a, "]") || is_punct(a, "}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if is_punct(a, ",") && depth == 1 {
                        break;
                    } else if is_ident(a, "format")
                        && j + 1 < close
                        && is_punct(&toks[j + 1], "!")
                    {
                        out.push(ctx.diag(
                            a.line,
                            RULE_CARDINALITY,
                            format!(
                                "inline `format!` label in `.{}()` inside hot-path function `{}` (labels must be memoized and bounded — route them through tenant_label/the family slot table, or suppress with a reasoned allow(cardinality) pragma)",
                                t.text, f.name
                            ),
                        ));
                        break;
                    }
                    j += 1;
                }
            }
            i += 1;
        }
    }
}
