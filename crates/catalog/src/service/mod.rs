//! The Unity Catalog service: one node of the multi-tenant catalog.
//!
//! This module holds the node state and the two protocols everything else
//! is built on:
//!
//! * the **cached read protocol** — serve entity lookups from the
//!   per-metastore write-through cache when the cached metastore version
//!   is current; otherwise read the database at one snapshot, reconcile
//!   the cache if the version moved, and install what was read;
//! * the **write protocol** — a retry loop running each logical write as
//!   a serializable database transaction that reads the metastore version
//!   and commits `version + 1`, then write-through-updates the cache and
//!   publishes change events.
//!
//! The public API surface is split across the sibling modules:
//! [`crud`], [`grants_api`], [`vending`], [`resolve`], [`commits`],
//! [`discovery_api`], [`federation`], [`sharing`].

pub mod commits;
pub mod crud;
pub mod discovery_api;
pub mod federation;
pub mod grants_api;
pub mod resolve;
pub mod rest;
pub mod sharing;
pub mod vending;

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use uc_cloudstore::faults::{points, FaultPlan};
use uc_cloudstore::latency::{LatencyModel, OpClass};
use uc_cloudstore::sched;
use uc_cloudstore::{AccessLevel, Clock, ObjectStore, RootCredential, StoragePath, TempCredential};
use uc_obs::{Counter, CounterFamily, Histogram, HistogramFamily, Obs, SpanGuard, WindowSeries};
use uc_txdb::{Db, ReadTxn, TxError, WriteTxn};

use crate::audit::{AuditDecision, AuditLog};
use crate::authz::decision::{AuthzContext, AuthzNode, SecurableAuthz};
use crate::cache::ttl::TtlCache;
use crate::cache::{read_ms_version, CacheConfig, MsCache, NodeCache};
use crate::error::{UcError, UcResult};
use crate::events::{ChangeOp, EventBus, MetadataChangeEvent};
use crate::ids::Uid;
use crate::model::entity::{Entity, PrincipalRecord};
use crate::model::keys::{self, T_ENTITY, T_MSVER, T_NAME, T_PRINCIPAL, T_TREE, T_TREEMETA};
use crate::types::{FullName, SecurableKind};

/// Annotate the active request span with the metastore version a read
/// was served at. The uc-check history recorder consumes these
/// `history.read` events to reconstruct each operation's observed
/// snapshot window. One thread-local probe and no formatting when no
/// span is active, so the cached hit path stays cheap.
fn history_read_event(version: u64) {
    if uc_obs::current_span_id().is_some() {
        uc_obs::span_event("history.read", &format!("version={version}"));
    }
}

/// Node configuration.
#[derive(Clone)]
pub struct UcConfig {
    /// Latency injected on every public API call — the network hop between
    /// an engine and the (remote) catalog service.
    pub api_latency: LatencyModel,
    pub cache: CacheConfig,
    /// Lifetime of vended temporary credentials (paper: tens of minutes).
    pub cred_ttl_ms: u64,
    /// Cache unexpired vended tokens and reuse them across requests.
    pub cred_cache_enabled: bool,
    /// Audit log retention (records).
    pub audit_capacity: usize,
    /// Modelled cost of one cloud STS round trip when minting a token
    /// (cache hits skip it). Zero in unit tests.
    pub sts_mint_cost: std::time::Duration,
    /// Fault plan for catalog-level injection points (chaos tests).
    /// Share the same plan with the store/db for a coherent schedule.
    pub faults: FaultPlan,
    /// Observability handle. Share the same handle with the store/db so
    /// every layer's spans land in one trace and every counter in one
    /// registry (the same sharing pattern as `faults` and the clock).
    pub obs: Obs,
    /// Record per-tenant dimensional series (`catalog.{op}.count.by_tenant`
    /// etc.) on every API call. On by default; benches flip it off for the
    /// unlabeled comparison arm.
    pub tenant_labels: bool,
    /// Create metastores on the legacy (pre-tree) key layout: no tree
    /// rows, no build marker. Test-only knob for exercising the
    /// [`UnityCatalog::rebuild_tree_index`] migration path; production
    /// metastores are born tree-ready.
    pub start_legacy_layout: bool,
}

impl Default for UcConfig {
    fn default() -> Self {
        UcConfig {
            api_latency: LatencyModel::zero(),
            cache: CacheConfig::default(),
            cred_ttl_ms: 15 * 60 * 1000,
            cred_cache_enabled: true,
            audit_capacity: 100_000,
            sts_mint_cost: std::time::Duration::ZERO,
            faults: FaultPlan::disabled(),
            obs: Obs::disabled(),
            tenant_labels: true,
            start_legacy_layout: false,
        }
    }
}

/// How the calling engine authenticated (§4.3.2): trusted engines are
/// isolated from user code and may receive + enforce FGAC policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineIdentity {
    /// Machine-authenticated, isolated engine (may enforce FGAC).
    Trusted(String),
    /// Engine that can run arbitrary user code.
    Untrusted(String),
}

/// A calling principal plus engine identity and (optionally) the
/// workspace the request originates from — catalogs can be *bound* to
/// specific workspaces (§3.2).
#[derive(Debug, Clone)]
pub struct Context {
    pub principal: String,
    pub engine: EngineIdentity,
    /// Originating workspace, when known. Requests without a workspace
    /// cannot traverse into workspace-bound catalogs.
    pub workspace: Option<String>,
}

impl Context {
    /// A user calling through an untrusted client.
    pub fn user(principal: &str) -> Self {
        Context {
            principal: principal.to_string(),
            engine: EngineIdentity::Untrusted("client".into()),
            workspace: None,
        }
    }

    /// A user calling through a trusted engine.
    pub fn trusted(principal: &str, engine: &str) -> Self {
        Context {
            principal: principal.to_string(),
            engine: EngineIdentity::Trusted(engine.to_string()),
            workspace: None,
        }
    }

    /// Attach the originating workspace.
    pub fn in_workspace(mut self, workspace: &str) -> Self {
        self.workspace = Some(workspace.to_string());
        self
    }

    pub fn is_trusted_engine(&self) -> bool {
        matches!(self.engine, EngineIdentity::Trusted(_))
    }
}

/// Effects a write closure accumulates for write-through caching and event
/// publication after a successful commit.
#[derive(Default)]
pub(crate) struct WriteEffects {
    /// Entities written, each with its tree-index key when the metastore
    /// is on the tree layout (the key is installed as a cache mapping).
    pub upserts: Vec<(Arc<Entity>, Option<String>)>,
    pub tombstones: Vec<Uid>,
    /// Name- and tree-index keys freed by this write (renames, drops), to
    /// be dropped from the cache's name map.
    pub dropped_names: Vec<String>,
    pub events: Vec<(Uid, SecurableKind, String, ChangeOp)>,
    /// Memoized tree-layout marker read: one per transaction attempt,
    /// however many entities the closure writes.
    tree_enabled: Option<bool>,
}

/// The tree-index key of an entity: its ancestor chain of
/// `{group}:{name}` segments under the metastore, resolved by walking
/// parent ids inside the transaction (so the key is computed against the
/// same snapshot the write validates). The metastore entity itself maps
/// to the bare metastore prefix — its row's presence is the readiness
/// signal readers key off.
pub(crate) fn tree_key_of(tx: &mut WriteTxn, ent: &Entity) -> UcResult<String> {
    let ms = &ent.metastore;
    if ent.kind == SecurableKind::Metastore {
        return Ok(keys::tree_ms_prefix(ms));
    }
    let mut segs: Vec<(&'static str, String)> = vec![(ent.kind.name_group(), ent.name.clone())];
    let mut parent = ent.parent.clone();
    let mut guard = 0;
    while let Some(pid) = parent {
        if &pid == ms {
            break;
        }
        let raw = tx
            .get(T_ENTITY, &keys::ent_key(ms, &pid))
            .ok_or_else(|| UcError::Database(format!("dangling parent {pid}")))?;
        let p = Entity::decode(&raw)?;
        segs.push((p.kind.name_group(), p.name));
        parent = p.parent;
        guard += 1;
        if guard > 16 {
            return Err(UcError::Database("parent cycle detected".into()));
        }
    }
    let mut key = keys::tree_ms_prefix(ms);
    for (group, name) in segs.iter().rev() {
        keys::tree_push_child(&mut key, group, name);
    }
    Ok(key)
}

impl WriteEffects {
    /// Whether this metastore maintains the tree index (marker present:
    /// either mid-build or ready — writers dual-write in both states).
    /// Memoized per effects struct, i.e. per transaction attempt.
    fn tree_enabled(&mut self, tx: &mut WriteTxn, ms: &Uid) -> bool {
        *self
            .tree_enabled
            .get_or_insert_with(|| tx.get(T_TREEMETA, ms.as_str()).is_some())
    }

    /// Persist an entity (row + name index + tree index) and record the
    /// effect.
    pub fn upsert(&mut self, tx: &mut WriteTxn, ent: Entity, op: ChangeOp) -> UcResult<Arc<Entity>> {
        let tk = if self.tree_enabled(tx, &ent.metastore) {
            Some(tree_key_of(tx, &ent)?)
        } else {
            None
        };
        Ok(self.upsert_with_tree_key(tx, ent, op, tk))
    }

    /// [`WriteEffects::upsert`] when the caller already holds the parent's
    /// tree key. Bulk loaders resolve each container once per chunk and
    /// extend its key per row, instead of paying `tree_key_of`'s
    /// per-row ancestor point reads.
    pub fn upsert_under(
        &mut self,
        tx: &mut WriteTxn,
        ent: Entity,
        op: ChangeOp,
        parent_tree_key: &str,
    ) -> Arc<Entity> {
        let tk = if self.tree_enabled(tx, &ent.metastore) {
            let mut k = parent_tree_key.to_string();
            keys::tree_push_child(&mut k, ent.kind.name_group(), &ent.name);
            Some(k)
        } else {
            None
        };
        self.upsert_with_tree_key(tx, ent, op, tk)
    }

    fn upsert_with_tree_key(
        &mut self,
        tx: &mut WriteTxn,
        ent: Entity,
        op: ChangeOp,
        tk: Option<String>,
    ) -> Arc<Entity> {
        let ms = ent.metastore.clone();
        let encoded = ent.encode();
        tx.put(T_ENTITY, &keys::ent_key(&ms, &ent.id), encoded.clone());
        tx.put(
            T_NAME,
            &keys::name_key(&ms, ent.parent.as_ref(), ent.kind.name_group(), &ent.name),
            Bytes::from(ent.id.as_str().to_string()),
        );
        // Tree row value is byte-identical to the entity row, so one
        // chain scan resolves a whole ancestor path without point reads.
        if let Some(tk) = &tk {
            tx.put(T_TREE, tk, encoded);
        }
        let arc = Arc::new(ent);
        self.events
            .push((arc.id.clone(), arc.kind, arc.name.clone(), op));
        self.upserts.push((arc.clone(), tk));
        arc
    }
}

/// Node-level counters.
///
/// Fields are [`uc_obs::Counter`]s whose `fetch_add`/`load` mirror the
/// `AtomicU64` API they replaced, so existing callers (and chaos tests)
/// compile unchanged while the values also surface in the node's metrics
/// registry under `catalog.*` names.
#[derive(Debug, Default)]
pub struct ServiceStats {
    pub api_calls: Counter,
    pub write_retries: Counter,
    /// Virtual milliseconds of backoff accumulated by the write protocol
    /// while riding out transient database failures.
    pub write_backoff_ms: Counter,
}

impl ServiceStats {
    fn wired(registry: &uc_obs::Registry) -> Self {
        ServiceStats {
            api_calls: registry.counter("catalog.api.calls"),
            write_retries: registry.counter("catalog.write.retries"),
            write_backoff_ms: registry.counter("catalog.write.backoff_ms"),
        }
    }
}

/// One Unity Catalog node. Share the same [`Db`] and [`ObjectStore`]
/// across several nodes to model a fleet (see [`crate::sharding`]).
pub struct UnityCatalog {
    pub(crate) node_id: String,
    pub(crate) db: Db,
    pub(crate) store: ObjectStore,
    pub(crate) clock: Clock,
    pub(crate) config: UcConfig,
    pub(crate) cache: NodeCache,
    /// Vended-token cache keyed by (asset id, access level).
    pub(crate) cred_cache: TtlCache<(Uid, AccessLevel), TempCredential>,
    /// TTL cache for principal/group records (weak consistency is fine).
    pub(crate) principal_cache: TtlCache<String, PrincipalRecord>,
    /// Root credentials by bucket, mirrored from storage-credential
    /// entities for fast vending.
    pub(crate) roots: RwLock<std::collections::HashMap<String, RootCredential>>,
    pub(crate) audit: AuditLog,
    pub(crate) events: EventBus,
    pub(crate) stats: ServiceStats,
    /// Per-op metric handles for [`UnityCatalog::api_enter`]: a fixed
    /// table built from the sorted [`crate::audit::KNOWN_OPS`] contract at
    /// construction, each slot lazily initialized on first use. The hot
    /// path is a binary search plus a `OnceLock` read — no lock of any
    /// kind (the previous `RwLock<HashMap>` read probe serialized every
    /// API call on one cache line).
    api_instruments: Vec<(&'static str, std::sync::OnceLock<ApiInstruments>)>,
    /// Human-readable tenant aliases for metric labels, keyed by metastore
    /// id. Populated at `create_metastore` from the metastore *name* —
    /// entity `Uid`s are random and must never reach a snapshot (the
    /// telemetry determinism gates diff snapshot bytes without pinning
    /// `UC_SEED`). Metastores created elsewhere in a fleet fall back to a
    /// `ms-`-prefixed uid stub.
    tenant_aliases: RwLock<std::collections::HashMap<Uid, Arc<str>>>,
}

/// Outcome of one cold (cache-miss) lookup round: the db snapshot was
/// stale against the cache pin and the caller should retry, or the
/// lookup completed with this result.
enum MissLookup {
    Stale,
    Done(Option<Arc<Entity>>),
}

#[derive(Clone)]
struct ApiInstruments {
    count: Counter,
    latency: Histogram,
    /// `catalog.{op}.count.by_tenant` — bounded-cardinality per-tenant
    /// breakout; per-label values + overflow sum exactly to `count`.
    labeled_count: CounterFamily,
    /// `catalog.{op}.latency_ms.by_tenant`.
    labeled_latency: HistogramFamily,
    /// `catalog.{op}.window` — trailing-window rate + quantiles.
    window: WindowSeries,
}

/// RAII guard returned by the `api_enter` family: the request span plus
/// (when tenant labeling is on) the deferred per-tenant/window latency
/// recording and the thread-local tenant scope that lets deeper layers
/// (txdb commit, STS mint) attribute their series to this request's
/// tenant.
pub(crate) struct ApiGuard {
    telemetry: Option<ApiTelemetry>,
    /// Kept alive for the duration of the request; dropped after the
    /// telemetry recording in [`ApiGuard::drop`] closes the books.
    _span: SpanGuard,
}

struct ApiTelemetry {
    obs: Obs,
    start_ms: u64,
    window: WindowSeries,
    labeled_latency: HistogramFamily,
    label: Arc<str>,
    /// Pops the tenant off the thread-local scope stack on drop.
    _scope: uc_obs::TenantScope,
}

impl Drop for ApiGuard {
    fn drop(&mut self) {
        if let Some(t) = self.telemetry.take() {
            let now = t.obs.clock_ms();
            let elapsed = now.saturating_sub(t.start_ms);
            t.window.record(now, elapsed);
            t.labeled_latency.record(&t.label, elapsed);
        }
    }
}

thread_local! {
    /// Per-thread (metastore, principal) → rendered label memo so repeat
    /// requests from the same tenant build no strings and take no locks.
    /// Bounded FIFO; eviction only matters for threads that serve many
    /// distinct tenants, which is exactly the cold case.
    static TENANT_MEMO: std::cell::RefCell<Vec<(Uid, String, Arc<str>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Entries kept in [`TENANT_MEMO`] per thread.
const TENANT_MEMO_CAPACITY: usize = 64;

/// The label used when a request carries no metastore or no principal.
pub(crate) const NO_TENANT: &str = "-";

/// Entities backfilled per transaction by [`UnityCatalog::rebuild_tree_index`].
/// Small enough that each chunk's conflict window stays narrow under
/// concurrent writes, large enough that a million-asset rebuild is a few
/// thousand transactions.
const TREE_BUILD_CHUNK: usize = 256;

impl UnityCatalog {
    pub fn new(db: Db, store: ObjectStore, config: UcConfig, node_id: &str) -> Arc<Self> {
        let clock = store.sts().clock().clone();
        Arc::new(UnityCatalog {
            node_id: node_id.to_string(),
            db,
            cache: NodeCache::wired(config.cache.clone(), config.obs.registry()),
            api_instruments: crate::audit::KNOWN_OPS
                .iter()
                .map(|(op, _)| (*op, std::sync::OnceLock::new()))
                .collect(),
            cred_cache: TtlCache::new(clock.clone(), config.cred_ttl_ms),
            principal_cache: TtlCache::new(clock.clone(), 60_000),
            roots: RwLock::new(std::collections::HashMap::new()),
            tenant_aliases: RwLock::new(std::collections::HashMap::new()),
            audit: AuditLog::new(config.audit_capacity),
            events: EventBus::new(),
            stats: ServiceStats::wired(config.obs.registry()),
            clock,
            store,
            config,
        })
    }

    /// Convenience: a node over fresh in-memory substrates (tests).
    pub fn in_memory() -> Arc<Self> {
        UnityCatalog::new(
            Db::in_memory(),
            ObjectStore::in_memory(),
            UcConfig::default(),
            "node-0",
        )
    }

    pub fn node_id(&self) -> &str {
        &self.node_id
    }

    pub fn db(&self) -> &Db {
        &self.db
    }

    pub fn object_store(&self) -> &ObjectStore {
        &self.store
    }

    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    pub fn audit_log(&self) -> &AuditLog {
        &self.audit
    }

    pub fn event_bus(&self) -> &EventBus {
        &self.events
    }

    pub fn cache_stats(&self) -> &crate::cache::CacheStats {
        &self.cache.stats
    }

    pub fn service_stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Fault plan consulted at the catalog's injection points.
    pub fn faults(&self) -> &FaultPlan {
        &self.config.faults
    }

    /// Observability handle: metrics registry + tracer for this node.
    pub fn obs(&self) -> &Obs {
        &self.config.obs
    }

    /// Deterministic text snapshot of every metric this node records —
    /// the `GET /metrics` payload (see [`rest::RestApi`]). The yield point
    /// lets the interleaving explorer schedule stripe folds adversarially
    /// against in-flight recorders.
    pub fn metrics_snapshot(&self) -> String {
        sched::yield_point(sched::points::OBS_FOLD);
        self.config.obs.metrics_snapshot()
    }

    pub fn credential_cache_stats(&self) -> (u64, u64) {
        self.cred_cache.stats()
    }

    pub(crate) fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Entry hook for every public API: models the engine→catalog network
    /// hop, counts the call (globally, per-op, per-tenant, and into the
    /// op's trailing window), and opens the request-scoped span every
    /// deeper layer (txdb, cloudstore) parents under. Callers bind the
    /// returned guard for the duration of the request. Prefer the
    /// [`UnityCatalog::api_enter_t`] / [`UnityCatalog::api_enter_p`]
    /// variants, which attribute the call to a tenant; this bare form is
    /// for the few ops with no request identity at all.
    pub(crate) fn api_enter(&self, op: &str) -> ApiGuard {
        self.api_enter_inner(op, None, None)
    }

    /// [`UnityCatalog::api_enter`] with the tenant taken from the request
    /// context: metastore alias + principal.
    pub(crate) fn api_enter_t(&self, op: &str, ctx: &Context, ms: &Uid) -> ApiGuard {
        self.api_enter_inner(op, Some(&ctx.principal), Some(ms))
    }

    /// [`UnityCatalog::api_enter`] for entry points that carry a bare
    /// principal (and maybe a metastore) instead of a full [`Context`].
    pub(crate) fn api_enter_p(&self, op: &str, principal: &str, ms: Option<&Uid>) -> ApiGuard {
        self.api_enter_inner(op, Some(principal), ms)
    }

    /// Intern the per-op instrument handles in the obs registries. Every
    /// registry lookup takes the registry mutex, so this is the cold half
    /// of [`Self::api_enter_inner`]: callers memoize the result.
    fn make_api_instruments(&self, op: &str) -> ApiInstruments {
        ApiInstruments {
            count: self.config.obs.counter(&format!("catalog.{op}.count")),
            latency: self.config.obs.histogram(&format!("catalog.{op}.latency_ms")),
            labeled_count: self
                .config
                .obs
                .counter_family(&format!("catalog.{op}.count.by_tenant")),
            labeled_latency: self
                .config
                .obs
                .histogram_family(&format!("catalog.{op}.latency_ms.by_tenant")),
            window: self.config.obs.window(&format!("catalog.{op}.window")),
        }
    }

    fn api_enter_inner(&self, op: &str, principal: Option<&str>, ms: Option<&Uid>) -> ApiGuard {
        self.stats.api_calls.fetch_add(1, Ordering::Relaxed);
        // Per-op instrument handles from the fixed KNOWN_OPS table: binary
        // search + OnceLock read, lock-free after the first call per op.
        // An op outside the table (impossible in-tree — the linter
        // cross-checks every entry point against KNOWN_OPS) pays the
        // registry lookups directly rather than panicking.
        // uc-lint: allow(hotpath) -- first-call interning: the OnceLock below makes every later call for this op lock-free
        let make = || self.make_api_instruments(op);
        let instruments = match self.api_instruments.binary_search_by_key(&op, |(name, _)| name) {
            Ok(i) => self.api_instruments[i].1.get_or_init(make).clone(),
            Err(_) => make(),
        };
        instruments.count.inc();
        self.config.api_latency.apply(OpClass::Control);
        let telemetry = if self.config.tenant_labels {
            // Zero-allocation on the repeat path: the label is a memoized
            // Arc<str>, the labeled counter probe is a thread-local hash
            // hit, the window recording is striped atomics.
            let label = self.tenant_label(ms, principal.unwrap_or(NO_TENANT));
            instruments.labeled_count.inc(&label);
            Some(ApiTelemetry {
                start_ms: self.config.obs.clock_ms(),
                window: instruments.window.clone(),
                labeled_latency: instruments.labeled_latency.clone(),
                _scope: uc_obs::tenant_scope(label.clone()),
                label,
                obs: self.config.obs.clone(),
            })
        } else {
            None
        };
        let span = self
            .config
            .obs
            .tracer()
            .span_timed("catalog", op, Some(instruments.latency));
        ApiGuard { telemetry, _span: span }
    }

    /// Record the human-readable alias rendered into this metastore's
    /// metric labels. Called by `create_metastore` with the metastore
    /// name; idempotent.
    pub(crate) fn register_tenant_alias(&self, ms: &Uid, name: &str) {
        let alias: Arc<str> = Arc::from(uc_obs::sanitize_label_value(name));
        self.tenant_aliases.write().insert(ms.clone(), alias);
    }

    /// The `t=<alias>,p=<principal>` label for a request, memoized per
    /// thread so the repeat path allocates nothing and takes no lock.
    fn tenant_label(&self, ms: Option<&Uid>, principal: &str) -> Arc<str> {
        let Some(ms) = ms else {
            // No metastore (node-level ops): rare enough to build fresh.
            return Arc::from(format!("t={NO_TENANT},p={}", uc_obs::sanitize_label_value(principal)));
        };
        let hit = TENANT_MEMO.with(|memo| {
            memo.borrow()
                .iter()
                .find(|(u, p, _)| u == ms && p == principal)
                .map(|(_, _, label)| label.clone())
        });
        if let Some(label) = hit {
            return label;
        }
        // Cold path: resolve the alias under the shared registry lock and
        // memoize the rendered label for this thread.
        let alias = {
            // uc-lint: allow(hotpath) -- read lock only on the first (ms, principal) sighting per thread; the repeat path is the memo above
            let aliases = self.tenant_aliases.read();
            aliases.get(ms).cloned()
        };
        let label: Arc<str> = match alias {
            Some(a) => Arc::from(format!("t={a},p={}", uc_obs::sanitize_label_value(principal))),
            // Unknown metastore (created by another node of the fleet):
            // deterministic uid-derived stub. This never appears in the
            // byte-diffed telemetry gates, which always create their
            // metastores through this node.
            None => Arc::from(format!(
                "t=ms-{},p={}",
                &ms.as_str()[..8.min(ms.as_str().len())],
                uc_obs::sanitize_label_value(principal)
            )),
        };
        TENANT_MEMO.with(|memo| {
            let mut memo = memo.borrow_mut();
            if memo.len() >= TENANT_MEMO_CAPACITY {
                memo.remove(0);
            }
            memo.push((ms.clone(), principal.to_string(), label.clone()));
        });
        label
    }

    /// Freeze the flight recorder now and return the canonical JSONL dump
    /// (empty-events dump when tracing is disabled). The yield point lets
    /// the interleaving explorer land a freeze adversarially between a
    /// commit and its audit flush.
    pub fn flight_freeze(&self, reason: &str) -> String {
        sched::yield_point(sched::points::FLIGHT_FREEZE);
        self.config.obs.flight_freeze(reason)
    }

    /// The node's current cache version for a metastore — the snapshot
    /// pin every cached read validates against. The serving plane keys
    /// its single-flight coalescing map on this value: a request that
    /// observed version v+1 computes a different flight key than a
    /// leader that started at v, so a leader's result is never served
    /// across an invalidation (read-your-snapshot for followers).
    pub fn metastore_cache_version(&self, ms: &Uid) -> u64 {
        if !self.config.cache.enabled {
            return 0;
        }
        self.cache.for_metastore(ms).version()
    }

    /// Audit a request the serving plane shed under admission control.
    /// Shedding is a governance decision like any deny: it must land in
    /// the audit trail (op `serve_admit`, action `requestShed`), never be
    /// a silent drop.
    pub fn audit_shed(&self, principal: &str, detail: impl std::fmt::Display) {
        self.record_audit(principal, "requestShed", None, AuditDecision::Deny, detail);
    }

    pub(crate) fn record_audit(
        &self,
        principal: &str,
        action: &str,
        securable: Option<&Uid>,
        decision: AuditDecision,
        detail: impl std::fmt::Display,
    ) {
        let detail = detail.to_string();
        let trace_id = uc_obs::current_trace_id();
        // Mirror the record into the flight recorder first: its lane lock
        // is a leaf taken and released before the audit log's append lane,
        // keeping the lock order acyclic. No-op when tracing is disabled.
        self.config.obs.flight().note_audit(
            self.now_ms(),
            trace_id.unwrap_or(0),
            action,
            &detail,
        );
        self.audit.record(
            self.now_ms(),
            principal,
            action,
            securable,
            decision,
            detail,
            trace_id,
        );
    }

    // ------------------------------------------------------------------
    // Cached read protocol
    // ------------------------------------------------------------------

    fn db_entity_by_id(&self, rt: &ReadTxn, ms: &Uid, id: &Uid) -> UcResult<Option<Arc<Entity>>> {
        match rt.get(T_ENTITY, &keys::ent_key(ms, id)) {
            Some(raw) => {
                let ent = Entity::decode(&raw)?;
                // Soft-deleted rows are invisible to the namespace; only
                // the garbage collector reads them (by direct scan).
                Ok(ent.is_active().then(|| Arc::new(ent)))
            }
            None => Ok(None),
        }
    }

    fn db_entity_by_name(
        &self,
        rt: &ReadTxn,
        ms: &Uid,
        name_key: &str,
    ) -> UcResult<Option<Arc<Entity>>> {
        let Some(id_raw) = rt.get(T_NAME, name_key) else {
            return Ok(None);
        };
        let id = Uid::from_string(
            String::from_utf8(id_raw.to_vec())
                .map_err(|e| UcError::Database(format!("corrupt name index: {e}")))?,
        );
        self.db_entity_by_id(rt, ms, &id)
    }

    fn install_in_cache(&self, c: &MsCache, ms: &Uid, ent: &Arc<Entity>, at_version: u64) {
        self.install_in_cache_tk(c, ms, ent, at_version, None);
    }

    /// [`Self::install_in_cache`] with the entity's tree-index key when
    /// the caller resolved one (write-through and chain-scan installs),
    /// so cached chain lookups can probe by tree key.
    fn install_in_cache_tk(
        &self,
        c: &MsCache,
        ms: &Uid,
        ent: &Arc<Entity>,
        at_version: u64,
        tree_key: Option<String>,
    ) {
        let nk = keys::name_key(ms, ent.parent.as_ref(), ent.kind.name_group(), &ent.name);
        let pk = ent.storage_path.as_ref().map(|p| keys::path_key(ms, p));
        c.insert(ent.clone(), at_version, nk, pk, tree_key);
    }

    /// Look up an entity by a fully-built name-index key.
    pub(crate) fn entity_by_name_key(
        &self,
        ms: &Uid,
        name_key: &str,
    ) -> UcResult<Option<Arc<Entity>>> {
        if !self.config.cache.enabled {
            let rt = self.db.begin_read();
            return self.db_entity_by_name(&rt, ms, name_key);
        }
        let cache = self.cache.for_metastore(ms);
        self.entity_by_name_key_in(ms, &cache, name_key)
    }

    /// [`UnityCatalog::entity_by_name_key`] against an already-resolved
    /// metastore cache (callers that loop hold the `Arc` once). Requires
    /// the cache to be enabled.
    ///
    /// The hit path takes no exclusive lock: an index probe, a seqlock
    /// read of the version pin, and a sharded snapshot read. Misses read
    /// the database at one snapshot, then serialize on the metastore's
    /// write gate to reconcile/install.
    pub(crate) fn entity_by_name_key_in(
        &self,
        ms: &Uid,
        cache: &MsCache,
        name_key: &str,
    ) -> UcResult<Option<Arc<Entity>>> {
        let mut missed = false;
        for _ in 0..8 {
            // Yield outside the write gate: a parked client holds no lock.
            sched::yield_point(sched::points::READ_LOOKUP);
            if let Some(id) = cache.id_by_name(name_key) {
                let ver = cache.version();
                if let Some(hit) = cache.get_at(&id, ver) {
                    self.cache.stats.hits.fetch_add(1, Ordering::Relaxed);
                    history_read_event(ver);
                    return Ok(hit);
                }
            }
            // One logical lookup counts one miss, however many times a
            // stale snapshot sends it around the loop (`stale_retries`
            // counts those).
            if !missed {
                missed = true;
                self.cache.stats.misses.fetch_add(1, Ordering::Relaxed);
            }
            // uc-lint: allow(hotpath) -- hot/cold boundary: the cached hit returned above; a miss round reads the db and takes the write gate
            match self.entity_by_name_miss_in(ms, cache, name_key)? {
                MissLookup::Stale => continue,
                MissLookup::Done(found) => return Ok(found),
            }
        }
        // uc-lint: allow(hotpath) -- stale-retry budget exhausted: serve this read straight from a db snapshot
        self.db_entity_by_name_uncached(ms, name_key)
    }

    /// One cold lookup round for [`Self::entity_by_name_key_in`]: read the
    /// db at a snapshot, then reconcile/install under the write gate. The
    /// cached-hit fast path returns before its call site, so nothing here
    /// runs on the hot path (the linter prunes the closure at the
    /// boundary pragma above).
    fn entity_by_name_miss_in(
        &self,
        ms: &Uid,
        cache: &MsCache,
        name_key: &str,
    ) -> UcResult<MissLookup> {
        let rt = self.db.begin_read();
        let db_ver = read_ms_version(&rt, ms);
        let found = self.db_entity_by_name(&rt, ms, name_key)?;
        let _gate = cache.write_gate();
        match db_ver.cmp(&cache.version()) {
            std::cmp::Ordering::Less => {
                // Stale snapshot (pin advanced past it); retry.
                self.cache.stats.stale_retries.fetch_add(1, Ordering::Relaxed);
                return Ok(MissLookup::Stale);
            }
            std::cmp::Ordering::Greater => {
                self.cache.reconcile(ms, cache, &self.db, db_ver, rt.snapshot_csn())
            }
            std::cmp::Ordering::Equal => {}
        }
        if let Some(ent) = &found {
            self.install_in_cache(cache, ms, ent, db_ver);
        }
        history_read_event(db_ver);
        Ok(MissLookup::Done(found))
    }

    /// Cache-bypassing name lookup at one db snapshot.
    fn db_entity_by_name_uncached(&self, ms: &Uid, name_key: &str) -> UcResult<Option<Arc<Entity>>> {
        let rt = self.db.begin_read();
        history_read_event(read_ms_version(&rt, ms));
        self.db_entity_by_name(&rt, ms, name_key)
    }

    /// Look up an entity by id.
    pub(crate) fn entity_by_id(&self, ms: &Uid, id: &Uid) -> UcResult<Option<Arc<Entity>>> {
        if !self.config.cache.enabled {
            let rt = self.db.begin_read();
            return self.db_entity_by_id(&rt, ms, id);
        }
        let cache = self.cache.for_metastore(ms);
        self.entity_by_id_in(ms, &cache, id)
    }

    /// [`UnityCatalog::entity_by_id`] against an already-resolved metastore
    /// cache; same locking discipline as [`Self::entity_by_name_key_in`].
    pub(crate) fn entity_by_id_in(
        &self,
        ms: &Uid,
        cache: &MsCache,
        id: &Uid,
    ) -> UcResult<Option<Arc<Entity>>> {
        let mut missed = false;
        for _ in 0..8 {
            sched::yield_point(sched::points::READ_LOOKUP);
            let ver = cache.version();
            if let Some(hit) = cache.get_at(id, ver) {
                self.cache.stats.hits.fetch_add(1, Ordering::Relaxed);
                history_read_event(ver);
                return Ok(hit);
            }
            if !missed {
                missed = true;
                self.cache.stats.misses.fetch_add(1, Ordering::Relaxed);
            }
            // uc-lint: allow(hotpath) -- hot/cold boundary: the cached hit returned above; a miss round reads the db and takes the write gate
            match self.entity_by_id_miss_in(ms, cache, id)? {
                MissLookup::Stale => continue,
                MissLookup::Done(found) => return Ok(found),
            }
        }
        // uc-lint: allow(hotpath) -- stale-retry budget exhausted: serve this read straight from a db snapshot
        self.db_entity_by_id_uncached(ms, id)
    }

    /// One cold lookup round for [`Self::entity_by_id_in`]; see
    /// [`Self::entity_by_name_miss_in`].
    fn entity_by_id_miss_in(
        &self,
        ms: &Uid,
        cache: &MsCache,
        id: &Uid,
    ) -> UcResult<MissLookup> {
        let rt = self.db.begin_read();
        let db_ver = read_ms_version(&rt, ms);
        let found = self.db_entity_by_id(&rt, ms, id)?;
        let _gate = cache.write_gate();
        match db_ver.cmp(&cache.version()) {
            std::cmp::Ordering::Less => {
                self.cache.stats.stale_retries.fetch_add(1, Ordering::Relaxed);
                return Ok(MissLookup::Stale);
            }
            std::cmp::Ordering::Greater => {
                self.cache.reconcile(ms, cache, &self.db, db_ver, rt.snapshot_csn())
            }
            std::cmp::Ordering::Equal => {}
        }
        if let Some(ent) = &found {
            self.install_in_cache(cache, ms, ent, db_ver);
        }
        history_read_event(db_ver);
        Ok(MissLookup::Done(found))
    }

    /// Cache-bypassing id lookup at one db snapshot.
    fn db_entity_by_id_uncached(&self, ms: &Uid, id: &Uid) -> UcResult<Option<Arc<Entity>>> {
        let rt = self.db.begin_read();
        history_read_event(read_ms_version(&rt, ms));
        self.db_entity_by_id(&rt, ms, id)
    }

    /// Resolve a storage path to the asset covering it (§4.3.1 path-based
    /// access). Checks the in-memory path map for the path and each of its
    /// ancestors before falling back to the database.
    pub(crate) fn entity_by_path(
        &self,
        ms: &Uid,
        path: &StoragePath,
    ) -> UcResult<Option<(Arc<Entity>, StoragePath)>> {
        let cache = self.config.cache.enabled.then(|| self.cache.for_metastore(ms));
        if let Some(c) = &cache {
            let ver = c.version();
            let mut candidate = Some(path.clone());
            while let Some(p) = candidate {
                if let Some(id) = c.id_by_path(&keys::path_key(ms, &p.to_string())) {
                    if let Some(Some(hit)) = c.get_at(&id, ver) {
                        self.cache.stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Some((hit, p)));
                    }
                }
                candidate = p.parent();
            }
        }
        // Database fallback at one snapshot.
        let rt = self.db.begin_read();
        let Some((id, registered)) = crate::model::paths::resolve_path(&rt, ms, path) else {
            return Ok(None);
        };
        let found = self.db_entity_by_id(&rt, ms, &id)?;
        if let Some(ent) = &found {
            if let Some(c) = &cache {
                let db_ver = read_ms_version(&rt, ms);
                let _gate = c.write_gate();
                if db_ver == c.version() {
                    self.install_in_cache(c, ms, ent, db_ver);
                }
            }
            Ok(Some((ent.clone(), registered)))
        } else {
            Ok(None)
        }
    }

    // ------------------------------------------------------------------
    // Write protocol
    // ------------------------------------------------------------------

    /// Run a logical write against a metastore: serializable transaction,
    /// metastore-version bump, write-through cache update, event
    /// publication. The closure may run multiple times on conflict.
    pub(crate) fn write_ms<T>(
        &self,
        ms: &Uid,
        mut f: impl FnMut(&mut WriteTxn, u64, &mut WriteEffects) -> UcResult<T>,
    ) -> UcResult<T> {
        let cache_arc = self.cache.for_metastore(ms);
        let mut attempts = 0;
        loop {
            // Interleaving-exploration yields bracket the attempt: before
            // the snapshot is taken, before the commit, and (below) after
            // the commit but before the cache apply. All are placed outside
            // the write gate and the DB commit lock so a parked client
            // never wedges the running one. No-ops outside scheduled runs.
            sched::yield_point(sched::points::WRITE_BEGIN);
            let mut tx = self.db.begin_write();
            let cur: u64 = tx
                .get(T_MSVER, ms.as_str())
                .and_then(|b| String::from_utf8(b.to_vec()).ok())
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let mut fx = WriteEffects::default();
            let out = match f(&mut tx, cur, &mut fx) {
                Ok(out) => out,
                Err(e) => {
                    // The closure decided at metastore version `cur`; the
                    // history checker verifies the error against the model
                    // state at exactly that version.
                    uc_obs::span_event("history.abort", &format!("version={cur}"));
                    return Err(e);
                }
            };
            tx.put(T_MSVER, ms.as_str(), Bytes::from((cur + 1).to_string()));
            sched::yield_point(sched::points::WRITE_PRECOMMIT);
            match tx.commit() {
                Ok(csn) => {
                    uc_obs::span_event(
                        "history.commit",
                        &format!("version={} csn={csn}", cur + 1),
                    );
                    sched::yield_point(sched::points::WRITE_POSTCOMMIT);
                    // CATALOG_CACHE_SKIP models a node crashing between the
                    // database commit and its write-through cache update:
                    // the commit is durable but this node's cache lags until
                    // a later read or reconcile observes db_ver > version.
                    let skip_cache = self.config.faults.should_inject(points::CATALOG_CACHE_SKIP);
                    if self.config.cache.enabled && !skip_cache {
                        let _gate = cache_arc.write_gate();
                        // A slow writer must never regress the shared pin:
                        // if a later commit's apply (or a reader's
                        // reconcile) already advanced past this write's
                        // version, that reconcile consumed the changelog
                        // through a CSN at or beyond this commit, so these
                        // effects are already reflected — applying them now
                        // would pin the cache to an older version and break
                        // read-your-writes for every client on this node.
                        if cache_arc.version() <= cur {
                            if cache_arc.version() != cur {
                                self.cache.reconcile(ms, &cache_arc, &self.db, cur + 1, csn);
                            }
                            for nk in &fx.dropped_names {
                                cache_arc.remove_name_mapping(nk);
                            }
                            // Install effects first, advance the pin last:
                            // concurrent readers at the old pin can't see
                            // the new versions, and readers after the
                            // advance see all of them.
                            for (ent, tk) in &fx.upserts {
                                self.install_in_cache_tk(&cache_arc, ms, ent, cur + 1, tk.clone());
                            }
                            for id in &fx.tombstones {
                                cache_arc.insert_tombstone(id, cur + 1);
                            }
                            cache_arc.advance(cur + 1, csn);
                        }
                    }
                    let now = self.now_ms();
                    for (id, kind, name, op) in fx.events {
                        self.events.publish(MetadataChangeEvent {
                            seq: 0,
                            metastore: ms.clone(),
                            entity_id: id,
                            kind,
                            name,
                            op,
                            at_version: cur + 1,
                            timestamp_ms: now,
                        });
                    }
                    return Ok(out);
                }
                Err(err @ (TxError::Conflict { .. } | TxError::Unavailable { .. })) => {
                    self.stats.write_retries.fetch_add(1, Ordering::Relaxed);
                    attempts += 1;
                    if attempts > 64 {
                        return Err(UcError::Database(format!(
                            "write aborted after {attempts} transient failures (last: {err})"
                        )));
                    }
                    // Bounded exponential backoff before retrying, driven by
                    // the virtual clock: on a manual clock we advance time
                    // instead of sleeping, so chaos tests stay instant and
                    // deterministic; on a system clock the in-process retry
                    // is immediate (the injected DB latency already paces it).
                    let backoff_ms = 1u64 << attempts.min(6);
                    let cause = match &err {
                        TxError::Conflict { .. } => "conflict",
                        _ => "unavailable",
                    };
                    uc_obs::span_event(
                        "write.retry",
                        &format!("attempt={attempts} cause={cause} backoff_ms={backoff_ms}"),
                    );
                    self.stats.write_backoff_ms.fetch_add(backoff_ms, Ordering::Relaxed);
                    if self.clock.is_manual() {
                        self.clock.advance_ms(backoff_ms);
                    }
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    // ------------------------------------------------------------------
    // Name resolution and authorization assembly
    // ------------------------------------------------------------------

    /// Resolve a qualified name to the entity chain `[leaf, …, catalog]`.
    /// `leaf_group` selects the namespace group of the final part. A
    /// one-part name with a non-catalog group resolves a metastore-level
    /// securable (share, connection, external location, storage
    /// credential). Four-part names address model versions
    /// (`catalog.schema.model.vN`).
    ///
    /// On the tree layout the whole chain resolves in **one** range scan:
    /// the leaf's tree key is computable from the qualified name alone,
    /// and [`ReadTxn::scan_chain`] returns the row at every ancestor
    /// prefix in a single traversal. The cached fast path probes the same
    /// per-level tree keys under one version pin. Metastores whose tree
    /// index is not (yet) built fall back to the per-segment name-index
    /// walk.
    pub(crate) fn lookup_chain(
        &self,
        ms: &Uid,
        name: &FullName,
        leaf_group: &str,
    ) -> UcResult<Vec<Arc<Entity>>> {
        let not_found = || UcError::NotFound(name.to_string());
        let malformed = || UcError::InvalidArgument(format!("malformed name {name}"));
        // (group, segment-name) pairs outermost-first: enough to build
        // every level's tree key without touching the database.
        let mut segs: Vec<(&str, &str)> = Vec::with_capacity(name.len());
        if name.len() == 1 && leaf_group != "catalog" {
            segs.push((leaf_group, name.catalog()));
        } else {
            segs.push(("catalog", name.catalog()));
            if name.len() >= 2 {
                segs.push(("schema", name.schema().ok_or_else(malformed)?));
            }
            if name.len() >= 3 {
                // For four-part names the third segment is always the
                // registered model; `leaf_group` applies to the final one.
                let third_group = if name.len() == 4 {
                    SecurableKind::RegisteredModel.name_group()
                } else {
                    leaf_group
                };
                segs.push((third_group, name.asset().ok_or_else(malformed)?));
            }
            if name.len() == 4 {
                segs.push((SecurableKind::ModelVersion.name_group(), name.parts[3].as_str()));
            }
        }
        let mut level_keys: Vec<String> = Vec::with_capacity(segs.len());
        {
            let mut key = keys::tree_ms_prefix(ms);
            for (group, seg_name) in &segs {
                keys::tree_push_child(&mut key, group, seg_name);
                level_keys.push(key.clone());
            }
        }
        // Resolve the metastore cache once for the whole chain instead of
        // re-probing the node-level map per segment.
        let cache = self.config.cache.enabled.then(|| self.cache.for_metastore(ms));
        if let Some(c) = &cache {
            // Cached fast path: every level present under one version pin.
            sched::yield_point(sched::points::READ_LOOKUP);
            let ver = c.version();
            let mut chain: Vec<Arc<Entity>> = Vec::with_capacity(level_keys.len());
            for lk in level_keys.iter().rev() {
                match c.id_by_name(lk).map(|id| c.get_at(&id, ver)) {
                    Some(Some(Some(hit))) => chain.push(hit),
                    Some(Some(None)) => {
                        // Cached tombstone at this pin: the name is gone.
                        self.cache.stats.hits.fetch_add(1, Ordering::Relaxed);
                        history_read_event(ver);
                        return Err(not_found());
                    }
                    _ => {
                        chain.clear();
                        break;
                    }
                }
            }
            if chain.len() == level_keys.len() {
                self.cache.stats.hits.fetch_add(chain.len() as u64, Ordering::Relaxed);
                history_read_event(ver);
                return Ok(chain);
            }
        }
        let rt = self.db.begin_read();
        let Some(leaf_key) = level_keys.last() else {
            return Err(malformed());
        };
        let rows = rt.scan_chain(T_TREE, leaf_key);
        if rows.first().is_some_and(|(k, _)| *k == keys::tree_ms_prefix(ms)) {
            // Tree index ready: the chain scan returned the metastore row
            // plus the row at every existing level, shortest key first. A
            // missing level means the name doesn't resolve (tree rows are
            // removed on soft delete, so presence implies active).
            if cache.is_some() {
                self.cache.stats.misses.fetch_add(1, Ordering::Relaxed);
            }
            let db_ver = read_ms_version(&rt, ms);
            let mut ents: Vec<Arc<Entity>> = Vec::with_capacity(segs.len());
            let mut rows_iter = rows.iter().skip(1);
            let mut complete = true;
            for lk in &level_keys {
                match rows_iter.next() {
                    Some((k, raw)) if k == lk => {
                        let ent = Entity::decode(raw)?;
                        if !ent.is_active() {
                            complete = false;
                            break;
                        }
                        ents.push(Arc::new(ent));
                    }
                    _ => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                // The op still observed a snapshot: record it so checkers
                // can place the not-found against a version.
                history_read_event(db_ver);
                return Err(not_found());
            }
            if let Some(c) = &cache {
                // Miss path only: the cached chain hit returns above
                // without reaching the gate. (Not a lint pragma — the
                // chain lookup is reached from resolve, not a hotpath
                // root, so no hotpath diagnostic fires here.)
                let _gate = c.write_gate();
                if db_ver > c.version() {
                    self.cache.reconcile(ms, c, &self.db, db_ver, rt.snapshot_csn());
                }
                if db_ver == c.version() {
                    for (ent, lk) in ents.iter().zip(&level_keys) {
                        self.install_in_cache_tk(c, ms, ent, db_ver, Some(lk.clone()));
                    }
                }
            }
            history_read_event(db_ver);
            ents.reverse();
            return Ok(ents);
        }
        drop(rt);
        // Legacy layout (tree index not built): per-segment walk over the
        // name index.
        let lookup = |nk: &str| match &cache {
            Some(c) => self.entity_by_name_key_in(ms, c, nk),
            None => {
                let rt = self.db.begin_read();
                self.db_entity_by_name(&rt, ms, nk)
            }
        };
        if name.len() == 1 && leaf_group != "catalog" {
            let ent = lookup(&keys::name_key(ms, Some(ms), leaf_group, name.catalog()))?
                .ok_or_else(not_found)?;
            return Ok(vec![ent]);
        }
        let cat = lookup(&keys::name_key(ms, None, "catalog", name.catalog()))?
            .ok_or_else(not_found)?;
        if name.len() == 1 {
            return Ok(vec![cat]);
        }
        let schema_name = name
            .schema()
            .ok_or_else(|| UcError::InvalidArgument(format!("malformed name {name}")))?;
        let sch = lookup(&keys::name_key(ms, Some(&cat.id), "schema", schema_name))?
            .ok_or_else(not_found)?;
        if name.len() == 2 {
            return Ok(vec![sch, cat]);
        }
        // For four-part names the third segment is always the registered
        // model; `leaf_group` applies to the final segment.
        let third_group = if name.len() == 4 {
            SecurableKind::RegisteredModel.name_group()
        } else {
            leaf_group
        };
        let asset_name = name
            .asset()
            .ok_or_else(|| UcError::InvalidArgument(format!("malformed name {name}")))?;
        let leaf = lookup(&keys::name_key(ms, Some(&sch.id), third_group, asset_name))?
            .ok_or_else(not_found)?;
        if name.len() == 3 {
            return Ok(vec![leaf, sch, cat]);
        }
        let version = lookup(&keys::name_key(
            ms,
            Some(&leaf.id),
            SecurableKind::ModelVersion.name_group(),
            &name.parts[3],
        ))?
        .ok_or_else(not_found)?;
        Ok(vec![version, leaf, sch, cat])
    }

    /// Force the node to revalidate a metastore's cache against the
    /// database. Pure cache hits serve the node's last-known metastore
    /// version; under (rare, best-effort) multi-node ownership another
    /// node's writes are only observed when a database read occurs. An
    /// event-driven keeper — or a test — calls this to bound staleness
    /// explicitly.
    pub fn reconcile_metastore(&self, ms: &Uid) {
        if !self.config.cache.enabled {
            return;
        }
        let _span = self.config.obs.span("catalog", "reconcile_metastore");
        // A dropped reconciliation pass (keeper lagging, event lost). The
        // next pass — or any read that observes a newer db version — will
        // catch the cache up; chaos tests assert exactly that.
        if self.config.faults.should_inject(points::CATALOG_RECONCILE_SKIP) {
            return;
        }
        let rt = self.db.begin_read();
        let db_ver = crate::cache::read_ms_version(&rt, ms);
        let cache = self.cache.for_metastore(ms);
        let _gate = cache.write_gate();
        if db_ver > cache.version() {
            self.cache.reconcile(ms, &cache, &self.db, db_ver, rt.snapshot_csn());
        }
    }

    /// Run a small maintenance transaction with bounded retry on
    /// transient failures. Unlike [`Self::write_ms`] this bumps no
    /// metastore version and does no cache write-through — index rows
    /// written this way enter caches lazily through later lookups.
    fn maintenance_txn<T>(&self, mut f: impl FnMut(&mut WriteTxn) -> UcResult<T>) -> UcResult<T> {
        let mut attempts = 0;
        loop {
            sched::yield_point(sched::points::WRITE_BEGIN);
            let mut tx = self.db.begin_write();
            let out = f(&mut tx)?;
            match tx.commit() {
                Ok(_) => return Ok(out),
                Err(err @ (TxError::Conflict { .. } | TxError::Unavailable { .. })) => {
                    self.stats.write_retries.fetch_add(1, Ordering::Relaxed);
                    attempts += 1;
                    if attempts > 64 {
                        return Err(UcError::Database(format!(
                            "maintenance write aborted after {attempts} transient failures (last: {err})"
                        )));
                    }
                    let backoff_ms = 1u64 << attempts.min(6);
                    self.stats.write_backoff_ms.fetch_add(backoff_ms, Ordering::Relaxed);
                    if self.clock.is_manual() {
                        self.clock.advance_ms(backoff_ms);
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Build the order-preserving tree index for a metastore created on
    /// the legacy layout — online, without blocking readers or writers.
    ///
    /// Protocol (DESIGN.md §11): flip the build marker to `building` so
    /// every concurrent writer starts dual-writing tree rows; copy the
    /// existing entities in bounded chunks of independent transactions,
    /// point-reading each row inside its chunk so an entity dropped or
    /// renamed mid-build is never resurrected (the read either observes
    /// the current row or the chunk conflicts and retries); finally write
    /// the metastore's own tree row plus the `ready` marker in one
    /// transaction — that row's presence is the atomic readiness signal
    /// readers key off, so they flip to range-scan resolution all at
    /// once. Returns the number of tree rows backfilled.
    pub fn rebuild_tree_index(&self, ms: &Uid) -> UcResult<usize> {
        let _api = self.api_enter_p("rebuild_tree_index", NO_TENANT, Some(ms));
        // Phase 1: announce the build. Writers observe the marker inside
        // their own transactions and dual-write from here on.
        self.maintenance_txn(|tx| {
            if tx.get(T_TREEMETA, ms.as_str()).is_none() {
                tx.put(T_TREEMETA, ms.as_str(), Bytes::from_static(b"building"));
            }
            Ok(())
        })?;
        // Phase 2: snapshot the entity keys once (read-only, unvalidated),
        // then backfill in chunks.
        let ent_keys: Vec<String> = {
            let rt = self.db.begin_read();
            rt.scan_prefix(T_ENTITY, &keys::ent_ms_prefix(ms))
                .into_iter()
                .map(|(k, _)| k)
                .collect()
        };
        let mut written = 0usize;
        for chunk in ent_keys.chunks(TREE_BUILD_CHUNK) {
            written += self.maintenance_txn(|tx| {
                let mut n = 0usize;
                for ekey in chunk {
                    // Skip rows that vanished (purged) since the snapshot;
                    // soft-deleted rows get no tree row, and the metastore
                    // row is reserved for the readiness flip below.
                    let Some(raw) = tx.get(T_ENTITY, ekey) else { continue };
                    let ent = Entity::decode(&raw)?;
                    if !ent.is_active() || ent.kind == SecurableKind::Metastore {
                        continue;
                    }
                    let tk = tree_key_of(tx, &ent)?;
                    tx.put(T_TREE, &tk, raw);
                    n += 1;
                }
                Ok(n)
            })?;
        }
        // Phase 3: flip readiness atomically.
        self.maintenance_txn(|tx| {
            let raw = tx
                .get(T_ENTITY, &keys::ent_key(ms, ms))
                .ok_or_else(|| UcError::NotFound(format!("metastore {ms}")))?;
            tx.put(T_TREE, &keys::tree_ms_prefix(ms), raw);
            tx.put(T_TREEMETA, ms.as_str(), Bytes::from_static(b"ready"));
            Ok(())
        })?;
        self.record_audit(
            NO_TENANT,
            "rebuildTreeIndex",
            Some(ms),
            AuditDecision::Allow,
            format!("{written} rows"),
        );
        Ok(written)
    }

    /// Chain from an entity up to (and including) the metastore entity.
    pub(crate) fn chain_from_entity(
        &self,
        ms: &Uid,
        ent: Arc<Entity>,
    ) -> UcResult<Vec<Arc<Entity>>> {
        self.extend_chain(ms, vec![ent])
    }

    /// Extend an already-resolved chain (leaf first) up to and including
    /// the metastore entity, continuing the parent walk from the chain's
    /// last element. Callers that resolved `[leaf, …, catalog]` via
    /// [`Self::lookup_chain`] reuse those entities instead of re-walking
    /// the cache from the leaf.
    pub(crate) fn extend_chain(
        &self,
        ms: &Uid,
        mut chain: Vec<Arc<Entity>>,
    ) -> UcResult<Vec<Arc<Entity>>> {
        let cache = self.config.cache.enabled.then(|| self.cache.for_metastore(ms));
        let lookup = |id: &Uid| match &cache {
            Some(c) => self.entity_by_id_in(ms, c, id),
            None => {
                let rt = self.db.begin_read();
                self.db_entity_by_id(&rt, ms, id)
            }
        };
        let mut guard = 0;
        while let Some(parent_id) = chain.last().and_then(|e| e.parent.clone()) {
            let parent = lookup(&parent_id)?
                .ok_or_else(|| UcError::Database(format!("dangling parent {parent_id}")))?;
            chain.push(parent);
            guard += 1;
            if guard > 16 {
                return Err(UcError::Database("parent cycle detected".into()));
            }
        }
        // Append the metastore entity if the chain didn't reach it.
        if chain.last().map(|e| e.kind) != Some(SecurableKind::Metastore) {
            let ms_ent = lookup(ms)?
                .ok_or_else(|| UcError::NotFound(format!("metastore {ms}")))?;
            chain.push(ms_ent);
        }
        Ok(chain)
    }

    /// The caller's authorization context within a metastore.
    pub(crate) fn authz_context(&self, ms: &Uid, principal: &str) -> UcResult<AuthzContext> {
        let ms_ent = self
            .entity_by_id(ms, ms)?
            .ok_or_else(|| UcError::NotFound(format!("metastore {ms}")))?;
        self.authz_context_with(&ms_ent, principal)
    }

    /// [`Self::authz_context`] when the caller already holds the metastore
    /// entity (e.g. at the end of a completed chain) — skips one lookup.
    pub(crate) fn authz_context_with(
        &self,
        ms_ent: &Entity,
        principal: &str,
    ) -> UcResult<AuthzContext> {
        let record = self.principal_record(principal)?;
        let groups: std::collections::HashSet<String> = record.groups.into_iter().collect();
        // Short-circuit the owner check before parsing the admin list out
        // of the metastore entity's properties.
        let is_admin = ms_ent.owner == principal
            || ms_ent
                .metastore_admins()
                .iter()
                .any(|a| a == principal || groups.contains(a));
        Ok(AuthzContext {
            principal: principal.to_string(),
            groups,
            is_metastore_admin: is_admin,
        })
    }

    /// Fetch (with TTL caching) a principal's record.
    pub(crate) fn principal_record(&self, principal: &str) -> UcResult<PrincipalRecord> {
        if let Some(rec) = self.principal_cache.get(principal) {
            return Ok(rec);
        }
        let rt = self.db.begin_read();
        let rec = match rt.get(T_PRINCIPAL, principal) {
            Some(raw) => PrincipalRecord::decode(&raw)?,
            None => PrincipalRecord::default(),
        };
        self.principal_cache.put(principal.to_string(), rec.clone());
        Ok(rec)
    }

    /// A principal's group memberships — engines use this to build the
    /// evaluation context for FGAC expressions referencing
    /// `is_account_group_member`.
    pub fn principal_groups(&self, name: &str) -> UcResult<Vec<String>> {
        Ok(self.principal_record(name)?.groups)
    }

    /// Register or update a principal and its group memberships. This is
    /// an account-level identity operation (outside metastore governance).
    pub fn upsert_principal(&self, name: &str, groups: &[&str]) -> UcResult<()> {
        let rec = PrincipalRecord { groups: groups.iter().map(|g| g.to_string()).collect() };
        let mut tx = self.db.begin_write();
        tx.put(T_PRINCIPAL, name, rec.encode());
        tx.commit()?;
        // Identity changes take effect within the TTL window; drop our own
        // cached copy immediately.
        self.principal_cache.clear();
        Ok(())
    }

    /// Enforce catalog→workspace bindings (§3.2): if any catalog in the
    /// chain is bound to specific workspaces, the request must originate
    /// from one of them.
    pub(crate) fn enforce_workspace_binding(
        &self,
        ctx: &Context,
        chain: &[Arc<Entity>],
    ) -> UcResult<()> {
        for node in chain.iter().filter(|e| e.kind == SecurableKind::Catalog) {
            let bindings = node.workspace_bindings();
            if bindings.is_empty() {
                continue;
            }
            let ok = ctx
                .workspace
                .as_ref()
                .is_some_and(|w| bindings.iter().any(|b| b == w));
            if !ok {
                return Err(UcError::PermissionDenied(format!(
                    "catalog {} is bound to workspaces {:?}; request came from {:?}",
                    node.name, bindings, ctx.workspace
                )));
            }
        }
        Ok(())
    }

    /// Build the authorization view of a chain.
    pub(crate) fn authz_of(chain: &[Arc<Entity>]) -> SecurableAuthz {
        SecurableAuthz::new(
            chain
                .iter()
                .map(|e| AuthzNode {
                    id: e.id.clone(),
                    kind: e.kind,
                    owner: e.owner.clone(),
                    grants: e.grants.clone(),
                })
                .collect(),
        )
    }

    /// Locate the root credential for a bucket, consulting the in-memory
    /// mirror first and rebuilding it from storage-credential entities on
    /// miss.
    pub(crate) fn root_for_bucket(&self, ms: &Uid, bucket: &str) -> UcResult<RootCredential> {
        if let Some(root) = self.roots.read().get(bucket) {
            return Ok(root.clone());
        }
        // Rebuild from entities: scan storage credentials in this metastore.
        let rt = self.db.begin_read();
        let prefix = keys::children_group_prefix(ms, Some(ms), SecurableKind::StorageCredential.name_group());
        for (_, id_raw) in rt.scan_prefix(T_NAME, &prefix) {
            let id = Uid::from_string(String::from_utf8(id_raw.to_vec()).unwrap_or_default());
            if let Some(ent) = self.db_entity_by_id(&rt, ms, &id)? {
                let (Some(b), Some(secret)) = (
                    ent.properties.get(crate::model::entity::props::BUCKET),
                    ent.properties.get(crate::model::entity::props::ROOT_SECRET),
                ) else {
                    continue;
                };
                if let Ok(secret) = secret.parse::<u64>() {
                    let root = RootCredential { bucket: b.clone(), secret };
                    self.roots.write().insert(b.clone(), root.clone());
                }
            }
        }
        self.roots
            .read()
            .get(bucket)
            .cloned()
            .ok_or_else(|| UcError::Storage(format!("no storage credential for bucket {bucket}")))
    }
}
