//! Read-scaling bench for the metadata cache: cached vs uncached
//! `getTable` throughput as the client thread count grows.
//!
//! Fig 10(b) sweeps 1→64 clients and credits the write-through cache
//! (§4.5) with the throughput headroom; this bench tracks how the *cached*
//! path itself scales with threads — the dimension that regresses when a
//! shared lock serializes cache hits. Results are appended to
//! `BENCH_cache.json` (one entry per `UC_BENCH_LABEL`), so the perf
//! trajectory of the read path is recorded across commits. Each run also
//! records a perfect-scaling reference line (1-thread cached rps × N) so
//! the distance to linear is visible in the record, not just in a reader's
//! head.
//!
//! The harness itself must not serialize the sweep: workers derive which
//! table to hit from their own (worker, iteration) coordinates via
//! `closed_loop_indexed` — no shared "next request" counter — and request
//! names are precomputed so the measured region holds no allocation.
//!
//! Environment knobs:
//!
//! * `UC_BENCH_LABEL`  — label for this run's entry (default `run`);
//!   an existing entry with the same label is replaced.
//! * `UC_BENCH_QUICK`  — when set, a short CI sanity mode: fewer thread
//!   counts, shorter duration, and a gate asserting the cached path
//!   out-runs the uncached path at 8 threads.
//! * `UC_BENCH_HOP_MS` — engine→catalog network hop in milliseconds
//!   (default 0). With a hop, a cached read is latency-bound and threads
//!   overlap their waits, so throughput scales with threads even on one
//!   core — the configuration the CI scaling-ratio gate runs: in quick
//!   mode a nonzero hop sweeps [1, 32] and asserts 32-thread cached rps
//!   ≥ 8× 1-thread (a knee from a shared exclusive lock on the hit path
//!   caps the ratio near 1 regardless of core count).
//! * `UC_BENCH_OUT`    — output path (default `BENCH_cache.json`, or
//!   `BENCH_cache_quick.json` in quick mode so CI smoke runs never
//!   overwrite the canonical record).
//!
//! The world models the paper's setup: a bounded database pool with a
//! per-read round trip (pool=8, 1 ms), standing in for the remote OLTP
//! instance. The default zero-hop configuration isolates the in-process
//! cache path so lock contention is what dominates a cached hit.

use std::time::Duration;

use serde::{Deserialize, Serialize};
use uc_bench::{closed_loop_indexed, print_table, World, WorldConfig};
use uc_catalog::service::crud::TableSpec;
use uc_delta::value::{DataType, Field, Schema};

const TABLES: usize = 100;

#[derive(Serialize, Deserialize, Default)]
struct BenchFile {
    bench: String,
    note: String,
    runs: Vec<Run>,
}

/// One labelled run. The trailing fields are `Option` so entries written
/// before they existed still deserialize (the JSON shim reads a missing
/// field as null).
#[derive(Serialize, Deserialize)]
struct Run {
    label: String,
    quick: bool,
    threads: Vec<u64>,
    cached_rps: Vec<f64>,
    cached_mean_us: Vec<f64>,
    cached_p99_us: Vec<f64>,
    uncached_rps: Vec<f64>,
    hit_rate: f64,
    /// Host cores the run had (`available_parallelism`); scaling numbers
    /// from a 1-core host are latency-bound, not CPU-bound.
    cores: Option<u64>,
    /// Engine→catalog hop (`UC_BENCH_HOP_MS`) in effect.
    api_hop_ms: Option<f64>,
    /// Perfect-scaling reference: 1-thread cached rps × N per point.
    perfect_scaling_rps: Option<Vec<f64>>,
}

fn build(cache: bool, hop_ms: u64) -> World {
    let world = World::build(&WorldConfig {
        db_pool: 8,
        db_latency: Duration::from_millis(1),
        api_latency: Duration::from_millis(hop_ms),
        cache,
        ..Default::default()
    });
    let ctx = world.admin();
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    world.uc.create_schema(&ctx, &world.ms, "main", "s").unwrap();
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    for i in 0..TABLES {
        world
            .uc
            .create_table(
                &ctx,
                &world.ms,
                TableSpec::managed(&format!("main.s.t{i}"), schema.clone()).unwrap(),
            )
            .unwrap();
    }
    world
}

fn table_names() -> Vec<String> {
    (0..TABLES).map(|i| format!("main.s.t{i}")).collect()
}

fn sweep(world: &World, names: &[String], threads: usize, duration: Duration) -> uc_bench::LoadSummary {
    let ctx = world.admin();
    closed_loop_indexed(threads, duration, |worker, iter| {
        // Stride by a prime so each worker walks its own permutation of
        // the table set; no cross-thread state is involved.
        let i = (worker * 31 + iter as usize * 7) % TABLES;
        world.uc.get_table(&ctx, &world.ms, &names[i]).unwrap();
    })
}

fn main() {
    let quick = std::env::var("UC_BENCH_QUICK").is_ok();
    let label = std::env::var("UC_BENCH_LABEL").unwrap_or_else(|_| "run".to_string());
    let hop_ms: u64 = std::env::var("UC_BENCH_HOP_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    // Quick mode is a CI sanity gate; keep its short-duration points out
    // of the canonical record unless an output path is given explicitly.
    let default_out = if quick { "BENCH_cache_quick.json" } else { "BENCH_cache.json" };
    let out_path = std::env::var("UC_BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    let thread_counts: &[usize] = match (quick, hop_ms > 0) {
        (true, false) => &[1, 8],
        (true, true) => &[1, 32], // the CI scaling-ratio gate's two points
        (false, _) => &[1, 2, 4, 8, 16, 32],
    };
    let duration = if quick {
        Duration::from_millis(200)
    } else {
        Duration::from_millis(400)
    };

    println!("building cached and uncached worlds ({TABLES} tables each, hop={hop_ms} ms)…");
    let cached = build(true, hop_ms);
    let uncached = build(false, hop_ms);
    let names = table_names();
    // Warm the cached node deterministically: one pass over every table,
    // so the sweeps measure steady-state hits regardless of duration.
    {
        let ctx = cached.admin();
        for name in &names {
            cached.uc.get_table(&ctx, &cached.ms, name).unwrap();
        }
    }

    let mut run = Run {
        label: label.clone(),
        quick,
        threads: Vec::new(),
        cached_rps: Vec::new(),
        cached_mean_us: Vec::new(),
        cached_p99_us: Vec::new(),
        uncached_rps: Vec::new(),
        hit_rate: 0.0,
        cores: std::thread::available_parallelism().ok().map(|n| n.get() as u64),
        api_hop_ms: Some(hop_ms as f64),
        perfect_scaling_rps: Some(Vec::new()),
    };
    let mut rows = Vec::new();
    let mut one_thread_rps = 0.0f64;
    for &threads in thread_counts {
        let with = sweep(&cached, &names, threads, duration);
        let without = sweep(&uncached, &names, threads, duration);
        if threads == 1 {
            one_thread_rps = with.throughput_rps;
        }
        let perfect = one_thread_rps * threads as f64;
        run.threads.push(threads as u64);
        run.cached_rps.push(with.throughput_rps);
        run.cached_mean_us.push(with.mean.as_secs_f64() * 1e6);
        run.cached_p99_us.push(with.p99.as_secs_f64() * 1e6);
        run.uncached_rps.push(without.throughput_rps);
        if let Some(p) = run.perfect_scaling_rps.as_mut() {
            p.push(perfect);
        }
        rows.push(vec![
            threads.to_string(),
            format!("{:.0}", with.throughput_rps),
            format!("{:.0}", perfect),
            format!("{:.1}", with.mean.as_secs_f64() * 1e6),
            format!("{:.1}", with.p99.as_secs_f64() * 1e6),
            format!("{:.0}", without.throughput_rps),
        ]);
        if threads == 8 && quick && hop_ms == 0 {
            assert!(
                with.throughput_rps >= without.throughput_rps,
                "sanity gate: cached path ({:.0} rps) must not be slower than \
                 uncached ({:.0} rps) at 8 threads",
                with.throughput_rps,
                without.throughput_rps,
            );
        }
        if threads == 32 && quick && hop_ms > 0 {
            let ratio = with.throughput_rps / one_thread_rps.max(1e-9);
            assert!(
                ratio >= 8.0,
                "scaling gate: 32-thread cached rps must be ≥ 8× 1-thread \
                 under a {hop_ms} ms hop (got {:.1}×: {:.0} vs {:.0} rps) — \
                 something on the hit path serializes requests",
                ratio,
                with.throughput_rps,
                one_thread_rps,
            );
            println!("scaling gate passed: 32-thread/1-thread cached ratio {ratio:.1}× (≥ 8×)");
        }
    }
    run.hit_rate = cached.uc.cache_stats().hit_rate();

    // The sweep ran with tenant labeling on (the default): verify the
    // dimensional plane metered it. The per-tenant getTable values must
    // appear and sum exactly to the op's global counter — the bounded
    // label table loses nothing even under the full sweep's concurrency.
    {
        let parsed = uc_bench::parse_snapshot(&cached.uc.metrics_snapshot());
        let global = match parsed.get("catalog.get_securable.count") {
            Some(uc_bench::SnapshotValue::Counter(n)) => *n,
            other => panic!("catalog.get_securable.count missing: {other:?}"),
        };
        let by_tenant = uc_bench::labeled_counter_sum(&parsed, "catalog.get_securable.count.by_tenant");
        assert!(global > 0, "sweep must meter get_securable (the getTable entry op)");
        assert_eq!(
            by_tenant, global,
            "per-tenant get_securable counts must sum to the global counter"
        );
        assert!(
            parsed.keys().any(|k| k.starts_with("catalog.get_securable.count.by_tenant{t=bench")),
            "labeled series must carry the metastore alias, not a uid"
        );
    }
    print_table(
        &format!("cache read scaling — getTable, label={label}"),
        &["threads", "cached rps", "perfect rps", "mean µs", "p99 µs", "uncached rps"],
        &rows,
    );
    println!("cache hit rate: {:.2} %", run.hit_rate * 100.0);

    let mut file: BenchFile = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    file.bench = "cache_read_scaling".to_string();
    file.note = format!(
        "getTable closed-loop throughput vs threads ({TABLES} tables; db pool=8 @1ms/read; \
         api hop per UC_BENCH_HOP_MS, default zero). cached sweeps hit the metadata cache; \
         uncached reads the db every call. perfect_scaling_rps = 1-thread cached rps × N."
    );
    file.runs.retain(|r| r.label != label);
    file.runs.push(run);
    let json = serde_json::to_string_pretty(&file).expect("bench file serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench file");
    println!("wrote {out_path}");
}
