//! The open REST-style API facade.
//!
//! Unity Catalog's interoperability story (§1, §4.1) rests on *open,
//! well-defined APIs*: any client that can form a JSON request — a BI
//! tool, a UI, an engine in another language — can drive the catalog
//! without linking against it. This module is that wire surface: a
//! transport-agnostic dispatcher mapping `(method, JSON params)` to the
//! service API, with JSON responses and structured errors carrying
//! HTTP-style status codes.
//!
//! The dispatcher is deliberately thin: every request is authenticated by
//! headers (`principal`, `engine`, `trusted`, `workspace`), translated,
//! delegated to the typed API (which performs all authorization), and
//! serialized back. No governance logic lives here.

use serde_json::{json, Value as Json};

use crate::error::UcError;
use crate::ids::Uid;
use crate::model::entity::Entity;
use crate::service::crud::TableSpec;
use crate::service::{Context, EngineIdentity, UnityCatalog};
use crate::types::{FullName, SecurableKind, TableFormat, TableType};

/// A structured API error: HTTP-ish status plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiError {
    pub status: u16,
    pub message: String,
}

impl From<UcError> for ApiError {
    fn from(e: UcError) -> Self {
        let status = match &e {
            UcError::NotFound(_) => 404,
            UcError::AlreadyExists(_) | UcError::PathConflict { .. } => 409,
            UcError::CommitConflict { .. } => 409,
            UcError::PermissionDenied(_) => 403,
            UcError::ResourceExhausted(_) => 429,
            UcError::InvalidArgument(_) | UcError::UnsupportedOperation(_) => 400,
            UcError::Database(_) | UcError::Storage(_) | UcError::Federation(_) => 500,
        };
        ApiError { status, message: e.to_string() }
    }
}

fn bad_request(msg: impl Into<String>) -> ApiError {
    ApiError { status: 400, message: msg.into() }
}

/// Caller identification, as it would arrive in request headers.
#[derive(Debug, Clone)]
pub struct RequestAuth {
    pub principal: String,
    pub engine: String,
    pub trusted: bool,
    pub workspace: Option<String>,
}

impl RequestAuth {
    pub fn user(principal: &str) -> Self {
        RequestAuth {
            principal: principal.to_string(),
            engine: "rest-client".into(),
            trusted: false,
            workspace: None,
        }
    }

    fn context(&self) -> Context {
        Context {
            principal: self.principal.clone(),
            engine: if self.trusted {
                EngineIdentity::Trusted(self.engine.clone())
            } else {
                EngineIdentity::Untrusted(self.engine.clone())
            },
            workspace: self.workspace.clone(),
        }
    }
}

/// The wire representation of an entity.
fn entity_json(e: &Entity) -> Json {
    json!({
        "id": e.id.as_str(),
        "kind": e.kind.as_str(),
        "name": e.name,
        "owner": e.owner,
        "comment": e.comment,
        "storage_path": e.storage_path,
        "table_type": e.table_type().map(|t| t.as_str()),
        "format": e.table_format().map(|f| f.as_str()),
        "created_at_ms": e.created_at_ms,
        "updated_at_ms": e.updated_at_ms,
        "grants": e.grants.iter()
            .map(|(g, p)| json!({"grantee": g, "privilege": p.as_str()}))
            .collect::<Vec<_>>(),
    })
}

fn str_param<'a>(params: &'a Json, key: &str) -> Result<&'a str, ApiError> {
    params
        .get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| bad_request(format!("missing string parameter '{key}'")))
}

fn name_param(params: &Json, key: &str) -> Result<FullName, ApiError> {
    FullName::parse(str_param(params, key)?).map_err(ApiError::from)
}

/// A REST endpoint bound to one catalog node.
pub struct RestApi {
    uc: std::sync::Arc<UnityCatalog>,
}

impl RestApi {
    pub fn new(uc: std::sync::Arc<UnityCatalog>) -> Self {
        RestApi { uc }
    }

    /// Dispatch one request. `method` mirrors the REST route (e.g.
    /// `catalogs.create`, `tables.get`); `params` is the request body.
    pub fn handle(
        &self,
        auth: &RequestAuth,
        ms: &Uid,
        method: &str,
        params: &Json,
    ) -> Result<Json, ApiError> {
        let mut span = self.uc.obs().span("rest", method);
        self.uc.obs().counter(&format!("rest.{method}.count")).inc();
        let result = self.dispatch(auth, ms, method, params);
        if let Err(e) = &result {
            span.set_status(if e.status >= 500 { "error" } else { "client_error" });
        }
        result
    }

    /// The metrics accessor, mirroring a `GET /metrics` route: a
    /// deterministic text snapshot of every instrument the node has
    /// registered, across all layers sharing its `Obs` handle.
    pub fn metrics(&self) -> String {
        self.uc.metrics_snapshot()
    }

    fn dispatch(
        &self,
        auth: &RequestAuth,
        ms: &Uid,
        method: &str,
        params: &Json,
    ) -> Result<Json, ApiError> {
        let ctx = auth.context();
        match method {
            "catalogs.create" => {
                let e = self.uc.create_catalog(&ctx, ms, str_param(params, "name")?)?;
                Ok(entity_json(&e))
            }
            "catalogs.list" => {
                let list = self.uc.list_catalogs(&ctx, ms)?;
                Ok(json!({ "catalogs": list.iter().map(|e| entity_json(e)).collect::<Vec<_>>() }))
            }
            "schemas.create" => {
                let e = self.uc.create_schema(
                    &ctx,
                    ms,
                    str_param(params, "catalog")?,
                    str_param(params, "name")?,
                )?;
                Ok(entity_json(&e))
            }
            "tables.create" => {
                let name = name_param(params, "name")?;
                let columns: uc_delta::value::Schema = serde_json::from_value(
                    params.get("columns").cloned().unwrap_or(Json::Null),
                )
                .map_err(|e| bad_request(format!("bad columns: {e}")))?;
                let format = params
                    .get("format")
                    .and_then(|v| v.as_str())
                    .map(|s| TableFormat::parse(s).ok_or_else(|| bad_request(format!("bad format {s}"))))
                    .transpose()?
                    .unwrap_or(TableFormat::Delta);
                let location = params.get("location").and_then(|v| v.as_str());
                let spec = TableSpec {
                    name,
                    columns,
                    format,
                    table_type: if location.is_some() { TableType::External } else { TableType::Managed },
                    storage_path: location.map(|s| s.to_string()),
                    foreign_type: None,
                };
                let e = self.uc.create_table(&ctx, ms, spec)?;
                Ok(entity_json(&e))
            }
            "tables.get" => {
                let e = self.uc.get_table(&ctx, ms, str_param(params, "name")?)?;
                Ok(entity_json(&e))
            }
            "tables.list" => {
                let parent = name_param(params, "schema")?;
                let list = self.uc.list_children(&ctx, ms, &parent, Some("relation"))?;
                Ok(json!({ "tables": list.iter().map(|e| entity_json(e)).collect::<Vec<_>>() }))
            }
            "securables.drop" => {
                let name = name_param(params, "name")?;
                let group = str_param(params, "kind_group")?;
                let dropped = self.uc.drop_securable(&ctx, ms, &name, group)?;
                Ok(json!({ "dropped": dropped }))
            }
            "grants.add" | "grants.revoke" => {
                let name = name_param(params, "securable")?;
                let group = str_param(params, "kind_group")?;
                let grantee = str_param(params, "grantee")?;
                let privilege = crate::authz::Privilege::parse(str_param(params, "privilege")?)
                    .ok_or_else(|| bad_request("unknown privilege"))?;
                if method == "grants.add" {
                    self.uc.grant(&ctx, ms, &name, group, grantee, privilege)?;
                } else {
                    self.uc.revoke(&ctx, ms, &name, group, grantee, privilege)?;
                }
                Ok(json!({ "ok": true }))
            }
            "grants.list" => {
                let name = name_param(params, "securable")?;
                let group = str_param(params, "kind_group")?;
                let grants = self.uc.show_grants(&ctx, ms, &name, group)?;
                Ok(json!({
                    "grants": grants.iter()
                        .map(|(g, p)| json!({"grantee": g, "privilege": p.as_str()}))
                        .collect::<Vec<_>>()
                }))
            }
            "credentials.temporary" => {
                let access = match str_param(params, "operation")? {
                    "READ" => uc_cloudstore::AccessLevel::Read,
                    "READ_WRITE" => uc_cloudstore::AccessLevel::ReadWrite,
                    other => return Err(bad_request(format!("bad operation {other}"))),
                };
                let token = if let Some(path) = params.get("path").and_then(|v| v.as_str()) {
                    self.uc.temp_credentials_for_path(&ctx, ms, path, access)?
                } else {
                    let name = name_param(params, "name")?;
                    let group = params
                        .get("kind_group")
                        .and_then(|v| v.as_str())
                        .unwrap_or("relation");
                    self.uc.temp_credentials(&ctx, ms, &name, group, access)?
                };
                Ok(json!({
                    "scope": token.scope.to_string(),
                    "access": match token.access {
                        uc_cloudstore::AccessLevel::Read => "READ",
                        uc_cloudstore::AccessLevel::ReadWrite => "READ_WRITE",
                    },
                    "expires_at_ms": token.expires_at_ms,
                    "nonce": token.nonce,
                    "signature": token.signature,
                }))
            }
            "tables.resolve" => {
                let names = params
                    .get("names")
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| bad_request("missing 'names' array"))?;
                let mut refs = Vec::with_capacity(names.len());
                for n in names {
                    let s = n.as_str().ok_or_else(|| bad_request("names must be strings"))?;
                    refs.push(FullName::parse(s)?);
                }
                let want_creds = params
                    .get("with_credentials")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false);
                let resolved = self.uc.resolve_for_query(&ctx, ms, &refs, want_creds)?;
                Ok(json!({
                    "securables": resolved.iter().map(|r| json!({
                        "entity": entity_json(&r.entity),
                        "has_row_filter": r.fgac.row_filter.is_some(),
                        "masked_columns": r.fgac.column_masks.iter().map(|m| m.column.clone()).collect::<Vec<_>>(),
                        "dependencies": r.dependencies.iter().map(|d| d.entity.name.clone()).collect::<Vec<_>>(),
                        "has_credential": r.read_credential.is_some(),
                    })).collect::<Vec<_>>()
                }))
            }
            "tables.resolveBatch" => {
                let names = params
                    .get("names")
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| bad_request("missing 'names' array"))?;
                let mut refs = Vec::with_capacity(names.len());
                for n in names {
                    let s = n.as_str().ok_or_else(|| bad_request("names must be strings"))?;
                    refs.push(FullName::parse(s)?);
                }
                let want_creds = params
                    .get("with_credentials")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false);
                let resolved = self.uc.resolve_batch(&ctx, ms, &refs, want_creds)?;
                Ok(json!({
                    "securables": resolved.iter().map(|r| json!({
                        "entity": entity_json(&r.entity),
                        "has_row_filter": r.fgac.row_filter.is_some(),
                        "masked_columns": r.fgac.column_masks.iter().map(|m| m.column.clone()).collect::<Vec<_>>(),
                        "dependencies": r.dependencies.iter().map(|d| d.entity.name.clone()).collect::<Vec<_>>(),
                        "has_credential": r.read_credential.is_some(),
                    })).collect::<Vec<_>>()
                }))
            }
            "events.list" => {
                let offset = params.get("offset").and_then(|v| v.as_u64()).unwrap_or(0);
                let (events, next) = self.uc.events_since(offset);
                Ok(json!({
                    "next_offset": next,
                    "events": events.iter().map(|e| json!({
                        "seq": e.seq,
                        "entity_id": e.entity_id.as_str(),
                        "kind": e.kind.as_str(),
                        "name": e.name,
                        "op": format!("{:?}", e.op),
                        "at_version": e.at_version,
                    })).collect::<Vec<_>>()
                }))
            }
            "metrics.snapshot" => Ok(json!({ "snapshot": self.uc.metrics_snapshot() })),
            "metrics.flightrecorder" => {
                // Serve the existing frozen dump if a trigger already
                // fired; otherwise freeze now so the operator always gets
                // the most recent window of events.
                let jsonl = match self.uc.obs().flight_jsonl() {
                    Some(j) => j,
                    None => self.uc.flight_freeze("rest.request"),
                };
                Ok(json!({
                    "jsonl": jsonl,
                    "chrome_trace": self.uc.obs().flight_chrome_trace(),
                }))
            }
            "metastore.summary" => {
                let e = self.uc.get_metastore(ms)?;
                Ok(json!({
                    "id": e.id.as_str(),
                    "name": e.name,
                    "region": e.properties.get("region"),
                    "admins": e.metastore_admins(),
                }))
            }
            "iceberg.loadTable" => {
                let name = name_param(params, "name")?;
                let meta = self.uc.load_table_as_iceberg(&ctx, ms, &name)?;
                serde_json::to_value(meta).map_err(|e| ApiError { status: 500, message: e.to_string() })
            }
            other => Err(ApiError { status: 404, message: format!("unknown method {other}") }),
        }
    }
}

/// Kind-group helper exposed for wire clients that address securables
/// generically.
pub fn kind_group_of(kind: &str) -> Option<&'static str> {
    let kind = match kind.to_ascii_uppercase().as_str() {
        "TABLE" => SecurableKind::Table,
        "VIEW" => SecurableKind::View,
        "VOLUME" => SecurableKind::Volume,
        "FUNCTION" => SecurableKind::Function,
        "MODEL" | "REGISTERED_MODEL" => SecurableKind::RegisteredModel,
        "CATALOG" => SecurableKind::Catalog,
        "SCHEMA" => SecurableKind::Schema,
        "SHARE" => SecurableKind::Share,
        _ => return None,
    };
    Some(kind.name_group())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn setup() -> (RestApi, Uid, RequestAuth) {
        let uc = UnityCatalog::in_memory();
        let ms = uc.create_metastore("admin", "prod", "us").unwrap();
        let store = uc.object_store().clone();
        let root = store.create_bucket("lake");
        let ctx = Context::user("admin");
        uc.create_storage_credential(&ctx, &ms, "cred", &root).unwrap();
        uc.set_metastore_root(&ctx, &ms, "s3://lake/root").unwrap();
        (RestApi::new(uc), ms, RequestAuth::user("admin"))
    }

    fn columns_json() -> Json {
        json!({"fields": [{"name": "x", "data_type": "Int", "nullable": true}]})
    }

    #[test]
    fn full_crud_flow_over_the_wire() {
        let (api, ms, admin) = setup();
        api.handle(&admin, &ms, "catalogs.create", &json!({"name": "main"})).unwrap();
        api.handle(&admin, &ms, "schemas.create", &json!({"catalog": "main", "name": "s"})).unwrap();
        let t = api
            .handle(&admin, &ms, "tables.create", &json!({
                "name": "main.s.t",
                "columns": columns_json(),
            }))
            .unwrap();
        assert_eq!(t["kind"], "TABLE");
        assert_eq!(t["table_type"], "MANAGED");
        let got = api.handle(&admin, &ms, "tables.get", &json!({"name": "main.s.t"})).unwrap();
        assert_eq!(got["id"], t["id"]);
        let listed = api.handle(&admin, &ms, "tables.list", &json!({"schema": "main.s"})).unwrap();
        assert_eq!(listed["tables"].as_array().unwrap().len(), 1);
        let dropped = api
            .handle(&admin, &ms, "securables.drop", &json!({"name": "main.s.t", "kind_group": "relation"}))
            .unwrap();
        assert_eq!(dropped["dropped"], 1);
    }

    #[test]
    fn errors_carry_http_style_statuses() {
        let (api, ms, admin) = setup();
        // 404 unknown method
        assert_eq!(api.handle(&admin, &ms, "nope", &json!({})).unwrap_err().status, 404);
        // 400 missing parameter
        assert_eq!(
            api.handle(&admin, &ms, "catalogs.create", &json!({})).unwrap_err().status,
            400
        );
        // 404 missing securable
        api.handle(&admin, &ms, "catalogs.create", &json!({"name": "main"})).unwrap();
        assert_eq!(
            api.handle(&admin, &ms, "tables.get", &json!({"name": "main.x.y"})).unwrap_err().status,
            404
        );
        // 409 duplicate
        assert_eq!(
            api.handle(&admin, &ms, "catalogs.create", &json!({"name": "main"})).unwrap_err().status,
            409
        );
        // 403 permission denied
        let nobody = RequestAuth::user("nobody");
        assert_eq!(
            api.handle(&nobody, &ms, "catalogs.create", &json!({"name": "other"})).unwrap_err().status,
            403
        );
    }

    #[test]
    fn grants_and_credentials_over_the_wire() {
        let (api, ms, admin) = setup();
        api.handle(&admin, &ms, "catalogs.create", &json!({"name": "main"})).unwrap();
        api.handle(&admin, &ms, "schemas.create", &json!({"catalog": "main", "name": "s"})).unwrap();
        api.handle(&admin, &ms, "tables.create", &json!({"name": "main.s.t", "columns": columns_json()}))
            .unwrap();
        for (securable, group, privilege) in [
            ("main", "catalog", "USE CATALOG"),
            ("main.s", "schema", "USE SCHEMA"),
            ("main.s.t", "relation", "SELECT"),
        ] {
            api.handle(&admin, &ms, "grants.add", &json!({
                "securable": securable, "kind_group": group,
                "grantee": "alice", "privilege": privilege,
            }))
            .unwrap();
        }
        let grants = api
            .handle(&admin, &ms, "grants.list", &json!({"securable": "main.s.t", "kind_group": "relation"}))
            .unwrap();
        assert_eq!(grants["grants"][0]["grantee"], "alice");

        // alice vends a read token over the wire
        let alice = RequestAuth::user("alice");
        let tok = api
            .handle(&alice, &ms, "credentials.temporary", &json!({"name": "main.s.t", "operation": "READ"}))
            .unwrap();
        assert!(tok["scope"].as_str().unwrap().starts_with("s3://lake/root/tables/"));
        // …but not a write token
        assert_eq!(
            api.handle(&alice, &ms, "credentials.temporary", &json!({"name": "main.s.t", "operation": "READ_WRITE"}))
                .unwrap_err()
                .status,
            403
        );
        // revoke closes access
        api.handle(&admin, &ms, "grants.revoke", &json!({
            "securable": "main.s.t", "kind_group": "relation",
            "grantee": "alice", "privilege": "SELECT",
        }))
        .unwrap();
        assert_eq!(
            api.handle(&alice, &ms, "credentials.temporary", &json!({"name": "main.s.t", "operation": "READ"}))
                .unwrap_err()
                .status,
            403
        );
    }

    #[test]
    fn batched_resolve_and_events_over_the_wire() {
        let (api, ms, admin) = setup();
        api.handle(&admin, &ms, "catalogs.create", &json!({"name": "main"})).unwrap();
        api.handle(&admin, &ms, "schemas.create", &json!({"catalog": "main", "name": "s"})).unwrap();
        api.handle(&admin, &ms, "tables.create", &json!({"name": "main.s.a", "columns": columns_json()}))
            .unwrap();
        api.handle(&admin, &ms, "tables.create", &json!({"name": "main.s.b", "columns": columns_json()}))
            .unwrap();
        let resolved = api
            .handle(&admin, &ms, "tables.resolve", &json!({
                "names": ["main.s.a", "main.s.b"],
                "with_credentials": true,
            }))
            .unwrap();
        let securables = resolved["securables"].as_array().unwrap();
        assert_eq!(securables.len(), 2);
        assert_eq!(securables[0]["has_credential"], true);

        let events = api.handle(&admin, &ms, "events.list", &json!({"offset": 0})).unwrap();
        assert!(events["events"].as_array().unwrap().len() >= 4);
        let next = events["next_offset"].as_u64().unwrap();
        let empty = api.handle(&admin, &ms, "events.list", &json!({"offset": next})).unwrap();
        assert!(empty["events"].as_array().unwrap().is_empty());
    }

    #[test]
    fn metrics_endpoint_reflects_api_traffic() {
        let (api, ms, admin) = setup();
        api.handle(&admin, &ms, "catalogs.create", &json!({"name": "main"})).unwrap();
        let text = api.metrics();
        assert!(text.starts_with("# uc-obs metrics snapshot"));
        assert!(text.contains("catalog.create_catalog.count"), "snapshot:\n{text}");
        let wire = api.handle(&admin, &ms, "metrics.snapshot", &json!({})).unwrap();
        assert!(wire["snapshot"].as_str().unwrap().contains("catalog.api.calls"));
    }

    #[test]
    fn kind_group_mapping() {
        assert_eq!(kind_group_of("TABLE"), Some("relation"));
        assert_eq!(kind_group_of("view"), Some("relation"));
        assert_eq!(kind_group_of("VOLUME"), Some("volume"));
        assert_eq!(kind_group_of("MODEL"), Some("model"));
        assert_eq!(kind_group_of("GIZMO"), None);
    }
}
