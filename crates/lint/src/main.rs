//! `cargo run -p uc-lint [-- --root <dir>] [--lock-graph] [--call-graph]`
//!
//! Lints every `crates/*/src/**/*.rs` under the workspace root, prints
//! sorted `file:line:rule:message` diagnostics, and exits non-zero when
//! any diagnostic fires. `--lock-graph` appends the inferred lock
//! acquisition-order graph artifact; `--call-graph` appends the
//! workspace call graph. Output is byte-stable: CI runs the tool twice
//! and diffs.
//!
//! Wall-time is reported on *stderr* (stdout must stay byte-stable for
//! the CI diff) with a soft budget: the whole-workspace run, including
//! the interprocedural passes, is expected to stay in single-digit
//! seconds, and a breach prints a warning rather than failing the run.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Soft wall-time budget for a whole-workspace run.
const SOFT_BUDGET_SECS: f64 = 9.0;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut with_lock_graph = false;
    let mut with_call_graph = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--lock-graph" => with_lock_graph = true,
            "--call-graph" => with_call_graph = true,
            "--help" | "-h" => {
                println!("usage: uc-lint [--root <dir>] [--lock-graph] [--call-graph]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("uc-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match uc_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("uc-lint: no workspace root (Lint.toml or crates/) found");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let started = Instant::now();
    match uc_lint::run(&root) {
        Ok(report) => {
            let elapsed = started.elapsed().as_secs_f64();
            print!("{}", report.render(with_lock_graph, with_call_graph));
            eprintln!(
                "uc-lint: wall {elapsed:.3}s ({} file(s), {} function(s), {} call edge(s))",
                report.files_scanned, report.fns_scanned, report.call_edges_count
            );
            if elapsed > SOFT_BUDGET_SECS {
                eprintln!(
                    "uc-lint: WARNING wall time {elapsed:.3}s exceeds the {SOFT_BUDGET_SECS}s soft budget"
                );
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("uc-lint: {e}");
            ExitCode::from(2)
        }
    }
}
