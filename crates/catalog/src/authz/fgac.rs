//! Fine-grained access control policies (§4.3.2).
//!
//! Row filters and column masks are *policies stored by the catalog,
//! enforced by trusted engines*. The catalog returns them as part of
//! metadata resolution only to engines authenticated as trusted; access to
//! tables carrying FGAC policies is denied outright to untrusted engines,
//! which must delegate to a data-filtering service instead.

use serde::{Deserialize, Serialize};

use uc_delta::expr::Expr;

use crate::error::{UcError, UcResult};

/// A row filter: rows are visible only where the expression evaluates to
/// TRUE for the calling principal. May reference `current_user()` and
/// `is_account_group_member(...)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowFilterPolicy {
    pub expr: Expr,
}

impl RowFilterPolicy {
    pub fn encode(&self) -> bytes::Bytes {
        bytes::Bytes::from(crate::jsonutil::to_vec(self))
    }

    pub fn decode(data: &[u8]) -> UcResult<Self> {
        serde_json::from_slice(data)
            .map_err(|e| UcError::Database(format!("corrupt row filter: {e}")))
    }
}

/// A column mask: the column's value is replaced by `mask` unless the
/// optional exemption expression evaluates to TRUE for the caller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnMaskPolicy {
    pub column: String,
    /// Replacement expression (commonly a literal like `'REDACTED'`).
    pub mask: Expr,
    /// If present and TRUE for the caller, the mask is not applied.
    pub exempt_when: Option<Expr>,
}

impl ColumnMaskPolicy {
    pub fn encode(&self) -> bytes::Bytes {
        bytes::Bytes::from(crate::jsonutil::to_vec(self))
    }

    pub fn decode(data: &[u8]) -> UcResult<Self> {
        serde_json::from_slice(data)
            .map_err(|e| UcError::Database(format!("corrupt column mask: {e}")))
    }
}

/// The FGAC bundle returned with table metadata to trusted engines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FgacPolicies {
    pub row_filter: Option<RowFilterPolicy>,
    pub column_masks: Vec<ColumnMaskPolicy>,
}

impl FgacPolicies {
    pub fn is_empty(&self) -> bool {
        self.row_filter.is_none() && self.column_masks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_delta::expr::CmpOp;
    use uc_delta::value::Value;

    #[test]
    fn policies_roundtrip_through_storage_encoding() {
        let rf = RowFilterPolicy {
            expr: Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(Expr::Column("owner".into())),
                rhs: Box::new(Expr::CurrentUser),
            },
        };
        assert_eq!(RowFilterPolicy::decode(&rf.encode()).unwrap(), rf);

        let mask = ColumnMaskPolicy {
            column: "ssn".into(),
            mask: Expr::Literal(Value::Str("***-**-****".into())),
            exempt_when: Some(Expr::IsAccountGroupMember("hr".into())),
        };
        assert_eq!(ColumnMaskPolicy::decode(&mask.encode()).unwrap(), mask);
    }

    #[test]
    fn empty_bundle_detection() {
        assert!(FgacPolicies::default().is_empty());
        let bundle = FgacPolicies {
            row_filter: None,
            column_masks: vec![ColumnMaskPolicy {
                column: "c".into(),
                mask: Expr::Literal(Value::Null),
                exempt_when: None,
            }],
        };
        assert!(!bundle.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(RowFilterPolicy::decode(b"zzz").is_err());
        assert!(ColumnMaskPolicy::decode(b"zzz").is_err());
    }
}
