//! Determinism fixtures: each marked line is a true positive.

use std::time::{Instant, SystemTime};

pub fn stamp() -> SystemTime {
    SystemTime::now() // line 6: ambient wall clock
}

pub fn tick() -> Instant {
    Instant::now() // line 10: ambient monotonic clock
}

pub fn roll() -> u64 {
    let mut rng = thread_rng(); // line 14: ambient RNG
    rng.next_u64()
}

pub fn config() -> Option<String> {
    std::env::var("DEMO_FLAG").ok() // line 19: environment read
}
