//! The privilege vocabulary.

use serde::{Deserialize, Serialize};
use std::fmt;

/// SQL-style privileges grantable on securables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Privilege {
    /// Traverse into a catalog.
    UseCatalog,
    /// Traverse into a schema.
    UseSchema,
    /// Read rows of a table or view.
    Select,
    /// Write a table / update asset data or metadata.
    Modify,
    /// Create a catalog (granted on the metastore).
    CreateCatalog,
    /// Create a schema (granted on a catalog).
    CreateSchema,
    /// Create tables/views (granted on a schema).
    CreateTable,
    /// Create volumes (granted on a schema).
    CreateVolume,
    /// Create registered models (granted on a schema).
    CreateModel,
    /// Create functions (granted on a schema).
    CreateFunction,
    /// Create external locations (granted on the metastore).
    CreateExternalLocation,
    /// Create connections (granted on the metastore).
    CreateConnection,
    /// Create shares (granted on the metastore).
    CreateShare,
    /// Read files in a volume.
    ReadVolume,
    /// Write files in a volume.
    WriteVolume,
    /// Execute a function / load a model.
    Execute,
    /// Administrative authority equal to ownership.
    Manage,
    /// All privileges (the `ALL PRIVILEGES` pseudo-grant).
    All,
}

impl Privilege {
    pub fn as_str(self) -> &'static str {
        match self {
            Privilege::UseCatalog => "USE_CATALOG",
            Privilege::UseSchema => "USE_SCHEMA",
            Privilege::Select => "SELECT",
            Privilege::Modify => "MODIFY",
            Privilege::CreateCatalog => "CREATE_CATALOG",
            Privilege::CreateSchema => "CREATE_SCHEMA",
            Privilege::CreateTable => "CREATE_TABLE",
            Privilege::CreateVolume => "CREATE_VOLUME",
            Privilege::CreateModel => "CREATE_MODEL",
            Privilege::CreateFunction => "CREATE_FUNCTION",
            Privilege::CreateExternalLocation => "CREATE_EXTERNAL_LOCATION",
            Privilege::CreateConnection => "CREATE_CONNECTION",
            Privilege::CreateShare => "CREATE_SHARE",
            Privilege::ReadVolume => "READ_VOLUME",
            Privilege::WriteVolume => "WRITE_VOLUME",
            Privilege::Execute => "EXECUTE",
            Privilege::Manage => "MANAGE",
            Privilege::All => "ALL_PRIVILEGES",
        }
    }

    pub fn parse(s: &str) -> Option<Privilege> {
        let normalized = s.trim().to_ascii_uppercase().replace(' ', "_");
        Some(match normalized.as_str() {
            "USE_CATALOG" => Privilege::UseCatalog,
            "USE_SCHEMA" => Privilege::UseSchema,
            "SELECT" => Privilege::Select,
            "MODIFY" => Privilege::Modify,
            "CREATE_CATALOG" => Privilege::CreateCatalog,
            "CREATE_SCHEMA" => Privilege::CreateSchema,
            "CREATE_TABLE" => Privilege::CreateTable,
            "CREATE_VOLUME" => Privilege::CreateVolume,
            "CREATE_MODEL" => Privilege::CreateModel,
            "CREATE_FUNCTION" => Privilege::CreateFunction,
            "CREATE_EXTERNAL_LOCATION" => Privilege::CreateExternalLocation,
            "CREATE_CONNECTION" => Privilege::CreateConnection,
            "CREATE_SHARE" => Privilege::CreateShare,
            "READ_VOLUME" => Privilege::ReadVolume,
            "WRITE_VOLUME" => Privilege::WriteVolume,
            "EXECUTE" => Privilege::Execute,
            "MANAGE" => Privilege::Manage,
            "ALL_PRIVILEGES" | "ALL" => Privilege::All,
            _ => return None,
        })
    }

    /// All concrete privileges (excludes the `All` pseudo-privilege).
    pub fn all_concrete() -> &'static [Privilege] {
        &[
            Privilege::UseCatalog,
            Privilege::UseSchema,
            Privilege::Select,
            Privilege::Modify,
            Privilege::CreateCatalog,
            Privilege::CreateSchema,
            Privilege::CreateTable,
            Privilege::CreateVolume,
            Privilege::CreateModel,
            Privilege::CreateFunction,
            Privilege::CreateExternalLocation,
            Privilege::CreateConnection,
            Privilege::CreateShare,
            Privilege::ReadVolume,
            Privilege::WriteVolume,
            Privilege::Execute,
            Privilege::Manage,
        ]
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_privilege() {
        for p in Privilege::all_concrete() {
            assert_eq!(Privilege::parse(p.as_str()), Some(*p));
        }
        assert_eq!(Privilege::parse("ALL_PRIVILEGES"), Some(Privilege::All));
    }

    #[test]
    fn parse_accepts_sql_spellings() {
        assert_eq!(Privilege::parse("use catalog"), Some(Privilege::UseCatalog));
        assert_eq!(Privilege::parse("USE SCHEMA"), Some(Privilege::UseSchema));
        assert_eq!(Privilege::parse("all"), Some(Privilege::All));
        assert_eq!(Privilege::parse("select"), Some(Privilege::Select));
        assert_eq!(Privilege::parse("FLY"), None);
    }
}
