//! The generic entity–relationship data model (§4.2.2).
//!
//! Every securable is an [`entity::Entity`] persisted in the backing
//! database together with index rows maintained in the same transaction:
//! a name index (namespace uniqueness + child listing), and a path index
//! (the one-asset-per-path invariant). [`manifest`] is the declarative
//! asset-type registry: per-kind privileges, hierarchy position, storage
//! behaviour, and validation hooks — the extension point through which
//! registered models were added (§4.2.3).

pub mod entity;
pub mod keys;
pub mod manifest;
pub mod paths;
