//! Multithreaded read-scaling suite for the audit/telemetry hot path.
//!
//! The tentpole claim (DESIGN.md §6–§7): a cached `getTable` takes **zero
//! shared exclusive locks** end to end — api_enter counters, the cache
//! hit, and the audit append are all per-thread or striped. These tests
//! check the two observable consequences:
//!
//! * **Scaling** — under a latency-bound configuration (a nonzero
//!   engine→catalog hop) threads overlap their waits, so 16 client
//!   threads must clear a conservative multiple of 1-thread throughput
//!   even on a single-core host. A shared exclusive lock anywhere on the
//!   hit path caps the ratio near 1 and fails the gate.
//! * **No torn audits** — per-thread audit lanes must lose nothing,
//!   duplicate nothing, and preserve the canonical order contract when
//!   appends race the merge.
//!
//! Sized for CI (sub-second sweeps); `cache_read_scaling` in `uc-bench`
//! is the full-sweep companion that records `BENCH_cache.json`.

use std::sync::Arc;
use std::time::Duration;

use uc_bench::{closed_loop_indexed, World, WorldConfig};
use uc_catalog::service::crud::TableSpec;
use uc_delta::value::{DataType, Field, Schema};
use uc_obs::Obs;

const TABLES: usize = 16;

fn int_schema() -> Schema {
    Schema::new(vec![Field::new("x", DataType::Int)])
}

/// A cached world with `TABLES` tables and an optional api hop, warmed so
/// every sweep below measures steady-state hits.
fn warmed_world(hop: Duration, obs: Obs) -> (World, Vec<String>) {
    let world = World::build(&WorldConfig {
        api_latency: hop,
        obs,
        ..Default::default()
    });
    let ctx = world.admin();
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    world.uc.create_schema(&ctx, &world.ms, "main", "s").unwrap();
    for i in 0..TABLES {
        world
            .uc
            .create_table(
                &ctx,
                &world.ms,
                TableSpec::managed(&format!("main.s.t{i}"), int_schema()).unwrap(),
            )
            .unwrap();
    }
    let names: Vec<String> = (0..TABLES).map(|i| format!("main.s.t{i}")).collect();
    for name in &names {
        world.uc.get_table(&ctx, &world.ms, name).unwrap();
    }
    (world, names)
}

/// Latency-bound scaling gate: with a 1 ms hop, 16 threads overlap their
/// hops, so cached throughput must reach at least 4× the 1-thread rate
/// (perfect would be 16×; 4× is conservative enough for a loaded CI host
/// while still far above the ~1× a serialized hit path produces).
#[test]
fn sixteen_threads_beat_one_thread_under_latency_bound() {
    let (world, names) = warmed_world(Duration::from_millis(1), Obs::disabled());
    let ctx = world.admin();
    let sweep = |threads: usize| {
        closed_loop_indexed(threads, Duration::from_millis(150), |worker, iter| {
            let i = (worker * 31 + iter as usize * 7) % TABLES;
            world.uc.get_table(&ctx, &world.ms, &names[i]).unwrap();
        })
    };
    let one = sweep(1);
    let sixteen = sweep(16);
    let ratio = sixteen.throughput_rps / one.throughput_rps.max(1e-9);
    assert!(
        ratio >= 4.0,
        "16-thread cached getTable must scale ≥ 4× 1-thread under a 1 ms hop \
         (got {ratio:.1}×: {:.0} vs {:.0} rps) — a shared exclusive lock on \
         the hit path would cap this near 1×",
        sixteen.throughput_rps,
        one.throughput_rps,
    );
}

/// Torn-audit detector: every thread wraps each read in a pinned span with
/// a thread-unique trace ID, so each audit record is attributable to the
/// exact (thread, op) that produced it. After the concurrent phase the
/// merged log must contain **exactly one** record per (thread, op) — no
/// lost appends, no duplicates — and seq order must follow canonical
/// (timestamp, trace) order.
#[test]
fn concurrent_audit_appends_lose_and_duplicate_nothing() {
    // Pin trace IDs above 2^32 so they cannot collide with the tracer's
    // sequential allocator (see Tracer::span_pinned).
    const BASE: u64 = 1 << 40;
    const THREADS: usize = 16;
    const OPS: u64 = 25;
    let obs = Obs::with_clock_fn(Arc::new(|| 0));
    let (world, names) = warmed_world(Duration::ZERO, obs.clone());

    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let uc = world.uc.clone();
            let ms = world.ms.clone();
            let ctx = world.admin();
            let obs = obs.clone();
            let names = &names;
            scope.spawn(move || {
                for k in 0..OPS {
                    let _span = obs.span_pinned("bench", "get_table", BASE + t * OPS + k);
                    let name = &names[(t as usize + k as usize) % TABLES];
                    uc.get_table(&ctx, &ms, name).unwrap();
                }
            });
        }
    });

    // The reads audit `getSecurable`; collect the pinned ones. `query`
    // flushes every lane first, so this is the merged canonical view.
    let records = world
        .uc
        .audit_log()
        .query(|r| r.action == "getSecurable" && r.trace_id.is_some_and(|t| t >= BASE));
    let mut counts = vec![0usize; THREADS * OPS as usize];
    for r in &records {
        let idx = (r.trace_id.unwrap() - BASE) as usize;
        assert!(idx < counts.len(), "unexpected pinned trace {}", r.trace_id.unwrap());
        counts[idx] += 1;
        assert_eq!(r.principal, uc_bench::ADMIN);
        assert_eq!(r.decision, uc_catalog::audit::AuditDecision::Allow);
    }
    for (idx, n) in counts.iter().enumerate() {
        assert_eq!(
            *n,
            1,
            "audit record for thread {} op {} appears {n} times (want exactly 1)",
            idx / OPS as usize,
            idx % OPS as usize,
        );
    }
    // The merged log's assigned seqs must be dense and in canonical
    // (timestamp-major, trace-minor) order.
    let all = world.uc.audit_log().recent(usize::MAX);
    for (i, r) in all.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "seq numbers must be dense after the merge");
    }
    for pair in all.windows(2) {
        let key = |r: &uc_catalog::audit::AuditRecord| {
            (r.timestamp_ms, r.trace_id.unwrap_or(u64::MAX))
        };
        assert!(
            key(&pair[0]) <= key(&pair[1]),
            "canonical order violated between seq {} and {}",
            pair[0].seq,
            pair[1].seq
        );
    }
}

/// Lane fan-out smoke: concurrent appenders land in *different* lanes
/// (per-thread slots), so the pre-flush pending buffers must show spread —
/// a single non-empty lane would mean the sharding is vestigial.
#[test]
fn concurrent_appends_spread_across_lanes() {
    let (world, names) = warmed_world(Duration::ZERO, Obs::disabled());
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let uc = world.uc.clone();
            let ms = world.ms.clone();
            let ctx = world.admin();
            let names = &names;
            scope.spawn(move || {
                for k in 0..5usize {
                    uc.get_table(&ctx, &ms, &names[(t + k) % TABLES]).unwrap();
                }
            });
        }
    });
    // No flush-triggering accessor has run since the spawned threads
    // appended; occupancy reads the raw lanes.
    let occupancy = world.uc.audit_log().pending_lane_occupancy();
    let busy = occupancy.iter().filter(|&&n| n > 0).count();
    assert!(
        busy >= 2,
        "8 appender threads must spread across ≥ 2 audit lanes, got {busy} \
         (occupancy: {occupancy:?})"
    );
    // And the flush must still account for every pending record.
    let pending: usize = occupancy.iter().sum();
    let total = world.uc.audit_log().total_recorded();
    assert!(total >= pending as u64, "flushed total covers the pending records");
}
