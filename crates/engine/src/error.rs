//! Engine errors.

use std::fmt;

use uc_catalog::UcError;
use uc_delta::DeltaError;

pub type EngineResult<T> = Result<T, EngineError>;

/// Errors surfaced while parsing or executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// SQL text could not be parsed.
    Parse(String),
    /// The catalog rejected the operation.
    Catalog(UcError),
    /// The table format layer failed.
    Table(DeltaError),
    /// The statement is valid SQL but unsupported by this engine.
    Unsupported(String),
    /// Transaction misuse (nested BEGIN, COMMIT without BEGIN, …).
    Transaction(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(m) => write!(f, "parse error: {m}"),
            EngineError::Catalog(e) => write!(f, "catalog error: {e}"),
            EngineError::Table(e) => write!(f, "table error: {e}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Transaction(m) => write!(f, "transaction error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<UcError> for EngineError {
    fn from(e: UcError) -> Self {
        EngineError::Catalog(e)
    }
}

impl From<DeltaError> for EngineError {
    fn from(e: DeltaError) -> Self {
        EngineError::Table(e)
    }
}
