//! Openness end-to-end: mount a legacy Hive Metastore as a federated
//! catalog, query it through UC, then share a Delta table over the
//! Delta-Sharing-style protocol and read the same data as Iceberg via
//! UniForm — no copies anywhere.
//!
//! Run with: `cargo run -p uc-bench --example federation_sharing`

use uc_bench::{World, WorldConfig, ADMIN};
use uc_catalog::authz::Privilege;
use uc_catalog::types::FullName;
use uc_cloudstore::{Credential, StoragePath};
use uc_delta::value::{DataType, Field, Schema};
use uc_engine::{Engine, EngineConfig};
use uc_hms::{HiveMetastore, HmsConnector, HmsDatabase, HmsTable};

fn main() {
    let world = World::build(&WorldConfig::default());
    let uc = &world.uc;
    let ms = &world.ms;
    let ctx = world.admin();

    // =====================================================================
    // Part 1 — Federation: a legacy HMS holds tables another team manages.
    // =====================================================================
    let hms = HiveMetastore::in_memory();
    hms.create_database(&HmsDatabase {
        name: "warehouse".into(),
        description: Some("legacy Hive warehouse".into()),
        location: None,
    })
    .unwrap();
    for t in ["clicks", "impressions", "conversions"] {
        hms.create_table(&HmsTable {
            db: "warehouse".into(),
            name: t.into(),
            columns: Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("ts", DataType::Str),
            ]),
            location: Some(format!("s3://legacy/warehouse/{t}")),
            table_type: "EXTERNAL_TABLE".into(),
            format: "PARQUET".into(),
        })
        .unwrap();
    }
    println!("legacy HMS: database 'warehouse' with {} tables", hms.list_tables("warehouse").len());

    // Mount it: connection + federated catalog; the engine mirrors on demand.
    uc.create_connection(&ctx, ms, "legacy_hms", "thrift://legacy:9083").unwrap();
    uc.create_federated_catalog(&ctx, ms, "legacy", "legacy_hms").unwrap();
    let connector = HmsConnector { hms };
    for t in ["clicks", "impressions"] {
        let mirrored = uc
            .federated_get_table(&ctx, ms, "legacy", "warehouse", t, &connector)
            .unwrap();
        println!(
            "mirrored legacy.warehouse.{t} (type {:?}, foreign_type {:?})",
            mirrored.table_type().unwrap(),
            mirrored.properties.get("foreign_type").unwrap()
        );
    }
    // Simple clients (a UI) now browse the mirror through plain UC calls.
    let kids = uc
        .list_children(&ctx, ms, &FullName::parse("legacy.warehouse").unwrap(), None)
        .unwrap();
    println!("UI view of legacy.warehouse: {:?}", kids.iter().map(|e| e.name.as_str()).collect::<Vec<_>>());
    assert_eq!(kids.len(), 2, "only on-demand-mirrored tables are visible");

    // =====================================================================
    // Part 2 — Sharing: expose a Delta table to an external recipient.
    // =====================================================================
    let engine = Engine::new(uc.clone(), ms.clone(), EngineConfig::trusted("dbr"));
    let mut admin = engine.session(ADMIN);
    for sql in [
        "CREATE CATALOG analytics",
        "CREATE SCHEMA analytics.gold",
        "CREATE TABLE analytics.gold.daily_revenue (day STRING, revenue DOUBLE)",
        "INSERT INTO analytics.gold.daily_revenue VALUES ('2026-07-01', 1200.0), ('2026-07-02', 1350.5)",
    ] {
        admin.execute(sql).expect(sql);
    }

    uc.create_share(&ctx, ms, "partner_share").unwrap();
    uc.add_table_to_share(&ctx, ms, "partner_share", &FullName::parse("analytics.gold.daily_revenue").unwrap())
        .unwrap();
    uc.grant(&ctx, ms, &FullName::parse("partner_share").unwrap(), "share", "partner_corp", Privilege::Select)
        .unwrap();
    println!("\ncreated share 'partner_share' for recipient partner_corp");

    // The recipient never gets table grants — only the share.
    let partner = uc_catalog::service::Context::user("partner_corp");
    let tables = uc.list_share_tables(&partner, ms, "partner_share").unwrap();
    println!("partner sees shared tables: {:?}", tables.iter().map(|t| t.alias.as_str()).collect::<Vec<_>>());

    // Delta-Sharing-style read: file list + scoped token.
    let resp = uc.query_share_table(&partner, ms, "partner_share", "gold.daily_revenue").unwrap();
    println!(
        "shared table v{}: {} file(s), schema {:?}",
        resp.version,
        resp.files.len(),
        resp.schema.fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>()
    );
    let file = StoragePath::parse(&resp.files[0].url).unwrap();
    let bytes = world.store.get(&Credential::Temp(resp.credential.clone()), &file).unwrap();
    println!("partner fetched {} bytes of shared data with the vended token", bytes.len());
    // …and the token cannot reach outside the shared table
    assert!(world
        .store
        .list(&Credential::Temp(resp.credential), &StoragePath::parse("s3://lake/managed").unwrap())
        .is_err());

    // UniForm: the same snapshot as Iceberg metadata.
    let iceberg = uc
        .query_share_table_as_iceberg(&partner, ms, "partner_share", "gold.daily_revenue")
        .unwrap();
    println!(
        "as Iceberg: format_version={}, snapshot={}, {} manifest entr(ies), schema fields {:?}",
        iceberg.format_version,
        iceberg.current_snapshot_id,
        iceberg.snapshots[0].manifest.entries.len(),
        iceberg.schemas[0].fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>()
    );
    assert_eq!(iceberg.snapshots[0].manifest.entries[0].file_path, resp.files[0].url);
    println!("Iceberg manifest references the very same data files — zero copies");

    println!("\nfederation_sharing OK");
}
