//! Ablation: cache reconciliation strategies (§4.5).
//!
//! When a node detects that another node advanced the metastore version,
//! it must reconcile its cache. The naive strategy evicts everything; the
//! optimized one consumes the database change log and invalidates only
//! the touched entries. This bench measures what each strategy costs in
//! subsequent database reads after a small foreign write burst.

use std::sync::Arc;

use uc_bench::{print_table, World, WorldConfig, ADMIN};
use uc_catalog::cache::CacheConfig;
use uc_catalog::service::crud::TableSpec;
use uc_catalog::service::{Context, UcConfig, UnityCatalog};
use uc_catalog::types::FullName;
use uc_delta::value::{DataType, Field, Schema};

const TABLES: usize = 2_000;
const FOREIGN_WRITES: usize = 20;
const PROBE_READS: usize = 500;

fn main() {
    let world = World::build(&WorldConfig::default());
    let ctx = Context::user(ADMIN);
    world.uc.create_catalog(&ctx, &world.ms, "main").unwrap();
    world.uc.create_schema(&ctx, &world.ms, "main", "s").unwrap();
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    println!("creating {TABLES} tables…");
    for i in 0..TABLES {
        world
            .uc
            .create_table(&ctx, &world.ms, TableSpec::managed(&format!("main.s.t{i}"), schema.clone()).unwrap())
            .unwrap();
    }

    let run = |selective: bool| -> (u64, u64) {
        // a fresh node with the strategy under test, warmed over all tables
        let node: Arc<UnityCatalog> = UnityCatalog::new(
            world.db.clone(),
            world.store.clone(),
            UcConfig {
                cache: CacheConfig { selective_reconcile: selective, ..Default::default() },
                ..Default::default()
            },
            if selective { "node-selective" } else { "node-full" },
        );
        for i in 0..TABLES {
            node.get_table(&ctx, &world.ms, &format!("main.s.t{i}")).unwrap();
        }
        // another node (the writer) touches a few entities
        for i in 0..FOREIGN_WRITES {
            world
                .uc
                .update_comment(&ctx, &world.ms, &FullName::parse(&format!("main.s.t{i}")).unwrap(), "relation", "touched")
                .unwrap();
        }
        // reconcile, then probe reads: count DB reads the node must issue
        node.reconcile_metastore(&world.ms);
        let reads_before = node.db().stats().reads();
        for i in 0..PROBE_READS {
            node.get_table(&ctx, &world.ms, &format!("main.s.t{}", i % TABLES)).unwrap();
        }
        let db_reads = node.db().stats().reads() - reads_before;
        let invalidations = node
            .cache_stats()
            .invalidations
            .load(std::sync::atomic::Ordering::Relaxed);
        (db_reads, invalidations)
    };

    let (full_reads, _) = run(false);
    let (selective_reads, invalidated) = run(true);
    print_table(
        &format!(
            "Ablation — reconcile after {FOREIGN_WRITES} foreign writes over {TABLES} cached entities"
        ),
        &["strategy", "DB reads for next 500 lookups", "entries invalidated"],
        &[
            vec!["full evict".into(), full_reads.to_string(), TABLES.to_string()],
            vec!["selective (change log)".into(), selective_reads.to_string(), invalidated.to_string()],
        ],
    );
    assert!(selective_reads * 5 < full_reads, "selective must avoid most re-reads");
    println!(
        "\nconclusion: change-log-driven invalidation preserves {:.1} % of the cache\n\
         a full evict throws away ({:.0}× fewer DB reads after reconciliation)",
        100.0 * (1.0 - FOREIGN_WRITES as f64 / TABLES as f64),
        full_reads as f64 / selective_reads.max(1) as f64
    );
}
