//! Metrics: counters, gauges, and log-bucketed latency histograms behind a
//! name-keyed registry.
//!
//! Naming scheme: `layer.operation.metric`, e.g. `txdb.commit.count` or
//! `catalog.tables.create.latency_ms`. An optional scope label (tenant,
//! metastore, access level) is rendered as `name{scope}`. The registry
//! stores instruments in a [`BTreeMap`], so every snapshot lists them in
//! one canonical order — snapshots of deterministic workloads diff cleanly
//! in CI.
//!
//! Hot-path cost: an instrument handle is an `Arc` around *striped*
//! atomics — each recording thread writes its own cache-line-padded cell,
//! selected by [`thread_slot`], so concurrent recorders never contend on
//! one line. Reads fold the stripes: a counter's value is the sum of its
//! stripes and a histogram's buckets are summed cell-wise, so every folded
//! quantity is independent of which thread recorded what. That makes
//! snapshots of deterministic workloads byte-identical regardless of
//! thread count — the determinism discipline (DESIGN.md §6) survives the
//! sharding. Looking an instrument up by name takes the registry mutex
//! and is meant for setup code and exporters.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Process-wide thread-slot allocator: the first time a thread asks for
/// its slot it takes the next integer, forever. Stripe selection is
/// `slot % STRIPES`, so up to `STRIPES` concurrent threads get private
/// cache lines and slot reuse beyond that only costs sharing, never
/// correctness.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// Small dense integer identifying the calling thread, assigned on first
/// use in arrival order. Used to pick a counter/histogram stripe and an
/// audit lane; never rendered into any snapshot (absolute slot values are
/// schedule-dependent, folded quantities are not).
pub fn thread_slot() -> usize {
    SLOT.with(|s| *s)
}

/// Number of stripes in a [`Counter`]. Chosen to cover typical bench
/// thread counts without contention while keeping the fold cheap.
pub const COUNTER_STRIPES: usize = 16;

/// Number of stripes in a [`Histogram`] — heavier per stripe (65 buckets),
/// so fewer of them.
pub const HISTOGRAM_STRIPES: usize = 8;

/// One cache line per stripe: adjacent stripes must not false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64 {
    cell: AtomicU64,
}

/// Monotonic counter, striped across [`COUNTER_STRIPES`] cache-padded
/// cells. Writers touch only their own stripe; `get` folds the stripes by
/// summation, which is order- and placement-independent.
///
/// The `fetch_add`/`load` methods mirror [`AtomicU64`]'s signatures so a
/// struct field can migrate from `AtomicU64` to `Counter` without touching
/// call sites (the memory-ordering argument is accepted and ignored; all
/// counter traffic is relaxed). `fetch_add` returns the prior value of the
/// *caller's stripe* — the global prior is unknowable without a fold, and
/// no caller in this workspace uses the return value across threads.
#[derive(Debug, Clone)]
pub struct Counter {
    stripes: Arc<[PaddedU64; COUNTER_STRIPES]>,
}

impl Default for Counter {
    fn default() -> Self {
        Counter { stripes: Arc::new(std::array::from_fn(|_| PaddedU64::default())) }
    }
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    #[inline]
    fn my_stripe(&self) -> &AtomicU64 {
        &self.stripes[thread_slot() % COUNTER_STRIPES].cell
    }

    pub fn inc(&self) {
        self.my_stripe().fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.my_stripe().fetch_add(n, Ordering::Relaxed);
    }

    /// Folded value: the sum over all stripes.
    pub fn get(&self) -> u64 {
        self.stripes.iter().map(|s| s.cell.load(Ordering::Relaxed)).fold(0, u64::wrapping_add)
    }

    /// Drop-in for `AtomicU64::fetch_add` (returns the caller-stripe prior).
    pub fn fetch_add(&self, n: u64, _order: Ordering) -> u64 {
        self.my_stripe().fetch_add(n, Ordering::Relaxed)
    }

    /// Drop-in for `AtomicU64::load` (folded value).
    pub fn load(&self, _order: Ordering) -> u64 {
        self.get()
    }
}

/// Instantaneous signed value (queue depths, cache sizes). Gauges are
/// last-writer-wins, so striping would change semantics; they stay a
/// single cell and off the hot path.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// One histogram stripe, cache-line-aligned at its head. The bucket array
/// spans many lines regardless; alignment keeps the hot `count`/`sum`/`max`
/// words of adjacent stripes apart.
#[derive(Debug)]
#[repr(align(64))]
struct HistogramStripe {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramStripe {
    fn default() -> Self {
        HistogramStripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Log₂-bucketed histogram of non-negative integer samples (typically
/// milliseconds of virtual time or nanoseconds of wall time), striped
/// across [`HISTOGRAM_STRIPES`] cells like [`Counter`].
///
/// Bucket 0 holds exactly the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i - 1]`. Percentiles are reported as the upper bound of
/// the bucket containing the requested rank, clamped to the exact
/// observed maximum — a deterministic function of the recorded samples,
/// independent of recording order *and* of which stripe each sample
/// landed in (folds are sums and maxes).
#[derive(Debug, Clone)]
pub struct Histogram {
    stripes: Arc<[HistogramStripe; HISTOGRAM_STRIPES]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram { stripes: Arc::new(std::array::from_fn(|_| HistogramStripe::default())) }
    }

    /// Bucket index a value lands in.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of a bucket.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            64.. => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    pub fn record(&self, value: u64) {
        let stripe = &self.stripes[thread_slot() % HISTOGRAM_STRIPES];
        stripe.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        stripe.count.fetch_add(1, Ordering::Relaxed);
        stripe.sum.fetch_add(value, Ordering::Relaxed);
        stripe.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.stripes.iter().map(|s| s.count.load(Ordering::Relaxed)).sum()
    }

    pub fn sum(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.sum.load(Ordering::Relaxed))
            .fold(0, u64::wrapping_add)
    }

    /// Exact maximum recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.stripes.iter().map(|s| s.max.load(Ordering::Relaxed)).max().unwrap_or(0)
    }

    /// Folded occupancy of one bucket across all stripes.
    fn bucket(&self, i: usize) -> u64 {
        self.stripes.iter().map(|s| s.buckets[i].load(Ordering::Relaxed)).sum()
    }

    /// Quantile estimate: upper bound of the bucket holding the sample of
    /// rank `⌈q·count⌉`, clamped to the exact max. `q` outside `[0, 1]` is
    /// clamped.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            cumulative += self.bucket(i);
            if cumulative >= rank {
                return Self::bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// `(p50, p95, p99, max)` in one call — the summary every exporter
    /// and bench table wants.
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (self.percentile(0.50), self.percentile(0.95), self.percentile(0.99), self.max())
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
pub enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Name-keyed instrument registry with deterministic snapshot order.
///
/// Cloning shares the registry, the same way [`crate::Obs`] handles are
/// shared across layers. `counter`/`gauge`/`histogram` get-or-create: the
/// first caller registers, later callers receive the same handle, so
/// several subsystems can contribute to one metric.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    instruments: Arc<Mutex<BTreeMap<String, Instrument>>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create a counter. If the name is already registered as a
    /// different kind, a detached counter is returned (recordings are kept
    /// but invisible to snapshots) — observability must never panic the
    /// request path over a naming collision.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.instruments.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Counter::new()))
        {
            Instrument::Counter(c) => c.clone(),
            _ => Counter::new(),
        }
    }

    /// Get-or-create a counter with a scope label, keyed as `name{scope}`.
    pub fn counter_scoped(&self, name: &str, scope: &str) -> Counter {
        self.counter(&format!("{name}{{{scope}}}"))
    }

    /// Get-or-create a gauge (detached on kind collision, like `counter`).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.instruments.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Gauge::new()))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// Get-or-create a histogram (detached on kind collision).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.instruments.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Histogram::new()))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => Histogram::new(),
        }
    }

    /// Look up an existing instrument without creating one.
    pub fn get(&self, name: &str) -> Option<Instrument> {
        self.instruments.lock().get(name).cloned()
    }

    /// Registered names, in snapshot order.
    pub fn names(&self) -> Vec<String> {
        self.instruments.lock().keys().cloned().collect()
    }

    /// Human-readable snapshot with one line per instrument, sorted by
    /// name. Byte-identical across runs whenever the recorded values are
    /// deterministic (virtual-clock workloads) — stripe folds erase which
    /// thread recorded what, so thread count doesn't perturb the bytes.
    pub fn text_snapshot(&self) -> String {
        let map = self.instruments.lock();
        let mut out = String::from("# uc-obs metrics snapshot\n");
        for (name, instrument) in map.iter() {
            match instrument {
                Instrument::Counter(c) => {
                    out.push_str(&format!("{name} counter {}\n", c.get()));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!("{name} gauge {}\n", g.get()));
                }
                Instrument::Histogram(h) => {
                    let (p50, p95, p99, max) = h.summary();
                    out.push_str(&format!(
                        "{name} histogram count={} sum={} p50={p50} p95={p95} p99={p99} max={max}\n",
                        h.count(),
                        h.sum(),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("a.b.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("a.b.count").get(), 5, "get-or-create shares the cell");
        let g = r.gauge("a.b.depth");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn counter_mirrors_atomic_u64_api() {
        let c = Counter::new();
        assert_eq!(c.fetch_add(3, Ordering::Relaxed), 0);
        assert_eq!(c.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn thread_slots_are_stable_per_thread() {
        let a = thread_slot();
        assert_eq!(a, thread_slot(), "a thread keeps its slot");
        let b = std::thread::spawn(thread_slot).join().unwrap();
        assert_ne!(a, b, "distinct threads get distinct slots");
    }

    #[test]
    fn striped_counter_folds_across_threads() {
        let c = Counter::new();
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..24 {
                // More threads than stripes: folds must survive slot reuse.
                s.spawn(|| {
                    for v in 1..=50u64 {
                        c.add(2);
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(c.get(), 24 * 50 * 2);
        assert_eq!(h.count(), 24 * 50);
        assert_eq!(h.sum(), 24 * (50 * 51 / 2));
        assert_eq!(h.max(), 50);
    }

    #[test]
    fn histogram_bucket_boundaries_are_stable() {
        // The boundary table is a contract: snapshots diff across commits,
        // so bucket edges must never drift.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Histogram::bucket_upper_bound(10), 1023);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 4, 5, 127, 128, 1 << 40, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper_bound(i));
            if i > 0 {
                assert!(v > Histogram::bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn histogram_percentile_math_is_stable() {
        let h = Histogram::new();
        // 100 samples: 1..=100. Bucketed: p50 rank 50 → value 50 →
        // bucket 6 (33..=63), reported as min(63, max=100) = 63.
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert_eq!(h.percentile(0.50), 63);
        assert_eq!(h.percentile(0.95), 100, "bucket upper 127 clamps to exact max");
        assert_eq!(h.percentile(0.99), 100);
        assert_eq!(h.percentile(0.0), 1, "rank clamps to the first sample");
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(h.summary(), (63, 100, 100, 100));
    }

    #[test]
    fn histogram_percentiles_are_order_independent() {
        let forward = Histogram::new();
        let backward = Histogram::new();
        for v in 0..1000u64 {
            forward.record(v * 7 % 1000);
            backward.record((999 - v) * 7 % 1000);
        }
        assert_eq!(forward.summary(), backward.summary());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.summary(), (0, 0, 0, 0));
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let build = || {
            let r = Registry::new();
            r.counter("zeta.op.count").add(3);
            r.histogram("alpha.op.latency_ms").record(5);
            r.gauge("mid.op.depth").set(-2);
            r.counter_scoped("alpha.op.count", "tenant=a").inc();
            r.text_snapshot()
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1, s2, "same recordings → byte-identical snapshot");
        let lines: Vec<&str> = s1.lines().skip(1).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "snapshot lines are in canonical order");
        assert!(s1.contains("alpha.op.count{tenant=a} counter 1"));
        assert!(s1.contains("alpha.op.latency_ms histogram count=1 sum=5 p50=5 p95=5 p99=5 max=5"));
    }

    #[test]
    fn snapshot_is_thread_placement_independent() {
        // The same multiset of recordings, delivered single-threaded vs
        // spread over many threads, must render identical bytes: folds
        // erase stripe placement.
        let single = Registry::new();
        let spread = Registry::new();
        for v in 0..64u64 {
            single.counter("fold.op.count").add(v);
            single.histogram("fold.op.latency_ms").record(v);
        }
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let r = spread.clone();
                s.spawn(move || {
                    for v in (t * 8)..(t * 8 + 8) {
                        r.counter("fold.op.count").add(v);
                        r.histogram("fold.op.latency_ms").record(v);
                    }
                });
            }
        });
        assert_eq!(single.text_snapshot(), spread.text_snapshot());
    }

    #[test]
    fn kind_collision_returns_detached_instrument() {
        let r = Registry::new();
        r.counter("x");
        let h = r.histogram("x");
        h.record(1); // must not panic, must not corrupt the counter
        assert!(matches!(r.get("x"), Some(Instrument::Counter(_))));
    }
}
