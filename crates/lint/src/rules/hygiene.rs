//! Hygiene rule: library code must not `unwrap`/`expect`/`panic!` its
//! way out of recoverable situations, and must not print to stdio —
//! failures flow through typed `UcError`s and telemetry through uc-obs.
//! Bins and `#[cfg(test)]` regions are exempt; whole crates can be
//! exempted via `[hygiene] allow_crates` (harness crates, with reasons
//! documented in Lint.toml).

use super::{is_punct, Diagnostic, FileCtx, RULE_HYGIENE};
use crate::lexer::Kind;

const BANNED_MACROS: &[&str] =
    &["panic", "dbg", "println", "print", "eprintln", "eprint", "todo", "unimplemented"];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.scan.is_bin {
        return;
    }
    let allow = ctx.cfg.list("hygiene", "allow_crates");
    if allow.iter().any(|c| c == ctx.crate_name) {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.scan.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        // .unwrap( / .expect(
        if (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && is_punct(&toks[i - 1], ".")
            && i + 1 < toks.len()
            && is_punct(&toks[i + 1], "(")
        {
            out.push(ctx.diag(
                t.line,
                RULE_HYGIENE,
                format!("`.{}()` in library code (return a typed UcError instead)", t.text),
            ));
        }
        // panic!( … println!( …
        if BANNED_MACROS.contains(&t.text.as_str())
            && i + 1 < toks.len()
            && is_punct(&toks[i + 1], "!")
        {
            out.push(ctx.diag(
                t.line,
                RULE_HYGIENE,
                format!("`{}!` in library code (use uc-obs or typed errors)", t.text),
            ));
        }
    }
}
