//! Discovery-facing APIs (§4.4): tags, FGAC/ABAC policy management,
//! lineage ingestion and traversal, the change-event feed, and the
//! metadata query API (information schema) with filter pushdown.

use std::collections::{BTreeSet, HashSet, VecDeque};
use std::sync::Arc;

use crate::audit::AuditDecision;
use crate::authz::abac::AbacPolicy;
use crate::authz::fgac::{ColumnMaskPolicy, RowFilterPolicy};
use crate::error::{UcError, UcResult};
use crate::events::{ChangeOp, MetadataChangeEvent};
use crate::ids::Uid;
use crate::lineage::{LineageDirection, LineageEdge};
use crate::model::entity::Entity;
use crate::model::keys::{self, T_ENTITY, T_LINEAGE};
use crate::service::{Context, UnityCatalog};
use crate::types::{FullName, SecurableKind};

/// A pushed-down predicate for the metadata query API.
#[derive(Debug, Clone)]
pub enum MetaFilter {
    KindIs(SecurableKind),
    OwnerIs(String),
    /// Property equals value (e.g. format = DELTA).
    PropEquals(String, String),
    /// Entity carries this tag key (any value).
    HasTag(String),
    NameContains(String),
}

impl MetaFilter {
    fn matches(&self, e: &Entity) -> bool {
        match self {
            MetaFilter::KindIs(k) => e.kind == *k,
            MetaFilter::OwnerIs(o) => &e.owner == o,
            MetaFilter::PropEquals(k, v) => e.properties.get(k) == Some(v),
            MetaFilter::HasTag(k) => e.properties.contains_key(&format!("tag:{k}")),
            MetaFilter::NameContains(s) => e.name.contains(s.as_str()),
        }
    }
}

impl UnityCatalog {
    // ------------------------------------------------------------------
    // Tags
    // ------------------------------------------------------------------

    /// Set an entity-level tag (MODIFY or admin authority).
    pub fn set_tag(
        &self,
        ctx: &Context,
        ms: &Uid,
        name: &FullName,
        leaf_group: &str,
        key: &str,
        value: &str,
    ) -> UcResult<()> {
        self.tag_update(ctx, ms, name, leaf_group, |e| {
            e.set_tag(key, value);
        })
    }

    /// Set a column-level tag on a relation.
    pub fn set_column_tag(
        &self,
        ctx: &Context,
        ms: &Uid,
        name: &FullName,
        column: &str,
        key: &str,
        value: &str,
    ) -> UcResult<()> {
        self.tag_update(ctx, ms, name, "relation", |e| {
            e.set_column_tag(column, key, value);
        })
    }

    fn tag_update(
        &self,
        ctx: &Context,
        ms: &Uid,
        name: &FullName,
        leaf_group: &str,
        f: impl Fn(&mut Entity),
    ) -> UcResult<()> {
        let _api = self.api_enter_t("tag_update", ctx, ms);
        let chain = self.lookup_chain(ms, name, leaf_group)?;
        let target = chain[0].clone();
        let full = self.chain_from_entity(ms, target.clone())?;
        let who = self.authz_context(ms, &ctx.principal)?;
        let authz = Self::authz_of(&full);
        if !(authz.has_admin_authority(&who) || authz.has_privilege(&who, crate::authz::Privilege::Modify)) {
            self.record_audit(&ctx.principal, "setTag", Some(&target.id), AuditDecision::Deny, name);
            return Err(UcError::PermissionDenied("MODIFY required to tag".into()));
        }
        self.update_entity_by_id(ms, &target.id, |e| {
            f(e);
            Ok(())
        })?;
        self.publish_simple(ms, &target, ChangeOp::TagChange);
        self.record_audit(&ctx.principal, "setTag", Some(&target.id), AuditDecision::Allow, name);
        Ok(())
    }

    /// Read tags on a securable the caller can see.
    pub fn get_tags(
        &self,
        ctx: &Context,
        ms: &Uid,
        name: &FullName,
        leaf_group: &str,
    ) -> UcResult<Vec<(String, String)>> {
        let _api = self.api_enter_t("get_tags", ctx, ms);
        let ent = self.get_securable(ctx, ms, name, leaf_group)?;
        Ok(ent.tags())
    }

    // ------------------------------------------------------------------
    // FGAC / ABAC policy management
    // ------------------------------------------------------------------

    /// Attach a row filter to a table (admin authority required).
    pub fn set_row_filter(
        &self,
        ctx: &Context,
        ms: &Uid,
        table: &FullName,
        policy: RowFilterPolicy,
    ) -> UcResult<()> {
        self.policy_update(ctx, ms, table, "setRowFilter", move |e| {
            e.set_row_filter(&policy);
        })
    }

    /// Attach a column mask to a table (admin authority required).
    pub fn set_column_mask(
        &self,
        ctx: &Context,
        ms: &Uid,
        table: &FullName,
        policy: ColumnMaskPolicy,
    ) -> UcResult<()> {
        self.policy_update(ctx, ms, table, "setColumnMask", move |e| {
            e.set_column_mask(&policy);
        })
    }

    /// Remove a table's row filter.
    pub fn clear_row_filter(&self, ctx: &Context, ms: &Uid, table: &FullName) -> UcResult<()> {
        self.policy_update(ctx, ms, table, "clearRowFilter", |e| {
            e.clear_row_filter();
        })
    }

    fn policy_update(
        &self,
        ctx: &Context,
        ms: &Uid,
        table: &FullName,
        action: &str,
        f: impl Fn(&mut Entity),
    ) -> UcResult<()> {
        let _api = self.api_enter_t("policy_update", ctx, ms);
        let chain = self.lookup_chain(ms, table, "relation")?;
        let target = chain[0].clone();
        let full = self.chain_from_entity(ms, target.clone())?;
        let who = self.authz_context(ms, &ctx.principal)?;
        if !Self::authz_of(&full).has_admin_authority(&who) {
            self.record_audit(&ctx.principal, action, Some(&target.id), AuditDecision::Deny, table);
            return Err(UcError::PermissionDenied("admin authority required for policies".into()));
        }
        self.update_entity_by_id(ms, &target.id, |e| {
            f(e);
            Ok(())
        })?;
        self.record_audit(&ctx.principal, action, Some(&target.id), AuditDecision::Allow, table);
        Ok(())
    }

    /// Attach an ABAC policy to a container (admin authority on the
    /// container). The policy covers all current AND future securables in
    /// scope whose tags match.
    pub fn create_abac_policy(
        &self,
        ctx: &Context,
        ms: &Uid,
        scope: &FullName,
        scope_group: &str,
        policy: AbacPolicy,
    ) -> UcResult<()> {
        let _api = self.api_enter_t("create_abac_policy", ctx, ms);
        let chain = self.lookup_chain(ms, scope, scope_group)?;
        let target = chain[0].clone();
        if !target.kind.is_container() {
            return Err(UcError::InvalidArgument(
                "ABAC policies attach to containers".into(),
            ));
        }
        let full = self.chain_from_entity(ms, target.clone())?;
        let who = self.authz_context(ms, &ctx.principal)?;
        if !Self::authz_of(&full).has_admin_authority(&who) {
            self.record_audit(&ctx.principal, "createAbacPolicy", Some(&target.id), AuditDecision::Deny, &policy.name);
            return Err(UcError::PermissionDenied("admin authority required".into()));
        }
        let pname = policy.name.clone();
        self.update_entity_by_id(ms, &target.id, |e| {
            e.set_abac_policy(&policy);
            Ok(())
        })?;
        self.record_audit(&ctx.principal, "createAbacPolicy", Some(&target.id), AuditDecision::Allow, &pname);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lineage
    // ------------------------------------------------------------------

    /// Record a lineage edge reported by an engine: `upstream` fed
    /// `downstream` in some job/query. The caller must be able to see both
    /// endpoints.
    pub fn add_lineage(
        &self,
        ctx: &Context,
        ms: &Uid,
        upstream: &FullName,
        downstream: &FullName,
        via: Option<&str>,
    ) -> UcResult<()> {
        let _api = self.api_enter_t("add_lineage", ctx, ms);
        let up = self.get_securable(ctx, ms, upstream, "relation")?;
        let down = self.get_securable(ctx, ms, downstream, "relation")?;
        let edge = LineageEdge {
            upstream: up.id.clone(),
            downstream: down.id.clone(),
            via: via.map(|s| s.to_string()),
            columns: vec![],
            created_at_ms: self.now_ms(),
        };
        // Lineage is discovery metadata: stored transactionally but outside
        // the metastore-version protocol (it never affects operational
        // reads, so cache coherence is not required).
        let mut tx = self.db.begin_write();
        tx.put(T_LINEAGE, &keys::lineage_down_key(ms, &down.id, &up.id), edge.encode());
        tx.put(T_LINEAGE, &keys::lineage_up_key(ms, &up.id, &down.id), edge.encode());
        tx.commit()?;
        self.events.publish(MetadataChangeEvent {
            seq: 0,
            metastore: ms.clone(),
            entity_id: down.id.clone(),
            kind: down.kind,
            name: down.name.clone(),
            op: ChangeOp::LineageAdd,
            at_version: 0,
            timestamp_ms: self.now_ms(),
        });
        self.record_audit(&ctx.principal, "addLineage", Some(&down.id), AuditDecision::Allow, format!("{upstream} -> {downstream}"));
        Ok(())
    }

    /// Transitive lineage from a securable, filtered to entities the
    /// caller can see. Returns entity ids.
    pub fn lineage(
        &self,
        ctx: &Context,
        ms: &Uid,
        start: &FullName,
        direction: LineageDirection,
        max_hops: usize,
    ) -> UcResult<BTreeSet<Uid>> {
        let _api = self.api_enter_t("lineage", ctx, ms);
        let start_ent = self.get_securable(ctx, ms, start, "relation")?;
        let who = self.authz_context(ms, &ctx.principal)?;
        let rt = self.db.begin_read();
        let mut seen: HashSet<Uid> = HashSet::new();
        let mut queue = VecDeque::from([(start_ent.id.clone(), 0usize)]);
        while let Some((node, depth)) = queue.pop_front() {
            if depth >= max_hops {
                continue;
            }
            let prefix = match direction {
                LineageDirection::Downstream => format!("{ms}/u/{node}/"),
                LineageDirection::Upstream => format!("{ms}/d/{node}/"),
            };
            for (key, _) in rt.scan_prefix(T_LINEAGE, &prefix) {
                let Some(next) = key.rsplit('/').next() else { continue };
                let next = Uid::from(next);
                if seen.insert(next.clone()) {
                    queue.push_back((next, depth + 1));
                }
            }
        }
        seen.remove(&start_ent.id);
        // Authorization filter: hide entities the caller cannot see.
        let mut visible = BTreeSet::new();
        for id in seen {
            if let Some(ent) = self.entity_by_id(ms, &id)? {
                let full = self.chain_from_entity(ms, ent)?;
                if Self::authz_of(&full).can_see(&who) {
                    visible.insert(id);
                }
            }
        }
        Ok(visible)
    }

    // ------------------------------------------------------------------
    // Events
    // ------------------------------------------------------------------

    /// Consume the change-event stream from an offset. Used by second-tier
    /// services; returns (events, next offset).
    pub fn events_since(&self, offset: u64) -> (Vec<MetadataChangeEvent>, u64) {
        let _api = self.api_enter("events_since");
        self.events.since(offset)
    }

    fn publish_simple(&self, ms: &Uid, ent: &Entity, op: ChangeOp) {
        self.events.publish(MetadataChangeEvent {
            seq: 0,
            metastore: ms.clone(),
            entity_id: ent.id.clone(),
            kind: ent.kind,
            name: ent.name.clone(),
            op,
            at_version: 0,
            timestamp_ms: self.now_ms(),
        });
    }

    // ------------------------------------------------------------------
    // Metadata query API (information schema)
    // ------------------------------------------------------------------

    /// Query entities in a metastore with pushed-down filters, returning
    /// only securables visible to the caller. Powers information_schema
    /// and discovery backends.
    pub fn query_entities(
        &self,
        ctx: &Context,
        ms: &Uid,
        filters: &[MetaFilter],
        limit: usize,
    ) -> UcResult<Vec<Arc<Entity>>> {
        let _api = self.api_enter_t("query_entities", ctx, ms);
        let who = self.authz_context(ms, &ctx.principal)?;
        let rt = self.db.begin_read();
        let mut out = Vec::new();
        for (_, raw) in rt.scan_prefix(T_ENTITY, &keys::ent_ms_prefix(ms)) {
            if out.len() >= limit {
                break;
            }
            let Ok(ent) = Entity::decode(&raw) else { continue };
            if !ent.is_active() {
                continue;
            }
            // Pushdown: cheap predicate evaluation before the (costlier)
            // authorization walk.
            if !filters.iter().all(|f| f.matches(&ent)) {
                continue;
            }
            let ent = Arc::new(ent);
            let full = self.chain_from_entity(ms, ent.clone())?;
            if Self::authz_of(&full).can_see(&who) {
                out.push(ent);
            }
        }
        Ok(out)
    }
}
