//! The data filtering service (§4.3.2).
//!
//! Some engines cannot be trusted to enforce FGAC — for example ML
//! workloads that run arbitrary user code next to the data path. Rather
//! than denying them governed data entirely, an untrusted engine
//! delegates queries that touch FGAC-protected tables to this service: a
//! *trusted* engine that executes the query under the original caller's
//! identity and returns only the filtered/masked rows. The untrusted
//! engine never receives storage credentials for the protected table.

use std::sync::Arc;

use crate::error::EngineResult;
use crate::exec::{Engine, QueryResult};
use crate::sql::{render_select, SelectQuery};

/// A trusted execution endpoint for FGAC delegation.
pub struct DataFilteringService {
    trusted_engine: Arc<Engine>,
}

impl DataFilteringService {
    /// Wrap a trusted engine. Panics if the engine is not trusted —
    /// delegating to an untrusted engine would defeat the design.
    pub fn new(trusted_engine: Arc<Engine>) -> Arc<Self> {
        assert!(
            trusted_engine_is_trusted(&trusted_engine),
            "the data filtering service must wrap a trusted engine"
        );
        Arc::new(DataFilteringService { trusted_engine })
    }

    /// Execute a SELECT on behalf of `principal` and return only result
    /// rows (already filtered and masked).
    pub fn execute_select(&self, principal: &str, query: &SelectQuery) -> EngineResult<QueryResult> {
        let mut session = self.trusted_engine.session(principal);
        session.execute(&render_select(query))
    }
}

fn trusted_engine_is_trusted(engine: &Arc<Engine>) -> bool {
    // The engine's trust flag is private config; probe via a context.
    matches!(
        engine.context_for("probe").engine,
        uc_catalog::service::EngineIdentity::Trusted(_)
    )
}
