//! Instrumentation-coverage rule. Every public entry point on the
//! catalog service must open a span via `api_enter("op")` (directly, or
//! by delegating to a same-file function that does), the op string must
//! exist in the audit module's `KNOWN_OPS` table, audit action literals
//! must belong to that op's allowed set, and any function that denies
//! with `PermissionDenied` must also record an `AuditDecision::Deny`.
//!
//! Known false negatives (DESIGN.md §8): actions passed as variables are
//! not checked (`vend_for_entity`-style helpers), the Deny check is
//! function-granular (one audited deny path satisfies it for the whole
//! function), and cross-file delegation needs a pragma.

use std::collections::{BTreeMap, BTreeSet};

use super::{is_ident, is_punct, Diagnostic, FileCtx, RULE_INSTRUMENT};
use crate::lexer::{Kind, Token};

/// op → allowed audit actions, parsed out of the audit module source.
pub type KnownOps = BTreeMap<String, Vec<String>>;

/// Extract the `KNOWN_OPS: &[(&str, &[&str])]` table from the audit
/// module's token stream. Returns None when the table is absent.
pub fn parse_known_ops(tokens: &[Token]) -> Option<KnownOps> {
    let kw = tokens.iter().position(|t| is_ident(t, "KNOWN_OPS"))?;
    // Skip the type annotation (`: &[(&str, &[&str])]`) — walk the
    // *initializer*, which starts after the `=`.
    let start = (kw..tokens.len()).find(|&i| is_punct(&tokens[i], "="))?;
    let mut ops = KnownOps::new();
    let mut depth = 0i64;
    let mut i = start;
    let mut current: Option<(String, Vec<String>)> = None;
    // Walk the initializer: entries look like `("op", &["a", "b"])`.
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, "[") {
            depth += 1;
        } else if is_punct(t, "]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if is_punct(t, "(") && depth == 1 {
            current = Some((String::new(), Vec::new()));
        } else if is_punct(t, ")") && depth == 1 {
            if let Some((op, actions)) = current.take() {
                if !op.is_empty() {
                    ops.insert(op, actions);
                }
            }
        } else if t.kind == Kind::Str {
            if let Some((op, actions)) = current.as_mut() {
                if op.is_empty() {
                    *op = t.text.clone();
                } else {
                    actions.push(t.text.clone());
                }
            }
        } else if is_punct(t, ";") && depth == 0 && i > start {
            break;
        }
        i += 1;
    }
    if ops.is_empty() {
        None
    } else {
        Some(ops)
    }
}

/// The `api_enter` family. All variants take the op string as their
/// first argument, so the token shape below holds for each.
const API_ENTER_FNS: &[&str] = &["api_enter", "api_enter_t", "api_enter_p"];

/// Find the op string of a direct `api_enter("...")` (or `api_enter_t` /
/// `api_enter_p`) call in a token range, if any.
fn direct_api_op(toks: &[Token], range: (usize, usize)) -> Option<(String, u32)> {
    let (open, close) = range;
    for i in open..close {
        if API_ENTER_FNS.iter().any(|f| is_ident(&toks[i], f))
            && i + 2 < close
            && is_punct(&toks[i + 1], "(")
            && toks[i + 2].kind == Kind::Str
        {
            return Some((toks[i + 2].text.clone(), toks[i + 2].line));
        }
    }
    None
}

/// Split a call's argument tokens into top-level comma-separated args.
/// `open` indexes the `(`. Returns (args, index_after_close).
fn call_args(toks: &[Token], open: usize) -> (Vec<Vec<usize>>, usize) {
    let mut args: Vec<Vec<usize>> = vec![Vec::new()];
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") {
            depth += 1;
            if depth > 1 {
                if let Some(last) = args.last_mut() {
                    last.push(i);
                }
            }
        } else if is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}") {
            depth -= 1;
            if depth == 0 {
                return (args, i + 1);
            }
            if let Some(last) = args.last_mut() {
                last.push(i);
            }
        } else if is_punct(t, ",") && depth == 1 {
            args.push(Vec::new());
        } else if depth >= 1 {
            if let Some(last) = args.last_mut() {
                last.push(i);
            }
        }
        i += 1;
    }
    (args, i)
}

pub fn check(ctx: &FileCtx<'_>, known: Option<&KnownOps>, out: &mut Vec<Diagnostic>) {
    let entry_files = ctx.cfg.list("instrument", "entry_files");
    if !entry_files.iter().any(|f| f == ctx.rel_path) {
        return;
    }
    let Some(known) = known else {
        out.push(ctx.diag(
            1,
            RULE_INSTRUMENT,
            "audit module KNOWN_OPS table not found; cannot check instrumentation".to_string(),
        ));
        return;
    };
    let impl_type = ctx.cfg.str("instrument", "impl_type").unwrap_or_default();
    let global_actions: BTreeSet<&str> =
        known.values().flat_map(|v| v.iter().map(|s| s.as_str())).collect();
    let toks = ctx.tokens;

    // Same-file functions that instrument directly — delegation targets.
    let mut instrumented: BTreeSet<&str> = BTreeSet::new();
    for f in &ctx.scan.fns {
        if let Some(body) = f.body {
            if direct_api_op(toks, body).is_some() {
                instrumented.insert(f.name.as_str());
            }
        }
    }

    for f in &ctx.scan.fns {
        let Some((open, close)) = f.body else { continue };
        if ctx.scan.test_mask[open] {
            continue;
        }
        let direct = direct_api_op(toks, (open, close));
        let is_entry = f.is_pub && f.impl_type.as_deref() == Some(impl_type.as_str());

        if is_entry && direct.is_none() {
            let delegates = (open..close).any(|i| {
                toks[i].kind == Kind::Ident
                    && i + 1 < close
                    && is_punct(&toks[i + 1], "(")
                    && toks[i].text != f.name
                    && instrumented.contains(toks[i].text.as_str())
            });
            if !delegates {
                out.push(ctx.diag(
                    f.line,
                    RULE_INSTRUMENT,
                    format!("pub entry point `{}` does not call api_enter (directly or via a same-file delegate)", f.name),
                ));
            }
        }
        if let Some((op, op_line)) = &direct {
            if !known.contains_key(op) {
                out.push(ctx.diag(
                    *op_line,
                    RULE_INSTRUMENT,
                    format!("api op \"{op}\" is not in audit::KNOWN_OPS"),
                ));
            }
        }

        // (a) Every literal action handed to record_audit must be a known
        // action — catches ad-hoc names like "create" that exist in no
        // op's allowed set.
        let mut i = open;
        while i < close {
            if is_ident(&toks[i], "record_audit") && i + 1 < close && is_punct(&toks[i + 1], "(") {
                let (args, after) = call_args(toks, i + 1);
                // record_audit(principal, action, entity, decision, detail)
                if let Some(arg) = args.get(1) {
                    if let [only] = arg.as_slice() {
                        if toks[*only].kind == Kind::Str {
                            let action = toks[*only].text.as_str();
                            if !global_actions.contains(action) {
                                out.push(ctx.diag(
                                    toks[*only].line,
                                    RULE_INSTRUMENT,
                                    format!("audit action \"{action}\" is not in audit::KNOWN_OPS"),
                                ));
                            }
                        }
                    }
                }
                i = after;
                continue;
            }
            i += 1;
        }
        // (b) In an op-bearing function, any string literal that IS a
        // known audit action must be allowed for that op — catches
        // cross-op mixups even when the action travels through a helper
        // (e.g. vend_for_entity) rather than record_audit directly.
        if let Some((op, _)) = &direct {
            if let Some(allowed) = known.get(op) {
                for t in toks.iter().take(close).skip(open) {
                    if t.kind == Kind::Str
                        && global_actions.contains(t.text.as_str())
                        && !allowed.iter().any(|a| a == &t.text)
                    {
                        out.push(ctx.diag(
                            t.line,
                            RULE_INSTRUMENT,
                            format!(
                                "audit action \"{}\" does not match api op \"{op}\" (allowed: {})",
                                t.text,
                                allowed.join(", ")
                            ),
                        ));
                    }
                }
            }
        }

        // Deny paths must audit: PermissionDenied without any Deny token.
        let has_denied = (open..close).any(|i| is_ident(&toks[i], "PermissionDenied"));
        let has_deny_audit = (open..close).any(|i| is_ident(&toks[i], "Deny"));
        if has_denied && !has_deny_audit {
            out.push(ctx.diag(
                f.line,
                RULE_INSTRUMENT,
                format!("`{}` constructs PermissionDenied without auditing a Deny decision", f.name),
            ));
        }
    }
}
