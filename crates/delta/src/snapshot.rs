//! Snapshots: the table state produced by replaying the log.

use std::collections::BTreeMap;

use crate::actions::{Action, AddFile, MetaData, Protocol};
use crate::error::{DeltaError, DeltaResult};
use crate::expr::Expr;
use crate::value::{Schema, Value};

/// Immutable view of a table at a version.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub version: i64,
    pub protocol: Protocol,
    pub metadata: MetaData,
    /// Active files keyed by relative path.
    pub files: BTreeMap<String, AddFile>,
    /// Files removed but not yet vacuumed (path → deletion timestamp).
    pub tombstones: BTreeMap<String, u64>,
}

impl Snapshot {
    /// Fold an ordered action history into a snapshot.
    pub fn replay(log: &[(i64, Vec<Action>)]) -> DeltaResult<Snapshot> {
        Self::replay_from(None, log)
    }

    /// Fold actions on top of an optional checkpoint base — the base is
    /// the state at its version; `log` holds only the commits after it.
    pub fn replay_from(base: Option<Snapshot>, log: &[(i64, Vec<Action>)]) -> DeltaResult<Snapshot> {
        let (mut protocol, mut metadata, mut files, mut tombstones, mut version) = match base {
            Some(b) => (Some(b.protocol), Some(b.metadata), b.files, b.tombstones, b.version),
            None => (None, None, BTreeMap::new(), BTreeMap::new(), -1),
        };
        for (v, actions) in log {
            version = *v;
            for action in actions {
                match action {
                    Action::Protocol(p) => protocol = Some(p.clone()),
                    Action::MetaData(m) => metadata = Some(m.clone()),
                    Action::Add(add) => {
                        tombstones.remove(&add.path);
                        files.insert(add.path.clone(), add.clone());
                    }
                    Action::Remove(rm) => {
                        files.remove(&rm.path);
                        tombstones.insert(rm.path.clone(), rm.deletion_timestamp_ms);
                    }
                    Action::CommitInfo(_) => {}
                }
            }
        }
        let protocol =
            protocol.ok_or_else(|| DeltaError::Corrupt("log has no protocol action".into()))?;
        let metadata =
            metadata.ok_or_else(|| DeltaError::Corrupt("log has no metaData action".into()))?;
        Ok(Snapshot { version, protocol, metadata, files, tombstones })
    }

    pub fn schema(&self) -> &Schema {
        &self.metadata.schema
    }

    /// Total rows across active files (from file stats).
    pub fn num_records(&self) -> u64 {
        self.files.values().map(|f| f.num_records).sum()
    }

    /// Total bytes across active files.
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|f| f.size_bytes).sum()
    }

    /// Serialize the full state as checkpoint actions (protocol,
    /// metadata, every active file, every tombstone).
    pub fn to_checkpoint_actions(&self) -> Vec<Action> {
        let mut actions = Vec::with_capacity(2 + self.files.len() + self.tombstones.len());
        actions.push(Action::Protocol(self.protocol.clone()));
        actions.push(Action::MetaData(self.metadata.clone()));
        actions.extend(self.files.values().cloned().map(Action::Add));
        actions.extend(self.tombstones.iter().map(|(path, ts)| {
            Action::Remove(crate::actions::RemoveFile {
                path: path.clone(),
                deletion_timestamp_ms: *ts,
            })
        }));
        actions
    }

    /// Rebuild the state a checkpoint captured at `version`.
    pub fn from_checkpoint(version: i64, actions: Vec<Action>) -> DeltaResult<Snapshot> {
        Snapshot::replay(&[(version, actions)])
    }

    /// Active files that might contain rows matching `predicate`, using
    /// per-file statistics. `None` predicate returns everything.
    pub fn prune_files(&self, predicate: Option<&Expr>) -> Vec<&AddFile> {
        self.files
            .values()
            .filter(|f| predicate.is_none_or(|p| file_may_match(p, f)))
            .collect()
    }
}

/// Conservative stats-based check: can any row in the file satisfy the
/// predicate? Unknown shapes return `true` (never skip incorrectly).
pub fn file_may_match(expr: &Expr, file: &AddFile) -> bool {
    match expr {
        Expr::And(a, b) => file_may_match(a, file) && file_may_match(b, file),
        // For OR, the file may match if either side may.
        Expr::Or(a, b) => file_may_match(a, file) || file_may_match(b, file),
        Expr::Cmp { op, lhs, rhs } => {
            // Only `col <op> literal` (either orientation) is prunable.
            let (col, lit, op) = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) => (c, v, *op),
                (Expr::Literal(v), Expr::Column(c)) => (c, v, flip(*op)),
                _ => return true,
            };
            let Some(stats) = file.stats.get(col) else {
                return true;
            };
            let (Some(min), Some(max)) = (&stats.min, &stats.max) else {
                // No min/max (all-null or stats missing): only rows with
                // values could match a comparison, and none are known.
                return stats.null_count < file.num_records;
            };
            may_satisfy(op, min, max, lit)
        }
        // IS NULL prunes when the file has no nulls in that column.
        Expr::IsNull(inner) => match inner.as_ref() {
            Expr::Column(c) => file
                .stats
                .get(c)
                .map(|s| s.null_count > 0)
                .unwrap_or(true),
            _ => true,
        },
        // NOT, principal functions, bare columns/literals: not prunable.
        _ => true,
    }
}

fn flip(op: crate::expr::CmpOp) -> crate::expr::CmpOp {
    use crate::expr::CmpOp::*;
    match op {
        Eq => Eq,
        Ne => Ne,
        Lt => Gt,
        Le => Ge,
        Gt => Lt,
        Ge => Le,
    }
}

fn may_satisfy(op: crate::expr::CmpOp, min: &Value, max: &Value, lit: &Value) -> bool {
    use crate::expr::CmpOp::*;
    use std::cmp::Ordering::*;
    let min_cmp = min.try_cmp(lit);
    let max_cmp = max.try_cmp(lit);
    let (Some(min_cmp), Some(max_cmp)) = (min_cmp, max_cmp) else {
        return true; // incomparable types: cannot prune safely
    };
    match op {
        Eq => min_cmp != Greater && max_cmp != Less,
        Ne => !(min_cmp == Equal && max_cmp == Equal),
        Lt => min_cmp == Less,
        Le => min_cmp != Greater,
        Gt => max_cmp == Greater,
        Ge => max_cmp != Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::ColumnStats;
    use crate::expr::CmpOp;
    use std::collections::BTreeMap;

    fn add_with_stats(path: &str, min: i64, max: i64, nulls: u64, records: u64) -> AddFile {
        AddFile {
            path: path.into(),
            size_bytes: 100,
            num_records: records,
            stats: BTreeMap::from([(
                "x".to_string(),
                ColumnStats {
                    min: Some(Value::Int(min)),
                    max: Some(Value::Int(max)),
                    null_count: nulls,
                },
            )]),
            modification_time_ms: 0,
        }
    }

    fn meta() -> MetaData {
        MetaData {
            id: "t".into(),
            schema: Schema::new(vec![crate::value::Field::new("x", crate::value::DataType::Int)]),
            partition_columns: vec![],
            configuration: BTreeMap::new(),
        }
    }

    #[test]
    fn replay_builds_active_file_set() {
        let log = vec![
            (
                0,
                vec![
                    Action::Protocol(Protocol::default()),
                    Action::MetaData(meta()),
                    Action::Add(add_with_stats("a", 0, 9, 0, 10)),
                ],
            ),
            (
                1,
                vec![
                    Action::Add(add_with_stats("b", 10, 19, 0, 10)),
                    Action::Remove(crate::actions::RemoveFile {
                        path: "a".into(),
                        deletion_timestamp_ms: 5,
                    }),
                ],
            ),
        ];
        let snap = Snapshot::replay(&log).unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.files.len(), 1);
        assert!(snap.files.contains_key("b"));
        assert_eq!(snap.tombstones.get("a"), Some(&5));
        assert_eq!(snap.num_records(), 10);
    }

    #[test]
    fn re_add_clears_tombstone() {
        let log = vec![(
            0,
            vec![
                Action::Protocol(Protocol::default()),
                Action::MetaData(meta()),
                Action::Add(add_with_stats("a", 0, 9, 0, 10)),
                Action::Remove(crate::actions::RemoveFile { path: "a".into(), deletion_timestamp_ms: 1 }),
                Action::Add(add_with_stats("a", 0, 9, 0, 10)),
            ],
        )];
        let snap = Snapshot::replay(&log).unwrap();
        assert!(snap.files.contains_key("a"));
        assert!(snap.tombstones.is_empty());
    }

    #[test]
    fn replay_requires_protocol_and_metadata() {
        let log = vec![(0, vec![Action::Add(add_with_stats("a", 0, 1, 0, 2))])];
        assert!(matches!(Snapshot::replay(&log), Err(DeltaError::Corrupt(_))));
    }

    #[test]
    fn pruning_eq_respects_min_max() {
        let f = add_with_stats("a", 10, 20, 0, 100);
        assert!(file_may_match(&Expr::cmp("x", CmpOp::Eq, 15i64), &f));
        assert!(file_may_match(&Expr::cmp("x", CmpOp::Eq, 10i64), &f));
        assert!(!file_may_match(&Expr::cmp("x", CmpOp::Eq, 9i64), &f));
        assert!(!file_may_match(&Expr::cmp("x", CmpOp::Eq, 21i64), &f));
    }

    #[test]
    fn pruning_range_operators() {
        let f = add_with_stats("a", 10, 20, 0, 100);
        assert!(!file_may_match(&Expr::cmp("x", CmpOp::Lt, 10i64), &f));
        assert!(file_may_match(&Expr::cmp("x", CmpOp::Le, 10i64), &f));
        assert!(!file_may_match(&Expr::cmp("x", CmpOp::Gt, 20i64), &f));
        assert!(file_may_match(&Expr::cmp("x", CmpOp::Ge, 20i64), &f));
        assert!(file_may_match(&Expr::cmp("x", CmpOp::Ne, 15i64), &f));
        // Ne prunes only a constant file
        let constant = add_with_stats("b", 7, 7, 0, 10);
        assert!(!file_may_match(&Expr::cmp("x", CmpOp::Ne, 7i64), &constant));
    }

    #[test]
    fn pruning_flipped_literal_column() {
        let f = add_with_stats("a", 10, 20, 0, 100);
        // 25 < x  ⟺  x > 25 → cannot match (max 20)
        let e = Expr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(Expr::Literal(Value::Int(25))),
            rhs: Box::new(Expr::Column("x".into())),
        };
        assert!(!file_may_match(&e, &f));
    }

    #[test]
    fn pruning_and_or_composition() {
        let f = add_with_stats("a", 10, 20, 0, 100);
        let in_range = Expr::cmp("x", CmpOp::Ge, 12i64).and(Expr::cmp("x", CmpOp::Le, 14i64));
        let out_of_range = Expr::cmp("x", CmpOp::Gt, 100i64).and(Expr::cmp("x", CmpOp::Lt, 200i64));
        assert!(file_may_match(&in_range, &f));
        assert!(!file_may_match(&out_of_range, &f));
        assert!(file_may_match(&out_of_range.clone().or(in_range), &f));
    }

    #[test]
    fn pruning_is_null_uses_null_count() {
        let no_nulls = add_with_stats("a", 1, 2, 0, 10);
        let some_nulls = add_with_stats("b", 1, 2, 3, 10);
        let e = Expr::IsNull(Box::new(Expr::Column("x".into())));
        assert!(!file_may_match(&e, &no_nulls));
        assert!(file_may_match(&e, &some_nulls));
    }

    #[test]
    fn unknown_shapes_never_prune() {
        let f = add_with_stats("a", 10, 20, 0, 100);
        assert!(file_may_match(&Expr::CurrentUser, &f));
        assert!(file_may_match(
            &Expr::Not(Box::new(Expr::cmp("x", CmpOp::Eq, 0i64))),
            &f
        ));
        // column without stats
        assert!(file_may_match(&Expr::cmp("unknown_col", CmpOp::Eq, 0i64), &f));
    }

    #[test]
    fn all_null_file_prunes_comparisons() {
        let mut f = add_with_stats("a", 0, 0, 10, 10);
        f.stats.get_mut("x").unwrap().min = None;
        f.stats.get_mut("x").unwrap().max = None;
        assert!(!file_may_match(&Expr::cmp("x", CmpOp::Eq, 5i64), &f));
    }
}
