//! End-to-end tests of the Unity Catalog service: namespace, governance,
//! vending, FGAC/ABAC, caching across nodes, commits, sharing, federation.

use std::sync::Arc;

use bytes::Bytes;
use uc_catalog::authz::fgac::RowFilterPolicy;
use uc_catalog::authz::abac::{AbacEffect, AbacPolicy};
use uc_catalog::authz::Privilege;
use uc_catalog::error::UcError;
use uc_catalog::ids::Uid;
use uc_catalog::service::commits::TableCommit;
use uc_catalog::service::crud::TableSpec;
use uc_catalog::service::discovery_api::MetaFilter;
use uc_catalog::service::{Context, UcConfig, UnityCatalog};
use uc_catalog::types::{FullName, SecurableKind, TableFormat};
use uc_cloudstore::{AccessLevel, Credential, ObjectStore, StoragePath};
use uc_delta::expr::{CmpOp, Expr};
use uc_delta::value::{DataType, Field, Schema, Value};
use uc_txdb::Db;

const ADMIN: &str = "admin";

struct Fixture {
    uc: Arc<UnityCatalog>,
    ms: Uid,
    store: ObjectStore,
}

fn table_schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("owner_name", DataType::Str),
        Field::new("salary", DataType::Float),
    ])
}

/// Bootstrap a metastore with storage root + credential and one
/// catalog/schema, as `admin`.
fn fixture() -> Fixture {
    let db = Db::in_memory();
    let store = ObjectStore::in_memory();
    let uc = UnityCatalog::new(db, store.clone(), UcConfig::default(), "node-0");
    let ms = uc.create_metastore(ADMIN, "prod", "us-west-2").unwrap();
    let ctx = Context::user(ADMIN);
    let root = store.create_bucket("lake");
    uc.create_storage_credential(&ctx, &ms, "lake_cred", &root).unwrap();
    uc.set_metastore_root(&ctx, &ms, "s3://lake/managed").unwrap();
    uc.create_catalog(&ctx, &ms, "main").unwrap();
    uc.create_schema(&ctx, &ms, "main", "sales").unwrap();
    Fixture { uc, ms, store }
}

fn admin() -> Context {
    Context::user(ADMIN)
}

#[test]
fn namespace_create_get_list() {
    let f = fixture();
    let ctx = admin();
    let t = f
        .uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    assert_eq!(t.kind, SecurableKind::Table);
    assert!(t.storage_path.as_deref().unwrap().starts_with("s3://lake/managed/tables/"));

    let fetched = f.uc.get_table(&ctx, &f.ms, "main.sales.orders").unwrap();
    assert_eq!(fetched.id, t.id);

    // case-insensitive resolution
    let fetched2 = f.uc.get_table(&ctx, &f.ms, "MAIN.SALES.ORDERS").unwrap();
    assert_eq!(fetched2.id, t.id);

    let cats = f.uc.list_catalogs(&ctx, &f.ms).unwrap();
    assert_eq!(cats.len(), 1);
    let children = f
        .uc
        .list_children(&ctx, &f.ms, &FullName::parse("main.sales").unwrap(), None)
        .unwrap();
    assert_eq!(children.len(), 1);
}

#[test]
fn tables_and_views_share_namespace() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    let err = f
        .uc
        .create_view(
            &ctx,
            &f.ms,
            &FullName::parse("main.sales.orders").unwrap(),
            "SELECT 1",
            table_schema(),
            &[],
        )
        .unwrap_err();
    assert!(matches!(err, UcError::AlreadyExists(_)));
    // but a volume with the same name is fine (different group)
    f.uc
        .create_volume(&ctx, &f.ms, &FullName::parse("main.sales.orders").unwrap(), None)
        .unwrap();
}

#[test]
fn duplicate_table_rejected() {
    let f = fixture();
    let ctx = admin();
    let spec = TableSpec::managed("main.sales.orders", table_schema()).unwrap();
    f.uc.create_table(&ctx, &f.ms, spec.clone()).unwrap();
    assert!(matches!(
        f.uc.create_table(&ctx, &f.ms, spec),
        Err(UcError::AlreadyExists(_))
    ));
}

#[test]
fn default_deny_and_grant_flow() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    let alice = Context::trusted("alice", "dbr");

    // alice sees nothing by default — existence is hidden
    assert!(matches!(
        f.uc.get_table(&alice, &f.ms, "main.sales.orders"),
        Err(UcError::NotFound(_))
    ));
    // resolution denied
    assert!(f
        .uc
        .resolve_for_query(&alice, &f.ms, &[FullName::parse("main.sales.orders").unwrap()], false)
        .is_err());

    // grant the read path
    f.uc.grant_read_path(&ctx, &f.ms, "main.sales.orders", "alice").unwrap();
    let resolved = f
        .uc
        .resolve_for_query(&alice, &f.ms, &[FullName::parse("main.sales.orders").unwrap()], false)
        .unwrap();
    assert_eq!(resolved.len(), 1);
    assert_eq!(resolved[0].schema.as_ref().unwrap().fields.len(), 3);

    // revoking SELECT denies again
    f.uc
        .revoke(&ctx, &f.ms, &FullName::parse("main.sales.orders").unwrap(), "relation", "alice", Privilege::Select)
        .unwrap();
    assert!(f
        .uc
        .resolve_for_query(&alice, &f.ms, &[FullName::parse("main.sales.orders").unwrap()], false)
        .is_err());
}

#[test]
fn select_granted_on_catalog_inherits() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    let cat = FullName::parse("main").unwrap();
    for p in [Privilege::UseCatalog, Privilege::UseSchema, Privilege::Select] {
        f.uc.grant(&ctx, &f.ms, &cat, "catalog", "analysts", p).unwrap();
    }
    f.uc.upsert_principal("bob", &["analysts"]).unwrap();
    let bob = Context::trusted("bob", "dbr");
    // a table created AFTER the grant is also covered
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.later", table_schema()).unwrap())
        .unwrap();
    for t in ["main.sales.orders", "main.sales.later"] {
        assert!(f
            .uc
            .resolve_for_query(&bob, &f.ms, &[FullName::parse(t).unwrap()], false)
            .is_ok());
    }
}

#[test]
fn credential_vending_by_name_and_path() {
    let f = fixture();
    let ctx = admin();
    let t = f
        .uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    f.uc.grant_read_path(&ctx, &f.ms, "main.sales.orders", "alice").unwrap();
    let alice = Context::trusted("alice", "dbr");

    let tok = f
        .uc
        .temp_credentials(&alice, &f.ms, &FullName::parse("main.sales.orders").unwrap(), "relation", AccessLevel::Read)
        .unwrap();
    let table_path = StoragePath::parse(t.storage_path.as_ref().unwrap()).unwrap();
    assert_eq!(tok.scope, table_path);

    // path-based access resolves to the same asset and policy
    let inner = table_path.child("part-000.json").to_string();
    let tok2 = f
        .uc
        .temp_credentials_for_path(&alice, &f.ms, &inner, AccessLevel::Read)
        .unwrap();
    assert_eq!(tok2.scope, table_path, "token is scoped to the asset, not the file");

    // write access requires MODIFY
    assert!(matches!(
        f.uc.temp_credentials_for_path(&alice, &f.ms, &inner, AccessLevel::ReadWrite),
        Err(UcError::PermissionDenied(_))
    ));

    // the token actually works against storage and is bounded by scope
    let cred = Credential::Temp(tok);
    f.store
        .put(&Credential::Root(f.uc.object_store().sts().issue_root("x")), &table_path.child("f"), Bytes::new())
        .unwrap_err(); // forged root rejected
    assert!(f.store.list(&cred, &table_path).is_ok());
    let outside = StoragePath::parse("s3://lake/managed/tables").unwrap();
    assert!(f.store.list(&cred, &outside).is_err());
}

#[test]
fn vending_unknown_path_denied() {
    let f = fixture();
    let alice = Context::user("alice");
    assert!(matches!(
        f.uc.temp_credentials_for_path(&alice, &f.ms, "s3://lake/elsewhere/file", AccessLevel::Read),
        Err(UcError::NotFound(_))
    ));
}

#[test]
fn fgac_requires_trusted_engine() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    f.uc.grant_read_path(&ctx, &f.ms, "main.sales.orders", "alice").unwrap();
    let name = FullName::parse("main.sales.orders").unwrap();
    f.uc
        .set_row_filter(
            &ctx,
            &f.ms,
            &name,
            RowFilterPolicy {
                expr: Expr::Cmp {
                    op: CmpOp::Eq,
                    lhs: Box::new(Expr::Column("owner_name".into())),
                    rhs: Box::new(Expr::CurrentUser),
                },
            },
        )
        .unwrap();

    // untrusted engine: denied
    let alice_untrusted = Context::user("alice");
    assert!(matches!(
        f.uc.resolve_for_query(&alice_untrusted, &f.ms, std::slice::from_ref(&name), false),
        Err(UcError::PermissionDenied(_))
    ));
    assert!(matches!(
        f.uc.temp_credentials(&alice_untrusted, &f.ms, &name, "relation", AccessLevel::Read),
        Err(UcError::PermissionDenied(_))
    ));

    // trusted engine: allowed and receives the policy
    let alice = Context::trusted("alice", "dbr");
    let resolved = f.uc.resolve_for_query(&alice, &f.ms, &[name], false).unwrap();
    assert!(resolved[0].fgac.row_filter.is_some());
}

#[test]
fn abac_policy_masks_tagged_columns() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.people", table_schema()).unwrap())
        .unwrap();
    let name = FullName::parse("main.sales.people").unwrap();
    f.uc.set_column_tag(&ctx, &f.ms, &name, "salary", "pii", "high").unwrap();
    f.uc
        .create_abac_policy(
            &ctx,
            &f.ms,
            &FullName::parse("main").unwrap(),
            "catalog",
            AbacPolicy {
                name: "mask-pii".into(),
                tag_key: "pii".into(),
                tag_value: None,
                effect: AbacEffect::MaskColumns {
                    mask: Expr::Literal(Value::Null),
                    exempt_groups: vec!["hr".into()],
                },
            },
        )
        .unwrap();
    f.uc.grant_read_path(&ctx, &f.ms, "main.sales.people", "alice").unwrap();
    f.uc.grant_read_path(&ctx, &f.ms, "main.sales.people", "hanna").unwrap();
    f.uc.upsert_principal("hanna", &["hr"]).unwrap();

    // alice (not in hr) gets a derived mask on salary
    let alice = Context::trusted("alice", "dbr");
    let resolved = f.uc.resolve_for_query(&alice, &f.ms, std::slice::from_ref(&name), false).unwrap();
    assert_eq!(resolved[0].fgac.column_masks.len(), 1);
    assert_eq!(resolved[0].fgac.column_masks[0].column, "salary");

    // hanna (hr) sees no mask
    let hanna = Context::trusted("hanna", "dbr");
    let resolved = f.uc.resolve_for_query(&hanna, &f.ms, &[name], false).unwrap();
    assert!(resolved[0].fgac.column_masks.is_empty());
}

#[test]
fn abac_restriction_denies_unless_group() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.secret", table_schema()).unwrap())
        .unwrap();
    let name = FullName::parse("main.sales.secret").unwrap();
    f.uc.set_tag(&ctx, &f.ms, &name, "relation", "classification", "secret").unwrap();
    f.uc
        .create_abac_policy(
            &ctx,
            &f.ms,
            &FullName::parse("main").unwrap(),
            "catalog",
            AbacPolicy {
                name: "secret-data".into(),
                tag_key: "classification".into(),
                tag_value: Some("secret".into()),
                effect: AbacEffect::RestrictAccess { allowed_groups: vec!["cleared".into()] },
            },
        )
        .unwrap();
    f.uc.grant_read_path(&ctx, &f.ms, "main.sales.secret", "alice").unwrap();
    let alice = Context::trusted("alice", "dbr");
    assert!(matches!(
        f.uc.resolve_for_query(&alice, &f.ms, std::slice::from_ref(&name), false),
        Err(UcError::PermissionDenied(_))
    ));
    f.uc.upsert_principal("alice", &["cleared"]).unwrap();
    assert!(f.uc.resolve_for_query(&alice, &f.ms, &[name], false).is_ok());
}

#[test]
fn view_based_access_control() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    f.uc
        .create_view(
            &ctx,
            &f.ms,
            &FullName::parse("main.sales.orders_summary").unwrap(),
            "SELECT id FROM main.sales.orders",
            Schema::new(vec![Field::new("id", DataType::Int)]),
            &[FullName::parse("main.sales.orders").unwrap()],
        )
        .unwrap();
    // alice gets SELECT on the VIEW only
    f.uc.grant_read_path(&ctx, &f.ms, "main.sales.orders_summary", "alice").unwrap();
    let alice = Context::trusted("alice", "dbr");
    // direct table access denied
    assert!(f
        .uc
        .resolve_for_query(&alice, &f.ms, &[FullName::parse("main.sales.orders").unwrap()], false)
        .is_err());
    // view access resolves the base table transitively with credentials
    let resolved = f
        .uc
        .resolve_for_query(&alice, &f.ms, &[FullName::parse("main.sales.orders_summary").unwrap()], true)
        .unwrap();
    assert_eq!(resolved[0].dependencies.len(), 1);
    let base = &resolved[0].dependencies[0];
    assert_eq!(base.entity.name, "orders");
    assert!(base.read_credential.is_some(), "engine gets base-table creds via the view");
}

#[test]
fn one_asset_per_path_enforced_via_api() {
    let f = fixture();
    let ctx = admin();
    let root = f.store.create_bucket("ext");
    f.uc.create_storage_credential(&ctx, &f.ms, "ext_cred", &root).unwrap();
    f.uc.create_external_location(&ctx, &f.ms, "ext_loc", "s3://ext/data", "ext_cred").unwrap();
    f.uc
        .create_table(
            &ctx,
            &f.ms,
            TableSpec::external("main.sales.t1", table_schema(), "s3://ext/data/t1", TableFormat::Parquet).unwrap(),
        )
        .unwrap();
    // overlapping child path
    let err = f
        .uc
        .create_table(
            &ctx,
            &f.ms,
            TableSpec::external("main.sales.t2", table_schema(), "s3://ext/data/t1/sub", TableFormat::Parquet).unwrap(),
        )
        .unwrap_err();
    assert!(matches!(err, UcError::PathConflict { .. }));
    // overlapping parent path
    let err = f
        .uc
        .create_table(
            &ctx,
            &f.ms,
            TableSpec::external("main.sales.t3", table_schema(), "s3://ext/data", TableFormat::Parquet).unwrap(),
        )
        .unwrap_err();
    assert!(matches!(err, UcError::PathConflict { .. }));
}

#[test]
fn external_table_requires_external_location() {
    let f = fixture();
    let ctx = admin();
    // Admins may register external tables anywhere (they pass the
    // location check); ordinary users need a covering external location.
    f.uc
        .create_table(
            &ctx,
            &f.ms,
            TableSpec::external("main.sales.t1", table_schema(), "s3://nowhere/t1", TableFormat::Parquet).unwrap(),
        )
        .unwrap();
    f.uc.grant(&ctx, &f.ms, &FullName::parse("main").unwrap(), "catalog", "carol", Privilege::UseCatalog).unwrap();
    f.uc.grant(&ctx, &f.ms, &FullName::parse("main.sales").unwrap(), "schema", "carol", Privilege::UseSchema).unwrap();
    f.uc.grant(&ctx, &f.ms, &FullName::parse("main.sales").unwrap(), "schema", "carol", Privilege::CreateTable).unwrap();
    let carol = Context::user("carol");
    let err2 = f
        .uc
        .create_table(
            &ctx2_or(&carol),
            &f.ms,
            TableSpec::external("main.sales.t2", table_schema(), "s3://nowhere/t2", TableFormat::Parquet).unwrap(),
        )
        .unwrap_err();
    assert!(matches!(err2, UcError::PermissionDenied(_)));
}

fn ctx2_or(c: &Context) -> Context {
    c.clone()
}

#[test]
fn drop_cascades_and_purge_reclaims_storage() {
    let f = fixture();
    let ctx = admin();
    let t = f
        .uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    // put some fake data at the managed location (as the engine would)
    let path = StoragePath::parse(t.storage_path.as_ref().unwrap()).unwrap();
    let tok = f
        .uc
        .temp_credentials(&ctx, &f.ms, &FullName::parse("main.sales.orders").unwrap(), "relation", AccessLevel::ReadWrite)
        .unwrap();
    f.store
        .put(&Credential::Temp(tok), &path.child("part-0.json"), Bytes::from_static(b"data"))
        .unwrap();

    // dropping the catalog cascades: catalog + schema + table
    let dropped = f
        .uc
        .drop_securable(&ctx, &f.ms, &FullName::parse("main").unwrap(), "catalog")
        .unwrap();
    assert_eq!(dropped, 3);
    assert!(matches!(
        f.uc.get_table(&ctx, &f.ms, "main.sales.orders"),
        Err(UcError::NotFound(_))
    ));
    // the name is immediately reusable
    f.uc.create_catalog(&ctx, &f.ms, "main").unwrap();

    // GC removes rows and managed storage
    let (purged, objects) = f.uc.purge_soft_deleted(&f.ms).unwrap();
    assert_eq!(purged, 3);
    assert_eq!(objects, 1);
}

#[test]
fn model_registry_lifecycle() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_registered_model(&ctx, &f.ms, &FullName::parse("main.sales.churn").unwrap())
        .unwrap();
    let (v1, n1) = f
        .uc
        .create_model_version(&ctx, &f.ms, &FullName::parse("main.sales.churn").unwrap())
        .unwrap();
    let (_v2, n2) = f
        .uc
        .create_model_version(&ctx, &f.ms, &FullName::parse("main.sales.churn").unwrap())
        .unwrap();
    assert_eq!((n1, n2), (1, 2));
    assert!(v1.storage_path.as_deref().unwrap().ends_with("/v1"));

    // artifact flow: resolve with EXECUTE + vended creds
    f.uc.grant(&ctx, &f.ms, &FullName::parse("main").unwrap(), "catalog", "mle", Privilege::UseCatalog).unwrap();
    f.uc.grant(&ctx, &f.ms, &FullName::parse("main.sales").unwrap(), "schema", "mle", Privilege::UseSchema).unwrap();
    f.uc.grant(&ctx, &f.ms, &FullName::parse("main.sales.churn").unwrap(), "model", "mle", Privilege::Execute).unwrap();
    let mle = Context::user("mle");
    let resolved = f
        .uc
        .resolve_model_version(&mle, &f.ms, &FullName::parse("main.sales.churn").unwrap(), 1)
        .unwrap();
    let tok = resolved.read_credential.unwrap();
    assert!(tok.scope.to_string().ends_with("/v1"));
}

#[test]
fn catalog_owned_commits_single_and_multi() {
    let f = fixture();
    let ctx = admin();
    let t1 = f
        .uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.t1", table_schema()).unwrap())
        .unwrap();
    let t2 = f
        .uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.t2", table_schema()).unwrap())
        .unwrap();

    f.uc.commit_table(&ctx, &f.ms, &t1.id, 0, Bytes::from_static(b"v0")).unwrap();
    assert_eq!(f.uc.latest_table_version(&ctx, &f.ms, &t1.id).unwrap(), 0);
    // stale commit rejected
    assert!(matches!(
        f.uc.commit_table(&ctx, &f.ms, &t1.id, 0, Bytes::from_static(b"dup")),
        Err(UcError::CommitConflict { .. })
    ));
    assert_eq!(
        f.uc.read_table_commit(&ctx, &f.ms, &t1.id, 0).unwrap().unwrap(),
        Bytes::from_static(b"v0")
    );

    // multi-table: all-or-nothing
    let bad = vec![
        TableCommit { table_id: t1.id.clone(), version: 1, payload: Bytes::from_static(b"a") },
        TableCommit { table_id: t2.id.clone(), version: 5, payload: Bytes::from_static(b"b") }, // wrong
    ];
    assert!(f.uc.commit_tables_atomically(&ctx, &f.ms, bad).is_err());
    assert_eq!(f.uc.latest_table_version(&ctx, &f.ms, &t1.id).unwrap(), 0, "t1 unchanged");

    let good = vec![
        TableCommit { table_id: t1.id.clone(), version: 1, payload: Bytes::from_static(b"a") },
        TableCommit { table_id: t2.id.clone(), version: 0, payload: Bytes::from_static(b"b") },
    ];
    f.uc.commit_tables_atomically(&ctx, &f.ms, good).unwrap();
    assert_eq!(f.uc.latest_table_version(&ctx, &f.ms, &t1.id).unwrap(), 1);
    assert_eq!(f.uc.latest_table_version(&ctx, &f.ms, &t2.id).unwrap(), 0);
}

#[test]
fn two_nodes_share_one_database_coherently() {
    let db = Db::in_memory();
    let store = ObjectStore::in_memory();
    let node_a = UnityCatalog::new(db.clone(), store.clone(), UcConfig::default(), "node-a");
    let node_b = UnityCatalog::new(db, store, UcConfig::default(), "node-b");

    let ms = node_a.create_metastore(ADMIN, "prod", "us-east-1").unwrap();
    let ctx = admin();
    node_a.create_catalog(&ctx, &ms, "main").unwrap();

    // node B sees the catalog (reads through its own cold cache)
    let cats = node_b.list_catalogs(&ctx, &ms).unwrap();
    assert_eq!(cats.len(), 1);

    // node B writes; node A must observe it despite its warm cache
    node_b.create_schema(&ctx, &ms, "main", "from_b").unwrap();
    let kids = node_a
        .list_children(&ctx, &ms, &FullName::parse("main").unwrap(), None)
        .unwrap();
    assert_eq!(kids.len(), 1);
    assert_eq!(kids[0].name, "from_b");

    // interleaved comment updates from both nodes never conflict (each
    // write revalidates against the database)
    for i in 0..10 {
        let node = if i % 2 == 0 { &node_a } else { &node_b };
        node.update_comment(&ctx, &ms, &FullName::parse("main").unwrap(), "catalog", &format!("v{i}"))
            .unwrap();
    }
    // the last writer (node B) serves the latest value from its cache
    let b_view = node_b.get_securable(&ctx, &ms, &FullName::parse("main").unwrap(), "catalog").unwrap();
    assert_eq!(b_view.comment, Some("v9".into()));
    // node A's pure cache hit may serve its own last-known snapshot (v8);
    // an explicit reconcile bounds the staleness
    let a_stale = node_a.get_securable(&ctx, &ms, &FullName::parse("main").unwrap(), "catalog").unwrap();
    assert!(a_stale.comment == Some("v8".into()) || a_stale.comment == Some("v9".into()));
    node_a.reconcile_metastore(&ms);
    let a_view = node_a.get_securable(&ctx, &ms, &FullName::parse("main").unwrap(), "catalog").unwrap();
    assert_eq!(a_view.comment, Some("v9".into()));
}

#[test]
fn cache_serves_repeated_reads_without_db() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    // warm
    f.uc.get_table(&ctx, &f.ms, "main.sales.orders").unwrap();
    let reads_before = f.uc.db().stats().reads();
    let hits_before = f.uc.cache_stats().hits.load(std::sync::atomic::Ordering::Relaxed);
    for _ in 0..50 {
        f.uc.get_table(&ctx, &f.ms, "main.sales.orders").unwrap();
    }
    let reads_after = f.uc.db().stats().reads();
    let hits_after = f.uc.cache_stats().hits.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(reads_after, reads_before, "hot reads must not touch the DB");
    assert!(hits_after >= hits_before + 150, "expected cache hits on chain lookups");
}

#[test]
fn sharing_end_to_end_with_iceberg() {
    let f = fixture();
    let ctx = admin();
    let t = f
        .uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    // engine writes delta data using vended rw creds
    let rw = f
        .uc
        .temp_credentials(&ctx, &f.ms, &FullName::parse("main.sales.orders").unwrap(), "relation", AccessLevel::ReadWrite)
        .unwrap();
    let path = StoragePath::parse(t.storage_path.as_ref().unwrap()).unwrap();
    let table = uc_delta::DeltaTable::create(
        f.store.clone(),
        path,
        &Credential::Temp(rw.clone()),
        t.id.as_str(),
        table_schema(),
    )
    .unwrap();
    table
        .append(
            &Credential::Temp(rw),
            &[vec![Value::Int(1), Value::Str("a".into()), Value::Float(10.0)]],
        )
        .unwrap();

    f.uc.create_share(&ctx, &f.ms, "partner_share").unwrap();
    f.uc
        .add_table_to_share(&ctx, &f.ms, "partner_share", &FullName::parse("main.sales.orders").unwrap())
        .unwrap();
    f.uc
        .grant(&ctx, &f.ms, &FullName::parse("partner_share").unwrap(), "share", "recipient", Privilege::Select)
        .unwrap();

    let recipient = Context::user("recipient");
    // recipient has NO table grants, only the share
    let tables = f.uc.list_share_tables(&recipient, &f.ms, "partner_share").unwrap();
    assert_eq!(tables.len(), 1);
    assert_eq!(tables[0].alias, "sales.orders");

    let resp = f
        .uc
        .query_share_table(&recipient, &f.ms, "partner_share", "sales.orders")
        .unwrap();
    assert_eq!(resp.files.len(), 1);
    assert_eq!(resp.version, 1);
    // recipient can fetch the shared file with the vended token
    let file_path = StoragePath::parse(&resp.files[0].url).unwrap();
    assert!(f.store.get(&Credential::Temp(resp.credential), &file_path).is_ok());

    // and as Iceberg via UniForm
    let ice = f
        .uc
        .query_share_table_as_iceberg(&recipient, &f.ms, "partner_share", "sales.orders")
        .unwrap();
    assert_eq!(ice.current_snapshot_id, 1);
    assert_eq!(ice.snapshots[0].manifest.entries.len(), 1);

    // an unrelated user cannot query the share
    let outsider = Context::user("outsider");
    assert!(f
        .uc
        .query_share_table(&outsider, &f.ms, "partner_share", "sales.orders")
        .is_err());
}

#[test]
fn lineage_tracking_and_filtering() {
    let f = fixture();
    let ctx = admin();
    for t in ["raw", "clean", "gold"] {
        f.uc
            .create_table(&ctx, &f.ms, TableSpec::managed(&format!("main.sales.{t}"), table_schema()).unwrap())
            .unwrap();
    }
    let n = |s: &str| FullName::parse(s).unwrap();
    f.uc.add_lineage(&ctx, &f.ms, &n("main.sales.raw"), &n("main.sales.clean"), Some("job-1")).unwrap();
    f.uc.add_lineage(&ctx, &f.ms, &n("main.sales.clean"), &n("main.sales.gold"), Some("job-2")).unwrap();

    let down = f
        .uc
        .lineage(&ctx, &f.ms, &n("main.sales.raw"), uc_catalog::lineage::LineageDirection::Downstream, 10)
        .unwrap();
    assert_eq!(down.len(), 2);
    let up = f
        .uc
        .lineage(&ctx, &f.ms, &n("main.sales.gold"), uc_catalog::lineage::LineageDirection::Upstream, 10)
        .unwrap();
    assert_eq!(up.len(), 2);
    // pre-deletion check: gold has no downstream dependencies
    let gold_down = f
        .uc
        .lineage(&ctx, &f.ms, &n("main.sales.gold"), uc_catalog::lineage::LineageDirection::Downstream, 10)
        .unwrap();
    assert!(gold_down.is_empty());
}

#[test]
fn change_events_flow_for_all_mutations() {
    let f = fixture();
    let ctx = admin();
    let (_, offset) = f.uc.events_since(0);
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    f.uc.grant_on_table(&ctx, &f.ms, "main.sales.orders", "alice", Privilege::Select).unwrap();
    f.uc.set_tag(&ctx, &f.ms, &FullName::parse("main.sales.orders").unwrap(), "relation", "domain", "sales").unwrap();
    f.uc
        .drop_securable(&ctx, &f.ms, &FullName::parse("main.sales.orders").unwrap(), "relation")
        .unwrap();
    let (events, _) = f.uc.events_since(offset);
    use uc_catalog::events::ChangeOp;
    let ops: Vec<ChangeOp> = events.iter().map(|e| e.op).collect();
    assert!(ops.contains(&ChangeOp::Create));
    assert!(ops.contains(&ChangeOp::GrantChange));
    assert!(ops.contains(&ChangeOp::TagChange));
    assert!(ops.contains(&ChangeOp::Delete));
}

#[test]
fn info_schema_query_with_pushdown_and_visibility() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.lines", table_schema()).unwrap())
        .unwrap();
    f.uc.set_tag(&ctx, &f.ms, &FullName::parse("main.sales.orders").unwrap(), "relation", "pii", "yes").unwrap();

    let tagged = f
        .uc
        .query_entities(&ctx, &f.ms, &[MetaFilter::KindIs(SecurableKind::Table), MetaFilter::HasTag("pii".into())], 100)
        .unwrap();
    assert_eq!(tagged.len(), 1);
    assert_eq!(tagged[0].name, "orders");

    // an unprivileged user sees nothing
    let nobody = Context::user("nobody");
    let visible = f
        .uc
        .query_entities(&nobody, &f.ms, &[MetaFilter::KindIs(SecurableKind::Table)], 100)
        .unwrap();
    assert!(visible.is_empty());
}

#[test]
fn audit_log_records_allows_and_denies() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    let mallory = Context::user("mallory");
    let _ = f.uc.temp_credentials(
        &mallory,
        &f.ms,
        &FullName::parse("main.sales.orders").unwrap(),
        "relation",
        AccessLevel::Read,
    );
    let denies = f
        .uc
        .audit_log()
        .query(|r| r.principal == "mallory" && r.decision == uc_catalog::audit::AuditDecision::Deny);
    assert!(!denies.is_empty());
    let allows = f
        .uc
        .audit_log()
        .query(|r| r.principal == ADMIN && r.action == "createTable");
    assert_eq!(allows.len(), 1);
}

#[test]
fn admin_separation_admin_cannot_read_data() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.orders", table_schema()).unwrap())
        .unwrap();
    // a second admin who owns nothing
    f.uc.add_metastore_admin(&ctx, &f.ms, "auditor").unwrap();
    let auditor = Context::trusted("auditor", "dbr");
    // can see & manage
    assert!(f.uc.get_table(&auditor, &f.ms, "main.sales.orders").is_ok());
    assert!(f.uc.grant_on_table(&auditor, &f.ms, "main.sales.orders", "x", Privilege::Select).is_ok());
    // but cannot read data (no SELECT)
    assert!(matches!(
        f.uc.resolve_for_query(&auditor, &f.ms, &[FullName::parse("main.sales.orders").unwrap()], false),
        Err(UcError::PermissionDenied(_))
    ));
}

#[test]
fn metastores_are_isolated_namespaces() {
    let db = Db::in_memory();
    let store = ObjectStore::in_memory();
    let uc = UnityCatalog::new(db, store.clone(), UcConfig::default(), "n0");
    let ms1 = uc.create_metastore("admin1", "prod", "us").unwrap();
    let ms2 = uc.create_metastore("admin2", "dev", "eu").unwrap();
    let ctx1 = Context::user("admin1");
    let ctx2 = Context::user("admin2");
    uc.create_catalog(&ctx1, &ms1, "main").unwrap();
    // the same catalog name is free in the other metastore
    uc.create_catalog(&ctx2, &ms2, "main").unwrap();
    // ms2's admin sees nothing in ms1 (not an admin there, no grants)
    assert!(uc.list_catalogs(&ctx2, &ms1).unwrap().is_empty());
    // objects in one metastore are invisible through the other
    assert!(uc
        .get_securable(&ctx1, &ms2, &FullName::parse("main").unwrap(), "catalog")
        .is_err());
    // and storage paths may coincide across metastores (separate indexes)
    let r1 = store.create_bucket("shared");
    uc.create_storage_credential(&ctx1, &ms1, "c", &r1).unwrap();
    let r2 = store.create_bucket("shared");
    uc.create_storage_credential(&ctx2, &ms2, "c", &r2).unwrap();
}

#[test]
fn view_nesting_depth_is_bounded() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.base", table_schema()).unwrap())
        .unwrap();
    let mut prev = "main.sales.base".to_string();
    for i in 0..14 {
        let name = format!("main.sales.v{i}");
        f.uc
            .create_view(
                &ctx,
                &f.ms,
                &FullName::parse(&name).unwrap(),
                "SELECT …",
                table_schema(),
                &[FullName::parse(&prev).unwrap()],
            )
            .unwrap();
        prev = name;
    }
    let err = f
        .uc
        .resolve_for_query(&Context::trusted(ADMIN, "dbr"), &f.ms, &[FullName::parse(&prev).unwrap()], false)
        .unwrap_err();
    assert!(matches!(err, UcError::InvalidArgument(_)), "{err}");
}

#[test]
fn disabled_cache_mode_is_functionally_identical() {
    let db = Db::in_memory();
    let store = ObjectStore::in_memory();
    let cfg = UcConfig { cache: uc_catalog::cache::CacheConfig::disabled(), ..Default::default() };
    let uc = UnityCatalog::new(db, store.clone(), cfg, "n0");
    let ms = uc.create_metastore(ADMIN, "prod", "us").unwrap();
    let ctx = admin();
    let root = store.create_bucket("lake");
    uc.create_storage_credential(&ctx, &ms, "cred", &root).unwrap();
    uc.set_metastore_root(&ctx, &ms, "s3://lake/root").unwrap();
    uc.create_catalog(&ctx, &ms, "main").unwrap();
    uc.create_schema(&ctx, &ms, "main", "s").unwrap();
    uc.create_table(&ctx, &ms, TableSpec::managed("main.s.t", table_schema()).unwrap()).unwrap();
    uc.grant_read_path(&ctx, &ms, "main.s.t", "alice").unwrap();
    let alice = Context::trusted("alice", "dbr");
    assert!(uc.resolve_for_query(&alice, &ms, &[FullName::parse("main.s.t").unwrap()], true).is_ok());
    assert_eq!(
        uc.cache_stats().hits.load(std::sync::atomic::Ordering::Relaxed),
        0,
        "disabled cache must never hit"
    );
    uc.drop_securable(&ctx, &ms, &FullName::parse("main.s.t").unwrap(), "relation").unwrap();
    assert!(uc.get_table(&ctx, &ms, "main.s.t").is_err());
}

#[test]
fn audit_log_respects_capacity() {
    let db = Db::in_memory();
    let store = ObjectStore::in_memory();
    let cfg = UcConfig { audit_capacity: 16, ..Default::default() };
    let uc = UnityCatalog::new(db, store, cfg, "n0");
    let ms = uc.create_metastore(ADMIN, "prod", "us").unwrap();
    let ctx = admin();
    for i in 0..40 {
        uc.create_catalog(&ctx, &ms, &format!("c{i}")).unwrap();
    }
    assert_eq!(uc.audit_log().len(), 16, "bounded retention");
    assert!(uc.audit_log().total_recorded() >= 40);
    // newest records survive
    let recent = uc.audit_log().recent(1);
    assert!(recent[0].detail.contains("c39"));
}

#[test]
fn querying_share_after_table_drop_fails_cleanly() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.t", table_schema()).unwrap())
        .unwrap();
    f.uc.create_share(&ctx, &f.ms, "sh").unwrap();
    f.uc
        .add_table_to_share(&ctx, &f.ms, "sh", &FullName::parse("main.sales.t").unwrap())
        .unwrap();
    f.uc
        .grant(&ctx, &f.ms, &FullName::parse("sh").unwrap(), "share", "r", Privilege::Select)
        .unwrap();
    f.uc
        .drop_securable(&ctx, &f.ms, &FullName::parse("main.sales.t").unwrap(), "relation")
        .unwrap();
    let r = Context::user("r");
    // members listing still shows the alias, but querying reports the drop
    let err = f.uc.query_share_table(&r, &f.ms, "sh", "sales.t").unwrap_err();
    assert!(matches!(err, UcError::NotFound(_)), "{err}");
}

#[test]
fn principal_groups_refresh_within_ttl_window() {
    let f = fixture();
    let ctx = admin();
    f.uc
        .create_table(&ctx, &f.ms, TableSpec::managed("main.sales.t", table_schema()).unwrap())
        .unwrap();
    // group-based grant
    f.uc.grant(&ctx, &f.ms, &FullName::parse("main").unwrap(), "catalog", "team", Privilege::UseCatalog).unwrap();
    f.uc.grant(&ctx, &f.ms, &FullName::parse("main.sales").unwrap(), "schema", "team", Privilege::UseSchema).unwrap();
    f.uc.grant_on_table(&ctx, &f.ms, "main.sales.t", "team", Privilege::Select).unwrap();
    let bob = Context::trusted("bob", "dbr");
    assert!(f.uc.resolve_for_query(&bob, &f.ms, &[FullName::parse("main.sales.t").unwrap()], false).is_err());
    // joining the group takes effect immediately on this node (the
    // upsert clears the local TTL cache)
    f.uc.upsert_principal("bob", &["team"]).unwrap();
    assert!(f.uc.resolve_for_query(&bob, &f.ms, &[FullName::parse("main.sales.t").unwrap()], false).is_ok());
}
