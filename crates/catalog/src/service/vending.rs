//! Temporary credential vending (§4.3.1).
//!
//! Clients never hold cloud credentials. They request access to an asset —
//! by name or by raw storage path — and the catalog resolves the asset
//! (one-asset-per-path makes path resolution unambiguous), authorizes the
//! caller for the requested access level, and mints a token down-scoped to
//! the asset's registered path. Unexpired tokens are cached and reused.

use std::sync::Arc;

use uc_cloudstore::faults::points;
use uc_cloudstore::{AccessLevel, StoragePath, TempCredential};

use crate::audit::AuditDecision;
use crate::error::{UcError, UcResult};
use crate::ids::Uid;
use crate::model::entity::Entity;
use crate::model::manifest::manifest;
use crate::service::{Context, UnityCatalog};
use crate::types::FullName;

impl UnityCatalog {
    /// Vend a temporary credential for an asset addressed by name.
    pub fn temp_credentials(
        &self,
        ctx: &Context,
        ms: &Uid,
        asset: &FullName,
        leaf_group: &str,
        access: AccessLevel,
    ) -> UcResult<TempCredential> {
        let _api = self.api_enter_t("temp_credentials", ctx, ms);
        let chain = self.lookup_chain(ms, asset, leaf_group)?;
        self.vend_for_entity(ctx, ms, chain[0].clone(), access, "generateTemporaryCredentials", &asset.to_string())
    }

    /// Vend a temporary credential for a raw storage path: resolve the
    /// covering asset, enforce *its* policies, and scope the token to the
    /// asset's registered path — uniform access control regardless of
    /// whether the table was addressed by name or by path.
    pub fn temp_credentials_for_path(
        &self,
        ctx: &Context,
        ms: &Uid,
        path: &str,
        access: AccessLevel,
    ) -> UcResult<TempCredential> {
        let _api = self.api_enter_t("temp_credentials_for_path", ctx, ms);
        let parsed = StoragePath::parse(path).map_err(|e| UcError::InvalidArgument(e.to_string()))?;
        let Some((entity, _registered)) = self.entity_by_path(ms, &parsed)? else {
            self.record_audit(&ctx.principal, "generateTemporaryPathCredentials", None, AuditDecision::Deny, path);
            return Err(UcError::NotFound(format!("no asset governs path {path}")));
        };
        self.vend_for_entity(ctx, ms, entity, access, "generateTemporaryPathCredentials", path)
    }

    /// Shared vending flow once the asset is known.
    pub(crate) fn vend_for_entity(
        &self,
        ctx: &Context,
        ms: &Uid,
        entity: Arc<Entity>,
        access: AccessLevel,
        action: &str,
        detail: &str,
    ) -> UcResult<TempCredential> {
        let m = manifest(entity.kind);
        let needed = match access {
            AccessLevel::Read => m.read_data_privilege,
            AccessLevel::ReadWrite => m.write_data_privilege,
        }
        .ok_or_else(|| {
            UcError::UnsupportedOperation(format!(
                "{} assets do not support {access:?} data access",
                entity.kind
            ))
        })?;
        let full = self.chain_from_entity(ms, entity.clone())?;
        self.enforce_workspace_binding(ctx, &full)?;
        let who = self.authz_context(ms, &ctx.principal)?;
        let authz = Self::authz_of(&full);
        let allowed = match access {
            AccessLevel::Read => authz.can_read_data(&who, needed),
            AccessLevel::ReadWrite => authz.can_write_data(&who, needed),
        };
        if !allowed {
            self.record_audit(&ctx.principal, action, Some(&entity.id), AuditDecision::Deny, detail);
            return Err(UcError::PermissionDenied(format!(
                "{needed} (plus USE on containers) required for {access:?} access"
            )));
        }
        // Tables with FGAC policies must not hand raw storage access to
        // untrusted engines — the policy would be unenforceable.
        if entity.has_fgac() && !ctx.is_trusted_engine() {
            self.record_audit(&ctx.principal, action, Some(&entity.id), AuditDecision::Deny, "fgac requires trusted engine");
            return Err(UcError::PermissionDenied(
                "asset has fine-grained policies; use a trusted engine or the data filtering service".into(),
            ));
        }
        let token = self.mint_for_entity(ms, &entity, access)?;
        self.record_audit(&ctx.principal, action, Some(&entity.id), AuditDecision::Allow, detail);
        Ok(token)
    }

    /// Re-vend a *read* credential for an asset a client already holds an
    /// (expired or expiring) token for. This is the mid-scan recovery path:
    /// an engine whose token ages out during a long scan comes back here
    /// for a fresh one. Full authorization runs again — revocations since
    /// the original vend are honored — and each renewal is audited under
    /// `renewTemporaryCredentials` with the originating trace ID, exactly
    /// like an initial vend.
    pub fn renew_read_credential(
        &self,
        ctx: &Context,
        ms: &Uid,
        id: &Uid,
    ) -> UcResult<TempCredential> {
        let _api = self.api_enter_t("renew_read_credential", ctx, ms);
        let entity = self
            .entity_by_id(ms, id)?
            .ok_or_else(|| UcError::NotFound(format!("asset {id}")))?;
        self.vend_for_entity(ctx, ms, entity, AccessLevel::Read, "renewTemporaryCredentials", "renew")
    }

    /// Mint (or reuse from the TTL cache) a token scoped to the entity's
    /// storage path. Catalog-internal: no authorization.
    pub(crate) fn mint_for_entity(
        &self,
        ms: &Uid,
        entity: &Entity,
        access: AccessLevel,
    ) -> UcResult<TempCredential> {
        let path_str = entity.storage_path.as_ref().ok_or_else(|| {
            UcError::UnsupportedOperation(format!("{} has no storage", entity.name))
        })?;
        if self.config.faults.should_inject(points::CATALOG_VEND) {
            return Err(UcError::Storage(
                "injected fault: credential vending unavailable".into(),
            ));
        }
        let scope = StoragePath::parse(path_str).map_err(|e| UcError::Storage(e.to_string()))?;
        let cache_key = (entity.id.clone(), access);
        if self.config.cred_cache_enabled {
            if let Some(tok) = self.cred_cache.get(&cache_key) {
                // Reuse only while a useful fraction of the TTL remains.
                if tok.remaining_ms(self.now_ms()) > self.config.cred_ttl_ms / 4 {
                    return Ok(tok);
                }
            }
        }
        let root = self.root_for_bucket(ms, scope.bucket())?;
        // Model the cloud provider STS round trip (the cost the token
        // cache amortizes across queries and executors).
        if !self.config.sts_mint_cost.is_zero() {
            uc_cloudstore::LatencyModel::uniform(self.config.sts_mint_cost)
                .apply(uc_cloudstore::OpClass::Control);
        }
        let token = self
            .store
            .sts()
            .mint(&root, &scope, access, self.config.cred_ttl_ms)?;
        // Count actual STS mints (cache hits returned above) against the
        // requesting tenant — the per-tenant view of who pays for vending.
        if let Some(label) = uc_obs::current_tenant() {
            self.config
                .obs
                .counter_family("catalog.sts.mint.count.by_tenant")
                .inc(&label);
        }
        if self.config.cred_cache_enabled {
            self.cred_cache
                .put_with_expiry(cache_key, token.clone(), token.expires_at_ms);
        }
        Ok(token)
    }
}
