//! TPC-H and TPC-DS *metadata workloads* (Fig 10a).
//!
//! The Fig 10(a) experiment measures end-to-end query latency with the
//! catalog on the critical path; what matters for the catalog comparison
//! is the metadata traffic each query generates — which tables it
//! references and therefore which lookups, authorization checks, and
//! credential requests the engine issues. This module provides the
//! benchmark schemas and per-query table-reference sets.
//!
//! The TPC-H reference sets are the real ones (22 queries over 8 tables).
//! For TPC-DS, the 99 reference sets are synthesized deterministically
//! (fact table + date_dim + 1–5 dimensions), preserving the workload's
//! metadata shape — many queries, wide dimension fan-out — without
//! transcribing 99 query texts (documented substitution).

use uc_delta::value::{DataType, Field, Schema};

use crate::randx::rng_for;
use rand::Rng;

/// A benchmark table: name plus a simplified column schema.
#[derive(Debug, Clone)]
pub struct BenchTable {
    pub name: &'static str,
    pub schema: Schema,
}

/// One benchmark query's metadata footprint.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    pub id: String,
    pub tables: Vec<&'static str>,
}

fn cols(names: &[(&str, DataType)]) -> Schema {
    Schema::new(names.iter().map(|(n, t)| Field::new(n, *t)).collect())
}

/// The 8 TPC-H tables (abbreviated column lists).
pub fn tpch_tables() -> Vec<BenchTable> {
    use DataType::*;
    vec![
        BenchTable { name: "lineitem", schema: cols(&[("l_orderkey", Int), ("l_partkey", Int), ("l_suppkey", Int), ("l_quantity", Float), ("l_extendedprice", Float), ("l_discount", Float), ("l_shipdate", Str)]) },
        BenchTable { name: "orders", schema: cols(&[("o_orderkey", Int), ("o_custkey", Int), ("o_orderstatus", Str), ("o_totalprice", Float), ("o_orderdate", Str)]) },
        BenchTable { name: "customer", schema: cols(&[("c_custkey", Int), ("c_name", Str), ("c_nationkey", Int), ("c_acctbal", Float), ("c_mktsegment", Str)]) },
        BenchTable { name: "part", schema: cols(&[("p_partkey", Int), ("p_name", Str), ("p_brand", Str), ("p_type", Str), ("p_size", Int)]) },
        BenchTable { name: "supplier", schema: cols(&[("s_suppkey", Int), ("s_name", Str), ("s_nationkey", Int), ("s_acctbal", Float)]) },
        BenchTable { name: "partsupp", schema: cols(&[("ps_partkey", Int), ("ps_suppkey", Int), ("ps_availqty", Int), ("ps_supplycost", Float)]) },
        BenchTable { name: "nation", schema: cols(&[("n_nationkey", Int), ("n_name", Str), ("n_regionkey", Int)]) },
        BenchTable { name: "region", schema: cols(&[("r_regionkey", Int), ("r_name", Str)]) },
    ]
}

/// The real table-reference sets of TPC-H Q1–Q22.
pub fn tpch_queries() -> Vec<BenchQuery> {
    let refs: [(&str, &[&str]); 22] = [
        ("Q1", &["lineitem"]),
        ("Q2", &["part", "supplier", "partsupp", "nation", "region"]),
        ("Q3", &["customer", "orders", "lineitem"]),
        ("Q4", &["orders", "lineitem"]),
        ("Q5", &["customer", "orders", "lineitem", "supplier", "nation", "region"]),
        ("Q6", &["lineitem"]),
        ("Q7", &["supplier", "lineitem", "orders", "customer", "nation"]),
        ("Q8", &["part", "supplier", "lineitem", "orders", "customer", "nation", "region"]),
        ("Q9", &["part", "supplier", "lineitem", "partsupp", "orders", "nation"]),
        ("Q10", &["customer", "orders", "lineitem", "nation"]),
        ("Q11", &["partsupp", "supplier", "nation"]),
        ("Q12", &["orders", "lineitem"]),
        ("Q13", &["customer", "orders"]),
        ("Q14", &["lineitem", "part"]),
        ("Q15", &["supplier", "lineitem"]),
        ("Q16", &["partsupp", "part", "supplier"]),
        ("Q17", &["lineitem", "part"]),
        ("Q18", &["customer", "orders", "lineitem"]),
        ("Q19", &["lineitem", "part"]),
        ("Q20", &["supplier", "nation", "partsupp", "part", "lineitem"]),
        ("Q21", &["supplier", "lineitem", "orders", "nation"]),
        ("Q22", &["customer", "orders"]),
    ];
    refs.iter()
        .map(|(id, tables)| BenchQuery { id: id.to_string(), tables: tables.to_vec() })
        .collect()
}

const TPCDS_FACTS: [&str; 7] = [
    "store_sales", "store_returns", "catalog_sales", "catalog_returns", "web_sales",
    "web_returns", "inventory",
];

const TPCDS_DIMS: [&str; 17] = [
    "store", "call_center", "catalog_page", "web_site", "web_page", "warehouse", "customer",
    "customer_address", "customer_demographics", "date_dim", "household_demographics", "item",
    "income_band", "promotion", "reason", "ship_mode", "time_dim",
];

/// The 24 TPC-DS tables (representative column lists).
pub fn tpcds_tables() -> Vec<BenchTable> {
    use DataType::*;
    let mut tables = Vec::new();
    for fact in TPCDS_FACTS {
        tables.push(BenchTable {
            name: fact,
            schema: cols(&[
                ("sk", Int),
                ("date_sk", Int),
                ("item_sk", Int),
                ("customer_sk", Int),
                ("quantity", Int),
                ("price", Float),
                ("net_paid", Float),
            ]),
        });
    }
    for dim in TPCDS_DIMS {
        tables.push(BenchTable {
            name: dim,
            schema: cols(&[("sk", Int), ("id", Str), ("name", Str), ("attr1", Str), ("attr2", Int)]),
        });
    }
    tables
}

/// 99 synthesized TPC-DS reference sets: one fact table, date_dim, and a
/// deterministic selection of further dimensions.
pub fn tpcds_queries() -> Vec<BenchQuery> {
    let mut rng = rng_for(2006, 600); // TPC-DS's publication year as seed
    (1..=99)
        .map(|q| {
            let fact = TPCDS_FACTS[(q - 1) % TPCDS_FACTS.len()];
            let mut tables = vec![fact, "date_dim"];
            let extra = 1 + rng.gen_range(0..5);
            for _ in 0..extra {
                let dim = TPCDS_DIMS[rng.gen_range(0..TPCDS_DIMS.len())];
                if !tables.contains(&dim) {
                    tables.push(dim);
                }
            }
            // Every query joins at least one dimension beyond date_dim;
            // if all random draws collided, take the next free one so the
            // shape invariant doesn't depend on the RNG stream.
            if tables.len() < 3 {
                if let Some(dim) = TPCDS_DIMS.iter().find(|d| !tables.contains(d)) {
                    tables.push(dim);
                }
            }
            // A minority of queries join two fact tables (e.g. sales +
            // returns), like the real workload.
            if q % 9 == 0 {
                let other = TPCDS_FACTS[q % TPCDS_FACTS.len()];
                if !tables.contains(&other) {
                    tables.push(other);
                }
            }
            BenchQuery { id: format!("q{q}"), tables }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn tpch_has_8_tables_22_queries() {
        let tables = tpch_tables();
        assert_eq!(tables.len(), 8);
        let queries = tpch_queries();
        assert_eq!(queries.len(), 22);
        // every referenced table exists
        let names: BTreeSet<&str> = tables.iter().map(|t| t.name).collect();
        for q in &queries {
            for t in &q.tables {
                assert!(names.contains(t), "{} references unknown {t}", q.id);
            }
            // no duplicate references within a query
            let set: BTreeSet<&&str> = q.tables.iter().collect();
            assert_eq!(set.len(), q.tables.len(), "{} has duplicates", q.id);
        }
    }

    #[test]
    fn tpch_reference_counts_are_correct() {
        let queries = tpch_queries();
        assert_eq!(queries[0].tables, vec!["lineitem"]); // Q1
        assert_eq!(queries[7].tables.len(), 7); // Q8 is the widest join
        let total_refs: usize = queries.iter().map(|q| q.tables.len()).sum();
        assert_eq!(total_refs, 72);
    }

    #[test]
    fn tpcds_has_24_tables_99_queries() {
        let tables = tpcds_tables();
        assert_eq!(tables.len(), 24);
        let queries = tpcds_queries();
        assert_eq!(queries.len(), 99);
        let names: BTreeSet<&str> = tables.iter().map(|t| t.name).collect();
        for q in &queries {
            assert!(q.tables.len() >= 3, "{} too narrow", q.id);
            assert!(q.tables.contains(&"date_dim"));
            for t in &q.tables {
                assert!(names.contains(t));
            }
        }
        // determinism
        let again = tpcds_queries();
        assert_eq!(queries.len(), again.len());
        assert_eq!(queries[41].tables, again[41].tables);
    }

    #[test]
    fn every_tpcds_fact_table_is_exercised() {
        let queries = tpcds_queries();
        for fact in TPCDS_FACTS {
            assert!(
                queries.iter().any(|q| q.tables.contains(&fact)),
                "fact {fact} never referenced"
            );
        }
    }
}
