//! A hand-written SQL dialect: lexer, expression parser, statements.
//!
//! The dialect covers what the paper's workloads need — DDL over the
//! catalog's asset types, grants, inserts, single-relation selects with
//! predicates, transactions, and table maintenance. Expressions reuse
//! [`uc_delta::expr::Expr`], so the same language serves WHERE clauses,
//! row filters, and column masks.

use uc_catalog::types::FullName;
use uc_delta::expr::{CmpOp, Expr};
use uc_delta::value::{DataType, Value};

use crate::error::{EngineError, EngineResult};

/// Projection list of a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    Star,
    Columns(Vec<String>),
    /// `COUNT(*)`.
    CountStar,
}

/// A single-relation SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    pub projection: Projection,
    pub from: FullName,
    pub predicate: Option<Expr>,
    /// ORDER BY column (descending when the flag is set).
    pub order_by: Option<(String, bool)>,
    pub limit: Option<usize>,
}

/// Kinds of object DDL can address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    Catalog,
    Schema,
    Table,
    View,
    Volume,
}

impl ObjectKind {
    /// The catalog namespace group for this kind.
    pub fn name_group(self) -> &'static str {
        match self {
            ObjectKind::Catalog => "catalog",
            ObjectKind::Schema => "schema",
            ObjectKind::Table | ObjectKind::View => "relation",
            ObjectKind::Volume => "volume",
        }
    }
}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateCatalog { name: String },
    CreateSchema { catalog: String, name: String },
    CreateTable {
        name: FullName,
        columns: Vec<(String, DataType, bool)>,
        location: Option<String>,
        format: Option<String>,
    },
    CreateView { name: FullName, query: SelectQuery, sql: String },
    CreateShallowClone { name: FullName, source: FullName },
    CreateVolume { name: FullName, location: Option<String> },
    Insert { table: FullName, rows: Vec<Vec<Value>> },
    Delete { table: FullName, predicate: Option<Expr> },
    Select(SelectQuery),
    Grant { privilege: String, kind: ObjectKind, on: FullName, to: String },
    Revoke { privilege: String, kind: ObjectKind, on: FullName, from: String },
    Drop { kind: ObjectKind, name: FullName },
    Begin,
    Commit,
    Rollback,
    Optimize { table: FullName },
    Vacuum { table: FullName },
    Describe { table: FullName },
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Num(String),
    Punct(String),
}

fn lex(input: &str) -> EngineResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            tokens.push(Token::Ident(bytes[start..i].iter().collect()));
        } else if c.is_ascii_digit() || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) {
            let start = i;
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                i += 1;
            }
            tokens.push(Token::Num(bytes[start..i].iter().collect()));
        } else if c == '\'' {
            i += 1;
            let start = i;
            while i < bytes.len() && bytes[i] != '\'' {
                i += 1;
            }
            if i == bytes.len() {
                return Err(EngineError::Parse("unterminated string literal".into()));
            }
            tokens.push(Token::Str(bytes[start..i].iter().collect()));
            i += 1;
        } else {
            // multi-char operators first
            let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
            if ["<=", ">=", "<>", "!="].contains(&two.as_str()) {
                tokens.push(Token::Punct(two));
                i += 2;
            } else if "(),.*=<>;".contains(c) {
                tokens.push(Token::Punct(c.to_string()));
                i += 1;
            } else {
                return Err(EngineError::Parse(format!("unexpected character {c:?}")));
            }
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    original: String,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> EngineResult<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| EngineError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
            || matches!(self.peek(), Some(Token::Punct(p)) if p == ";")
    }

    /// Consume a keyword (case-insensitive); error if absent.
    fn expect_kw(&mut self, kw: &str) -> EngineResult<()> {
        match self.next()? {
            Token::Ident(w) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(EngineError::Parse(format!("expected {kw}, found {other:?}"))),
        }
    }

    /// Consume a keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(w)) if w.eq_ignore_ascii_case(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Token::Punct(q)) if q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> EngineResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(EngineError::Parse(format!("expected {p:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> EngineResult<String> {
        match self.next()? {
            Token::Ident(w) => Ok(w),
            other => Err(EngineError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn qualified_name(&mut self) -> EngineResult<FullName> {
        let mut parts = vec![self.ident()?];
        while self.eat_punct(".") {
            parts.push(self.ident()?);
        }
        let joined = parts.join(".");
        FullName::parse(&joined).map_err(|e| EngineError::Parse(e.to_string()))
    }

    fn string(&mut self) -> EngineResult<String> {
        match self.next()? {
            Token::Str(s) => Ok(s),
            other => Err(EngineError::Parse(format!("expected string literal, found {other:?}"))),
        }
    }

    // --- expressions -------------------------------------------------

    fn expr(&mut self) -> EngineResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> EngineResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> EngineResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> EngineResult<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> EngineResult<Expr> {
        let lhs = self.primary()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            let e = Expr::IsNull(Box::new(lhs));
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        let op = match self.peek() {
            Some(Token::Punct(p)) => match p.as_str() {
                "=" => CmpOp::Eq,
                "<>" | "!=" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                _ => return Ok(lhs),
            },
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.primary()?;
        Ok(Expr::Cmp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn primary(&mut self) -> EngineResult<Expr> {
        match self.next()? {
            Token::Punct(p) if p == "(" => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Token::Num(n) => Ok(Expr::Literal(parse_number(&n)?)),
            Token::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            Token::Ident(w) if w.eq_ignore_ascii_case("TRUE") => Ok(Expr::Literal(Value::Bool(true))),
            Token::Ident(w) if w.eq_ignore_ascii_case("FALSE") => Ok(Expr::Literal(Value::Bool(false))),
            Token::Ident(w) if w.eq_ignore_ascii_case("NULL") => Ok(Expr::Literal(Value::Null)),
            Token::Ident(w) if w.eq_ignore_ascii_case("current_user") => {
                self.expect_punct("(")?;
                self.expect_punct(")")?;
                Ok(Expr::CurrentUser)
            }
            Token::Ident(w) if w.eq_ignore_ascii_case("is_account_group_member") => {
                self.expect_punct("(")?;
                let group = self.string()?;
                self.expect_punct(")")?;
                Ok(Expr::IsAccountGroupMember(group))
            }
            Token::Ident(col) => Ok(Expr::Column(col)),
            other => Err(EngineError::Parse(format!("unexpected token in expression: {other:?}"))),
        }
    }

    // --- statements ---------------------------------------------------

    fn select_query(&mut self) -> EngineResult<SelectQuery> {
        // SELECT already consumed
        let projection = if self.eat_punct("*") {
            Projection::Star
        } else if matches!(self.peek(), Some(Token::Ident(w)) if w.eq_ignore_ascii_case("COUNT")) {
            self.pos += 1;
            self.expect_punct("(")?;
            self.expect_punct("*")?;
            self.expect_punct(")")?;
            Projection::CountStar
        } else {
            let mut cols = vec![self.ident()?];
            while self.eat_punct(",") {
                cols.push(self.ident()?);
            }
            Projection::Columns(cols)
        };
        self.expect_kw("FROM")?;
        let from = self.qualified_name()?;
        let predicate = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let col = self.ident()?;
            let desc = if self.eat_kw("DESC") {
                true
            } else {
                self.eat_kw("ASC");
                false
            };
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            match self.next()? {
                Token::Num(n) => Some(n.parse::<usize>().map_err(|_| {
                    EngineError::Parse(format!("bad LIMIT {n}"))
                })?),
                other => return Err(EngineError::Parse(format!("expected LIMIT count, found {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectQuery { projection, from, predicate, order_by, limit })
    }

    fn value_literal(&mut self) -> EngineResult<Value> {
        match self.next()? {
            Token::Num(n) => parse_number(&n),
            Token::Str(s) => Ok(Value::Str(s)),
            Token::Ident(w) if w.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            Token::Ident(w) if w.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Token::Ident(w) if w.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            other => Err(EngineError::Parse(format!("expected literal, found {other:?}"))),
        }
    }

    fn object_kind(&mut self) -> EngineResult<ObjectKind> {
        let w = self.ident()?;
        match w.to_ascii_uppercase().as_str() {
            "CATALOG" => Ok(ObjectKind::Catalog),
            "SCHEMA" | "DATABASE" => Ok(ObjectKind::Schema),
            "TABLE" => Ok(ObjectKind::Table),
            "VIEW" => Ok(ObjectKind::View),
            "VOLUME" => Ok(ObjectKind::Volume),
            other => Err(EngineError::Parse(format!("unknown object kind {other}"))),
        }
    }

    fn statement(&mut self) -> EngineResult<Statement> {
        let head = self.ident()?.to_ascii_uppercase();
        let stmt = match head.as_str() {
            "CREATE" => self.create_statement()?,
            "INSERT" => {
                self.expect_kw("INTO")?;
                let table = self.qualified_name()?;
                self.expect_kw("VALUES")?;
                let mut rows = Vec::new();
                loop {
                    self.expect_punct("(")?;
                    let mut row = vec![self.value_literal()?];
                    while self.eat_punct(",") {
                        row.push(self.value_literal()?);
                    }
                    self.expect_punct(")")?;
                    rows.push(row);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                Statement::Insert { table, rows }
            }
            "SELECT" => Statement::Select(self.select_query()?),
            "DELETE" => {
                self.expect_kw("FROM")?;
                let table = self.qualified_name()?;
                let predicate = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
                Statement::Delete { table, predicate }
            }
            "GRANT" => {
                let privilege = self.privilege_name()?;
                self.expect_kw("ON")?;
                let kind = self.object_kind()?;
                let on = self.qualified_name()?;
                self.expect_kw("TO")?;
                let to = self.grantee()?;
                Statement::Grant { privilege, kind, on, to }
            }
            "REVOKE" => {
                let privilege = self.privilege_name()?;
                self.expect_kw("ON")?;
                let kind = self.object_kind()?;
                let on = self.qualified_name()?;
                self.expect_kw("FROM")?;
                let from = self.grantee()?;
                Statement::Revoke { privilege, kind, on, from }
            }
            "DROP" => {
                let kind = self.object_kind()?;
                let name = self.qualified_name()?;
                Statement::Drop { kind, name }
            }
            "BEGIN" => Statement::Begin,
            "COMMIT" => Statement::Commit,
            "ROLLBACK" => Statement::Rollback,
            "OPTIMIZE" => Statement::Optimize { table: self.qualified_name()? },
            "VACUUM" => Statement::Vacuum { table: self.qualified_name()? },
            "DESCRIBE" | "DESC" => Statement::Describe { table: self.qualified_name()? },
            other => return Err(EngineError::Parse(format!("unknown statement {other}"))),
        };
        if !self.at_end() {
            return Err(EngineError::Parse(format!(
                "trailing tokens after statement: {:?}",
                self.peek()
            )));
        }
        Ok(stmt)
    }

    fn privilege_name(&mut self) -> EngineResult<String> {
        // Privileges can be two words (USE CATALOG / USE SCHEMA / ALL
        // PRIVILEGES / CREATE TABLE …); greedily join while the next token
        // is not ON.
        let mut words = vec![self.ident()?];
        while let Some(Token::Ident(w)) = self.peek() {
            if w.eq_ignore_ascii_case("ON") {
                break;
            }
            words.push(self.ident()?);
        }
        Ok(words.join(" ").to_ascii_uppercase())
    }

    fn grantee(&mut self) -> EngineResult<String> {
        match self.next()? {
            Token::Ident(w) => Ok(w),
            Token::Str(s) => Ok(s),
            other => Err(EngineError::Parse(format!("expected grantee, found {other:?}"))),
        }
    }

    fn create_statement(&mut self) -> EngineResult<Statement> {
        let kind = self.object_kind()?;
        match kind {
            ObjectKind::Catalog => Ok(Statement::CreateCatalog { name: self.ident()? }),
            ObjectKind::Schema => {
                let name = self.qualified_name()?;
                let Some(schema) = name.schema().filter(|_| name.len() == 2) else {
                    return Err(EngineError::Parse("CREATE SCHEMA needs catalog.schema".into()));
                };
                Ok(Statement::CreateSchema {
                    catalog: name.catalog().to_string(),
                    name: schema.to_string(),
                })
            }
            ObjectKind::Table => {
                let name = self.qualified_name()?;
                if self.eat_kw("SHALLOW") {
                    self.expect_kw("CLONE")?;
                    let source = self.qualified_name()?;
                    return Ok(Statement::CreateShallowClone { name, source });
                }
                self.expect_punct("(")?;
                let mut columns = Vec::new();
                loop {
                    let col = self.ident()?;
                    let ty_name = self.ident()?;
                    let dt = DataType::parse(&ty_name)
                        .ok_or_else(|| EngineError::Parse(format!("unknown type {ty_name}")))?;
                    let mut nullable = true;
                    if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        nullable = false;
                    }
                    columns.push((col, dt, nullable));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
                let mut location = None;
                let mut format = None;
                loop {
                    if self.eat_kw("USING") {
                        format = Some(self.ident()?.to_ascii_uppercase());
                    } else if self.eat_kw("LOCATION") {
                        location = Some(self.string()?);
                    } else {
                        break;
                    }
                }
                Ok(Statement::CreateTable { name, columns, location, format })
            }
            ObjectKind::View => {
                let name = self.qualified_name()?;
                self.expect_kw("AS")?;
                self.expect_kw("SELECT")?;
                let query = self.select_query()?;
                // Store a canonical re-rendering of the defining query; the
                // engine re-parses it when expanding the view.
                let sql = render_select(&query);
                Ok(Statement::CreateView { name, query, sql })
            }
            ObjectKind::Volume => {
                let name = self.qualified_name()?;
                let location = if self.eat_kw("LOCATION") { Some(self.string()?) } else { None };
                Ok(Statement::CreateVolume { name, location })
            }
        }
    }
}

fn parse_number(n: &str) -> EngineResult<Value> {
    if n.contains('.') {
        n.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| EngineError::Parse(format!("bad number {n}")))
    } else {
        n.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| EngineError::Parse(format!("bad number {n}")))
    }
}

/// Render a select query back to parseable SQL (used for view storage).
pub fn render_select(q: &SelectQuery) -> String {
    let cols = match &q.projection {
        Projection::Star => "*".to_string(),
        Projection::Columns(cs) => cs.join(", "),
        Projection::CountStar => "COUNT(*)".to_string(),
    };
    let mut sql = match &q.predicate {
        Some(p) => format!("SELECT {cols} FROM {} WHERE {p}", q.from),
        None => format!("SELECT {cols} FROM {}", q.from),
    };
    if let Some((col, desc)) = &q.order_by {
        sql.push_str(&format!(" ORDER BY {col}{}", if *desc { " DESC" } else { "" }));
    }
    if let Some(n) = q.limit {
        sql.push_str(&format!(" LIMIT {n}"));
    }
    sql
}

/// Parse one SQL statement.
pub fn parse_statement(sql: &str) -> EngineResult<Statement> {
    let tokens = lex(sql)?;
    if tokens.is_empty() {
        return Err(EngineError::Parse("empty statement".into()));
    }
    let mut parser = Parser { tokens, pos: 0, original: sql.to_string() };
    let stmt = parser.statement()?;
    let _ = &parser.original;
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(sql: &str) -> Statement {
        parse_statement(sql).unwrap()
    }

    #[test]
    fn parses_create_catalog_and_schema() {
        assert_eq!(p("CREATE CATALOG main"), Statement::CreateCatalog { name: "main".into() });
        assert_eq!(
            p("create schema main.sales"),
            Statement::CreateSchema { catalog: "main".into(), name: "sales".into() }
        );
    }

    #[test]
    fn parses_create_table_with_types_and_options() {
        let stmt = p(
            "CREATE TABLE main.sales.orders (id BIGINT NOT NULL, name STRING, total DOUBLE) \
             USING delta LOCATION 's3://bkt/x'",
        );
        match stmt {
            Statement::CreateTable { name, columns, location, format } => {
                assert_eq!(name.to_string(), "main.sales.orders");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[0], ("id".into(), DataType::Int, false));
                assert_eq!(columns[1], ("name".into(), DataType::Str, true));
                assert_eq!(location.as_deref(), Some("s3://bkt/x"));
                assert_eq!(format.as_deref(), Some("DELTA"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_select_star_and_projection() {
        match p("SELECT * FROM main.sales.orders") {
            Statement::Select(q) => {
                assert_eq!(q.projection, Projection::Star);
                assert_eq!(q.from.to_string(), "main.sales.orders");
                assert!(q.predicate.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        match p("SELECT id, name FROM t WHERE id >= 10 AND name = 'bob' OR id IS NULL") {
            Statement::Select(q) => {
                assert_eq!(q.projection, Projection::Columns(vec!["id".into(), "name".into()]));
                assert!(q.predicate.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_order_by_and_limit() {
        match p("SELECT * FROM t WHERE x > 1 ORDER BY x DESC LIMIT 5") {
            Statement::Select(q) => {
                assert_eq!(q.order_by, Some(("x".to_string(), true)));
                assert_eq!(q.limit, Some(5));
                let rendered = render_select(&q);
                assert!(rendered.ends_with("ORDER BY x DESC LIMIT 5"), "{rendered}");
                assert!(parse_statement(&rendered).is_ok());
            }
            other => panic!("unexpected {other:?}"),
        }
        match p("SELECT x FROM t ORDER BY x ASC") {
            Statement::Select(q) => assert_eq!(q.order_by, Some(("x".to_string(), false))),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_statement("SELECT * FROM t LIMIT many").is_err());
    }

    #[test]
    fn parses_count_star() {
        match p("SELECT COUNT(*) FROM main.s.t WHERE x > 0") {
            Statement::Select(q) => {
                assert_eq!(q.projection, Projection::CountStar);
                assert!(q.predicate.is_some());
                // renders back to parseable SQL
                let rendered = render_select(&q);
                assert!(rendered.starts_with("SELECT COUNT(*)"));
                assert!(parse_statement(&rendered).is_ok());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_where_functions() {
        match p("SELECT * FROM t WHERE owner = current_user() AND is_account_group_member('hr')") {
            Statement::Select(q) => {
                let e = q.predicate.unwrap();
                let s = e.to_string();
                assert!(s.contains("current_user()"));
                assert!(s.contains("is_account_group_member('hr')"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_insert_multi_row() {
        match p("INSERT INTO main.s.t VALUES (1, 'a', 1.5), (2, NULL, -0.5)") {
            Statement::Insert { table, rows } => {
                assert_eq!(table.to_string(), "main.s.t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][0], Value::Int(1));
                assert_eq!(rows[1][1], Value::Null);
                assert_eq!(rows[1][2], Value::Float(-0.5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_grant_revoke() {
        assert_eq!(
            p("GRANT SELECT ON TABLE main.s.t TO alice"),
            Statement::Grant {
                privilege: "SELECT".into(),
                kind: ObjectKind::Table,
                on: FullName::parse("main.s.t").unwrap(),
                to: "alice".into()
            }
        );
        assert_eq!(
            p("GRANT USE CATALOG ON CATALOG main TO analysts"),
            Statement::Grant {
                privilege: "USE CATALOG".into(),
                kind: ObjectKind::Catalog,
                on: FullName::parse("main").unwrap(),
                to: "analysts".into()
            }
        );
        assert!(matches!(p("REVOKE SELECT ON TABLE main.s.t FROM alice"), Statement::Revoke { .. }));
    }

    #[test]
    fn parses_delete() {
        match p("DELETE FROM main.s.t WHERE x < 5") {
            Statement::Delete { table, predicate } => {
                assert_eq!(table.to_string(), "main.s.t");
                assert!(predicate.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(p("DELETE FROM t"), Statement::Delete { predicate: None, .. }));
    }

    #[test]
    fn parses_maintenance_and_txn() {
        assert!(matches!(p("OPTIMIZE main.s.t"), Statement::Optimize { .. }));
        assert!(matches!(p("VACUUM main.s.t"), Statement::Vacuum { .. }));
        assert_eq!(p("BEGIN"), Statement::Begin);
        assert_eq!(p("COMMIT"), Statement::Commit);
        assert_eq!(p("ROLLBACK"), Statement::Rollback);
        assert!(matches!(p("DESCRIBE main.s.t"), Statement::Describe { .. }));
        assert!(matches!(p("DROP VIEW main.s.v"), Statement::Drop { kind: ObjectKind::View, .. }));
    }

    #[test]
    fn parses_shallow_clone() {
        match p("CREATE TABLE main.s.snap SHALLOW CLONE main.s.base") {
            Statement::CreateShallowClone { name, source } => {
                assert_eq!(name.to_string(), "main.s.snap");
                assert_eq!(source.to_string(), "main.s.base");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_create_view() {
        match p("CREATE VIEW main.s.v AS SELECT id FROM main.s.t WHERE id > 5") {
            Statement::CreateView { name, query, .. } => {
                assert_eq!(name.to_string(), "main.s.v");
                assert_eq!(query.from.to_string(), "main.s.t");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("").is_err());
        assert!(parse_statement("FLY me TO the moon").is_err());
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE 'unterminated").is_err());
        assert!(parse_statement("SELECT * FROM t extra_token junk").is_err());
        assert!(parse_statement("CREATE TABLE t (x FANCYTYPE)").is_err());
    }

    #[test]
    fn trailing_semicolon_is_fine() {
        assert!(matches!(p("BEGIN;"), Statement::Begin));
    }
}
