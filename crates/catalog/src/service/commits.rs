//! Catalog-owned table commits and multi-table transactions (§6.3).
//!
//! Instead of claiming log versions with `put_if_absent` on object
//! storage, a catalog-owned table commits *through the catalog*: the
//! commit payload is stored in the catalog's transactional database and
//! the table's latest version is advanced with a compare-and-set. Because
//! several tables' commit state can be updated in one metadata
//! transaction, this is what makes multi-table / multi-statement
//! transactions possible — something the storage-level protocol cannot do
//! across buckets.

use std::sync::Arc;

use bytes::Bytes;
use uc_cloudstore::Credential;
use uc_delta::error::{DeltaError, DeltaResult};
use uc_delta::log::CommitCoordinator;

use crate::audit::AuditDecision;
use crate::authz::Privilege;
use crate::error::{UcError, UcResult};
use crate::events::ChangeOp;
use crate::ids::Uid;
use crate::model::entity::{props, Entity};
use crate::model::keys::{self, T_COMMIT, T_ENTITY};
use crate::service::{Context, UnityCatalog};

/// One table's contribution to a (possibly multi-table) commit.
#[derive(Debug, Clone)]
pub struct TableCommit {
    pub table_id: Uid,
    /// The version being committed; must be exactly `latest + 1`.
    pub version: i64,
    /// Encoded log actions (same payload format as the storage log).
    pub payload: Bytes,
}

impl UnityCatalog {
    /// Authorize MODIFY on a table by id.
    fn authorize_table_write(&self, ctx: &Context, ms: &Uid, table_id: &Uid) -> UcResult<Arc<Entity>> {
        let entity = self
            .entity_by_id(ms, table_id)?
            .ok_or_else(|| UcError::NotFound(table_id.to_string()))?;
        let full = self.chain_from_entity(ms, entity.clone())?;
        let who = self.authz_context(ms, &ctx.principal)?;
        let authz = Self::authz_of(&full);
        if !authz.can_write_data(&who, Privilege::Modify) {
            self.record_audit(&ctx.principal, "commitTable", Some(table_id), AuditDecision::Deny, "");
            return Err(UcError::PermissionDenied("MODIFY required to commit".into()));
        }
        Ok(entity)
    }

    fn authorize_table_read(&self, ctx: &Context, ms: &Uid, table_id: &Uid) -> UcResult<Arc<Entity>> {
        let entity = self
            .entity_by_id(ms, table_id)?
            .ok_or_else(|| UcError::NotFound(table_id.to_string()))?;
        let full = self.chain_from_entity(ms, entity.clone())?;
        let who = self.authz_context(ms, &ctx.principal)?;
        if !Self::authz_of(&full).can_read_data(&who, Privilege::Select) {
            self.record_audit(&ctx.principal, "readTableCommit", Some(table_id), AuditDecision::Deny, "");
            return Err(UcError::PermissionDenied("SELECT required to read commits".into()));
        }
        Ok(entity)
    }

    /// Commit one table version through the catalog.
    pub fn commit_table(
        &self,
        ctx: &Context,
        ms: &Uid,
        table_id: &Uid,
        version: i64,
        payload: Bytes,
    ) -> UcResult<()> {
        self.commit_tables_atomically(
            ctx,
            ms,
            vec![TableCommit { table_id: table_id.clone(), version, payload }],
        )
    }

    /// Commit several tables atomically: either every table advances to
    /// its target version or none does.
    pub fn commit_tables_atomically(
        &self,
        ctx: &Context,
        ms: &Uid,
        commits: Vec<TableCommit>,
    ) -> UcResult<()> {
        let _api = self.api_enter_t("commit_tables_atomically", ctx, ms);
        if commits.is_empty() {
            return Ok(());
        }
        for c in &commits {
            self.authorize_table_write(ctx, ms, &c.table_id)?;
        }
        let now = self.now_ms();
        self.write_ms(ms, |tx, _ver, fx| {
            for c in &commits {
                let raw = tx
                    .get(T_ENTITY, &keys::ent_key(ms, &c.table_id))
                    .ok_or_else(|| UcError::NotFound(c.table_id.to_string()))?;
                let mut ent = Entity::decode(&raw)?;
                if !ent.is_active() {
                    return Err(UcError::NotFound(c.table_id.to_string()));
                }
                let latest = ent.commit_version();
                if c.version != latest + 1 {
                    return Err(UcError::CommitConflict { expected: c.version, actual: latest });
                }
                tx.put(T_COMMIT, &keys::commit_key(ms, &c.table_id, c.version), c.payload.clone());
                ent.properties
                    .insert(props::COMMIT_VERSION.to_string(), c.version.to_string());
                ent.updated_at_ms = now;
                fx.upsert(tx, ent, ChangeOp::Commit)?;
            }
            Ok(())
        })?;
        for c in &commits {
            self.record_audit(&ctx.principal, "commitTable", Some(&c.table_id), AuditDecision::Allow, format!("v{}", c.version));
        }
        Ok(())
    }

    /// Latest catalog-owned version of a table (-1 if none).
    pub fn latest_table_version(&self, ctx: &Context, ms: &Uid, table_id: &Uid) -> UcResult<i64> {
        let _api = self.api_enter_t("latest_table_version", ctx, ms);
        let entity = self.authorize_table_read(ctx, ms, table_id)?;
        Ok(entity.commit_version())
    }

    /// Read one committed payload.
    pub fn read_table_commit(
        &self,
        ctx: &Context,
        ms: &Uid,
        table_id: &Uid,
        version: i64,
    ) -> UcResult<Option<Bytes>> {
        let _api = self.api_enter_t("read_table_commit", ctx, ms);
        self.authorize_table_read(ctx, ms, table_id)?;
        Ok(self.commit_read_internal(ms, table_id, version))
    }

    /// Internal commit read (no authorization; catalog-internal flows
    /// such as sharing snapshot construction).
    pub(crate) fn commit_read_internal(&self, ms: &Uid, table_id: &Uid, version: i64) -> Option<Bytes> {
        let rt = self.db.begin_read();
        rt.get(T_COMMIT, &keys::commit_key(ms, table_id, version))
    }

}

/// A [`CommitCoordinator`] that routes a Delta table's commits through the
/// catalog — plug it into [`uc_delta::DeltaTable::with_coordinator`] to
/// make a table catalog-owned. Authentication is the captured [`Context`];
/// the storage credential argument is ignored (the log never touches
/// object storage).
pub struct CatalogCommitCoordinator {
    pub uc: Arc<UnityCatalog>,
    pub ctx: Context,
    pub ms: Uid,
    pub table_id: Uid,
}

fn to_delta(e: UcError) -> DeltaError {
    match e {
        UcError::CommitConflict { expected, .. } => DeltaError::CommitConflict { version: expected },
        other => DeltaError::Coordinator(other.to_string()),
    }
}

impl CommitCoordinator for CatalogCommitCoordinator {
    fn latest_version(&self, _cred: &Credential) -> DeltaResult<Option<i64>> {
        let v = self
            .uc
            .latest_table_version(&self.ctx, &self.ms, &self.table_id)
            .map_err(to_delta)?;
        Ok((v >= 0).then_some(v))
    }

    fn try_commit(&self, _cred: &Credential, version: i64, payload: Bytes) -> DeltaResult<()> {
        self.uc
            .commit_table(&self.ctx, &self.ms, &self.table_id, version, payload)
            .map_err(to_delta)
    }

    fn read_commit(&self, _cred: &Credential, version: i64) -> DeltaResult<Option<Bytes>> {
        self.uc
            .read_table_commit(&self.ctx, &self.ms, &self.table_id, version)
            .map_err(to_delta)
    }
}
