//! Deterministic cooperative scheduling for interleaving exploration.
//!
//! [`FaultPlan`](crate::FaultPlan) makes *when operations fail*
//! deterministic; this module makes *in what order operations run*
//! deterministic. A [`Scheduler`] drives N client threads through named
//! yield points one at a time — a "baton" model: exactly one registered
//! client is runnable at any instant, and at every yield point the
//! scheduler picks the next runnable client from a seeded RNG stream.
//! Two runs with the same seed and the same per-client workload execute
//! the identical interleaving, and the recorded [schedule
//! trace](Scheduler::trace_text) is the byte-diffable witness.
//!
//! Two exploration strategies are built in:
//!
//! * [`SchedMode::RandomWalk`] — at each yield point, pick uniformly
//!   among runnable clients (including the current one). Good breadth.
//! * [`SchedMode::Pct`] — probabilistic concurrency testing: clients get
//!   random priorities and the highest-priority runnable client always
//!   runs, except at `depth - 1` pre-sampled priority-change steps where
//!   the running client's priority drops below everyone else's. PCT
//!   provably hits any bug of preemption depth `d` with probability
//!   ≥ 1/(n·k^(d-1)) per run, so a modest seed sweep covers small-depth
//!   races much better than uniform walks.
//!
//! Instrumented code calls the free function [`yield_point`] with a point
//! name. Threads not registered with any scheduler (production, ordinary
//! tests) pay one thread-local probe and return — the same "disabled is
//! nearly free" contract the fault plan and tracer follow.
//!
//! Deadlock discipline: yield points must only be placed where the
//! calling thread holds **no lock another scheduled client could need**
//! (e.g. outside the cache write gate and the txdb commit lock). A parked
//! client then never blocks the running one, so the baton always moves.

use std::cell::RefCell;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Well-known yield point names. Constants rather than an enum so
/// downstream crates can add points without touching this crate (the
/// same pattern as [`crate::faults::points`]).
pub mod points {
    /// Top of one logical client operation (drivers call this).
    pub const OP_START: &str = "op.start";
    /// Top of a cached-read lookup iteration (catalog read protocol).
    pub const READ_LOOKUP: &str = "read.lookup";
    /// Start of a write-protocol attempt, before the transaction begins.
    pub const WRITE_BEGIN: &str = "write.begin";
    /// After the write closure ran, immediately before the DB commit.
    pub const WRITE_PRECOMMIT: &str = "write.precommit";
    /// After a successful DB commit, before the write-through cache
    /// apply — the window a node crash would leave the cache stale in.
    pub const WRITE_POSTCOMMIT: &str = "write.postcommit";
    /// Transactional commit entry, before the commit lock is taken.
    pub const TXDB_COMMIT: &str = "txdb.commit";
    /// Immediately before the audit log's lane-merge flush drains the
    /// per-thread append lanes into canonical order — the window where a
    /// concurrent writer's record may land in this batch or the next.
    pub const AUDIT_FLUSH: &str = "audit.flush";
    /// Immediately before a metrics snapshot folds the striped
    /// counter/histogram cells — the analogous window for telemetry.
    pub const OBS_FOLD: &str = "obs.fold";
    /// Immediately before an explicit flight-recorder freeze merges the
    /// per-thread event lanes — the window where a concurrent commit's
    /// audit trail may be captured mid-flight.
    pub const FLIGHT_FREEZE: &str = "flight.freeze";
}

/// Interleaving selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Uniform random choice among runnable clients at every yield.
    RandomWalk,
    /// PCT-style priority scheduling with `depth - 1` priority-change
    /// points. `depth` ≥ 1; `Pct { depth: 1 }` is pure priority order.
    Pct { depth: usize },
}

struct State {
    mode: SchedMode,
    rng: u64,
    n: usize,
    registered: usize,
    started: bool,
    /// The client currently holding the baton; `None` before start and
    /// after the last client finishes.
    active: Option<usize>,
    done: Vec<bool>,
    steps: u64,
    trace: Vec<(u64, usize, &'static str, String)>,
    /// PCT: per-client priorities (higher runs first).
    priorities: Vec<i64>,
    /// PCT: steps at which the running client is deprioritized, sorted.
    change_points: Vec<u64>,
    /// PCT: next fresh lowest priority.
    next_low: i64,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
}

/// A shareable deterministic scheduler for `n` cooperative clients.
/// Cloning shares the scheduler.
#[derive(Clone)]
pub struct Scheduler {
    inner: Arc<Inner>,
}

thread_local! {
    /// The scheduler + client id this thread is registered with, if any.
    static CURRENT: RefCell<Option<(Scheduler, usize)>> = const { RefCell::new(None) };
}

/// splitmix64: seed → well-mixed nonzero xorshift state.
fn mix_seed(seed: u64) -> u64 {
    let mut h = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    if h == 0 {
        0x9e37_79b9_7f4a_7c15
    } else {
        h
    }
}

/// xorshift64* step.
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

impl Scheduler {
    /// A scheduler for `n` clients. `steps_hint` bounds the step range
    /// PCT samples its priority-change points from; pass roughly the
    /// expected total number of yield points in the run.
    pub fn new(seed: u64, n: usize, mode: SchedMode, steps_hint: u64) -> Self {
        let mut rng = mix_seed(seed);
        let priorities: Vec<i64> = (0..n).map(|_| (next_u64(&mut rng) >> 33) as i64 + 1).collect();
        let mut change_points = Vec::new();
        if let SchedMode::Pct { depth } = mode {
            let span = steps_hint.max(1);
            for _ in 1..depth.max(1) {
                change_points.push(next_u64(&mut rng) % span + 1);
            }
            change_points.sort_unstable();
        }
        Scheduler {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    mode,
                    rng,
                    n,
                    registered: 0,
                    started: false,
                    active: None,
                    done: vec![false; n],
                    steps: 0,
                    trace: Vec::new(),
                    priorities,
                    change_points,
                    next_low: 0,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Register the calling thread as `client` and park until the
    /// scheduler starts the run and hands this client the baton. Each
    /// client id must be registered by exactly one thread.
    pub fn register_current(&self, client: usize) {
        CURRENT.with(|c| *c.borrow_mut() = Some((self.clone(), client)));
        let mut st = self.inner.state.lock();
        assert!(client < st.n, "client id {client} out of range");
        st.registered += 1;
        self.inner.cv.notify_all();
        while !(st.started && st.active == Some(client)) {
            self.inner.cv.wait(&mut st);
        }
    }

    /// Coordinator entry: wait for all `n` clients to register, start
    /// the run, and block until every client has finished.
    pub fn run_to_completion(&self) {
        let mut st = self.inner.state.lock();
        while st.registered < st.n {
            self.inner.cv.wait(&mut st);
        }
        st.started = true;
        let first = Self::pick_next(&mut st, None);
        st.active = Some(first);
        self.inner.cv.notify_all();
        while !st.done.iter().all(|d| *d) {
            self.inner.cv.wait(&mut st);
        }
    }

    /// The recorded interleaving: one `(step, client, point)` line per
    /// scheduling decision. Byte-identical across same-seed runs of the
    /// same workload.
    pub fn trace_text(&self) -> String {
        let st = self.inner.state.lock();
        let mut out = String::new();
        for (step, client, point, detail) in &st.trace {
            out.push_str(&format!("step={step} client={client} point={point}{detail}\n"));
        }
        out
    }

    /// Scheduling decisions taken so far.
    pub fn steps(&self) -> u64 {
        self.inner.state.lock().steps
    }

    /// Choose the next client to run among the not-done ones. `current`
    /// is the yielding client (a candidate to continue), `None` at start.
    fn pick_next(st: &mut State, current: Option<usize>) -> usize {
        let runnable: Vec<usize> = (0..st.n).filter(|i| !st.done[*i]).collect();
        assert!(!runnable.is_empty(), "pick_next with no runnable clients");
        match st.mode {
            SchedMode::RandomWalk => {
                let idx = (next_u64(&mut st.rng) % runnable.len() as u64) as usize;
                runnable[idx]
            }
            SchedMode::Pct { .. } => {
                // Consume due change points: deprioritize the running
                // client below every other, forcing a preemption.
                while st.change_points.first().is_some_and(|cp| *cp <= st.steps) {
                    st.change_points.remove(0);
                    if let Some(cur) = current {
                        st.next_low -= 1;
                        st.priorities[cur] = st.next_low;
                    }
                }
                *runnable
                    .iter()
                    .max_by_key(|i| (st.priorities[**i], usize::MAX - **i))
                    // uc-lint: allow(hygiene) -- the caller checked runnable is non-empty this iteration
                    .expect("nonempty runnable set")
            }
        }
    }

    fn yield_at(&self, client: usize, point: &'static str) {
        // uc-lint: allow(hotpath) -- deterministic-scheduler rendezvous: only registered model-run threads get here (yield_point returns early otherwise)
        let mut st = self.inner.state.lock();
        debug_assert_eq!(st.active, Some(client), "yield from a non-active client");
        st.steps += 1;
        let step = st.steps;
        st.trace.push((step, client, point, String::new()));
        let next = Self::pick_next(&mut st, Some(client));
        if next != client {
            st.active = Some(next);
            self.inner.cv.notify_all();
            while st.active != Some(client) {
                self.inner.cv.wait(&mut st);
            }
        }
    }

    fn finish(&self, client: usize) {
        let mut st = self.inner.state.lock();
        st.done[client] = true;
        st.steps += 1;
        let step = st.steps;
        st.trace.push((step, client, "client.done", String::new()));
        if st.done.iter().all(|d| *d) {
            st.active = None;
        } else {
            let next = Self::pick_next(&mut st, None);
            st.active = Some(next);
        }
        self.inner.cv.notify_all();
    }
}

/// Cooperative yield from instrumented code. If the calling thread is
/// registered with a scheduler, this may park it and run other clients;
/// otherwise it is a no-op (one thread-local probe).
pub fn yield_point(point: &'static str) {
    let reg = CURRENT.with(|c| c.borrow().clone());
    if let Some((sched, client)) = reg {
        sched.yield_at(client, point);
    }
}

/// Whether the calling thread is registered with a scheduler. A blocking
/// primitive (condvar wait) would wedge the baton model — the waiter
/// holds the baton while the thread that would wake it can never run —
/// so code that may execute under the explorer probes this to swap a
/// blocking wait for a yield-and-recheck loop (see uc-serve's
/// single-flight followers).
pub fn is_scheduled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Mark the calling thread's client as finished and hand the baton on.
/// Unregisters the thread; a no-op for unregistered threads. Drivers
/// must call this even when the client's workload panicked (wrap the
/// workload in `catch_unwind`), or the run never terminates.
pub fn finish_current() {
    let reg = CURRENT.with(|c| c.borrow_mut().take());
    if let Some((sched, client)) = reg {
        sched.finish(client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Run `n` clients that each append their id at every of `k` yields;
    /// return (order log, schedule trace).
    fn run_clients(seed: u64, n: usize, k: usize, mode: SchedMode) -> (Vec<usize>, String) {
        let sched = Scheduler::new(seed, n, mode, (n * k) as u64 + 8);
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..n {
            let sched = sched.clone();
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                sched.register_current(i);
                for _ in 0..k {
                    log.lock().push(i);
                    yield_point("test.step");
                }
                finish_current();
            }));
        }
        sched.run_to_completion();
        for h in handles {
            h.join().unwrap();
        }
        let order = log.lock().clone();
        (order, sched.trace_text())
    }

    #[test]
    fn same_seed_same_interleaving() {
        let (o1, t1) = run_clients(7, 3, 20, SchedMode::RandomWalk);
        let (o2, t2) = run_clients(7, 3, 20, SchedMode::RandomWalk);
        assert_eq!(o1, o2);
        assert_eq!(t1, t2, "schedule trace must be byte-identical");
    }

    #[test]
    fn different_seeds_differ() {
        let (o1, _) = run_clients(1, 3, 20, SchedMode::RandomWalk);
        let (o2, _) = run_clients(2, 3, 20, SchedMode::RandomWalk);
        assert_ne!(o1, o2, "60 scheduling decisions should not coincide");
    }

    #[test]
    fn all_client_steps_complete() {
        let (order, _) = run_clients(42, 4, 10, SchedMode::RandomWalk);
        assert_eq!(order.len(), 40);
        for i in 0..4 {
            assert_eq!(order.iter().filter(|c| **c == i).count(), 10);
        }
    }

    #[test]
    fn pct_is_deterministic_and_preempts() {
        let (o1, t1) = run_clients(11, 3, 15, SchedMode::Pct { depth: 3 });
        let (o2, t2) = run_clients(11, 3, 15, SchedMode::Pct { depth: 3 });
        assert_eq!(o1, o2);
        assert_eq!(t1, t2);
        // Priority scheduling runs one client in long bursts; with depth 3
        // there are at most a handful of switches, far fewer than random.
        let switches = o1.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(switches <= 2 * 3 + 3, "PCT should switch rarely, got {switches}");
    }

    #[test]
    fn unregistered_threads_pass_through() {
        // No scheduler anywhere: yield_point and finish_current are no-ops.
        yield_point("free.run");
        finish_current();
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                yield_point("free.run");
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn trace_records_points_and_completion() {
        let (_, trace) = run_clients(3, 2, 2, SchedMode::RandomWalk);
        assert_eq!(trace.matches("point=test.step").count(), 4);
        assert_eq!(trace.matches("point=client.done").count(), 2);
        assert!(trace.starts_with("step=1 "));
    }
}
