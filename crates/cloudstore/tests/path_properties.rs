//! Property tests over storage-path algebra — the foundation the
//! one-asset-per-path invariant stands on.

use proptest::prelude::*;
use uc_cloudstore::StoragePath;

fn arb_segments() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z][a-z0-9_-]{0,6}", 0..5)
}

fn path_of(bucket: &str, segs: &[String]) -> StoragePath {
    StoragePath::parse(&format!("s3://{bucket}/{}", segs.join("/"))).unwrap()
}

proptest! {
    #[test]
    fn display_parse_roundtrip(segs in arb_segments()) {
        let p = path_of("bkt", &segs);
        let back = StoragePath::parse(&p.to_string()).unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn child_then_parent_is_identity(segs in arb_segments(), name in "[a-z]{1,5}") {
        let p = path_of("bkt", &segs);
        let c = p.child(&name);
        prop_assert_eq!(c.parent().unwrap(), p);
    }

    #[test]
    fn prefix_is_reflexive_and_antisymmetric(a in arb_segments(), b in arb_segments()) {
        let pa = path_of("bkt", &a);
        let pb = path_of("bkt", &b);
        prop_assert!(pa.is_prefix_of(&pa));
        if pa.is_prefix_of(&pb) && pb.is_prefix_of(&pa) {
            prop_assert_eq!(&pa, &pb);
        }
        // overlap is symmetric
        prop_assert_eq!(pa.overlaps(&pb), pb.overlaps(&pa));
    }

    #[test]
    fn prefix_matches_segment_semantics(a in arb_segments(), b in arb_segments()) {
        let pa = path_of("bkt", &a);
        let pb = path_of("bkt", &b);
        let expected = a.len() <= b.len() && a.iter().zip(b.iter()).all(|(x, y)| x == y);
        prop_assert_eq!(pa.is_prefix_of(&pb), expected);
    }

    #[test]
    fn different_buckets_never_relate(segs in arb_segments()) {
        let pa = path_of("one", &segs);
        let pb = path_of("two", &segs);
        prop_assert!(!pa.overlaps(&pb));
    }

    #[test]
    fn ancestors_all_prefix_descendant(segs in proptest::collection::vec("[a-z]{1,4}", 1..5)) {
        let leaf = path_of("bkt", &segs);
        let mut anc = leaf.parent();
        while let Some(a) = anc {
            prop_assert!(a.is_prefix_of(&leaf));
            prop_assert!(!leaf.is_prefix_of(&a) || a == leaf);
            anc = a.parent();
        }
    }
}
