//! Operation counters, used by benchmarks to attribute latency.
//!
//! Since the observability plane landed, `DbStats` is a façade over
//! [`uc_obs::Counter`] handles: a default-constructed instance holds
//! detached counters (exactly the old lock-free behavior), while
//! [`DbStats::wired`] binds the same fields to a metrics registry under
//! `txdb.*` names so they appear in deterministic snapshots. Either way
//! the accessor API is unchanged, so existing callers and tests compile
//! and pass as before.

use uc_obs::{Counter, Registry};

/// Monotonic counters for database activity. All methods are lock-free.
#[derive(Debug, Default)]
pub struct DbStats {
    reads: Counter,
    scans: Counter,
    writes: Counter,
    commits: Counter,
    conflicts: Counter,
}

impl DbStats {
    /// Stats whose counters live in `registry` under `txdb.*` names.
    pub fn wired(registry: &Registry) -> Self {
        DbStats {
            reads: registry.counter("txdb.read.count"),
            scans: registry.counter("txdb.scan.count"),
            writes: registry.counter("txdb.write.rows"),
            commits: registry.counter("txdb.commit.count"),
            conflicts: registry.counter("txdb.commit.conflicts"),
        }
    }

    pub fn record_read(&self) {
        self.reads.inc();
    }

    pub fn record_scan(&self) {
        self.scans.inc();
    }

    pub fn record_write(&self, n: u64) {
        self.writes.add(n);
    }

    pub fn record_commit(&self) {
        self.commits.inc();
    }

    pub fn record_conflict(&self) {
        self.conflicts.inc();
    }

    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    pub fn scans(&self) -> u64 {
        self.scans.get()
    }

    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    pub fn commits(&self) -> u64 {
        self.commits.get()
    }

    pub fn conflicts(&self) -> u64 {
        self.conflicts.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = DbStats::default();
        s.record_read();
        s.record_read();
        s.record_write(3);
        s.record_commit();
        s.record_conflict();
        s.record_scan();
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 3);
        assert_eq!(s.commits(), 1);
        assert_eq!(s.conflicts(), 1);
        assert_eq!(s.scans(), 1);
    }

    #[test]
    fn wired_stats_surface_in_registry_snapshot() {
        let registry = Registry::new();
        let s = DbStats::wired(&registry);
        s.record_commit();
        s.record_write(2);
        assert_eq!(registry.counter("txdb.commit.count").get(), 1);
        assert_eq!(registry.counter("txdb.write.rows").get(), 2);
        let snap = registry.text_snapshot();
        assert!(snap.contains("txdb.commit.count counter 1"));
        assert!(snap.contains("txdb.write.rows counter 2"));
    }
}
