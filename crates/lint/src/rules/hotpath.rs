//! Hot-path lock ban. The cached-read fast path — `api_enter` through the
//! audit append — runs once per lookup, so one shared exclusive lock
//! anywhere on it re-serializes the entire read side (the Fig 10 knee the
//! audit-lane/counter-stripe sharding removed). `[hotpath] functions`
//! in Lint.toml lists those functions as `<rel_path>::<fn_name>`; any
//! guard-returning acquisition (`.read()` / `.write()` / `.lock()` /
//! `.try_lock()` / `.write_gate()` / `.acquire()`) inside one is a
//! diagnostic unless suppressed with a reasoned
//! `// uc-lint: allow(hotpath)` pragma (per-thread lanes and miss-path
//! gates are legitimate and documented at their sites).
//!
//! This is a textual, function-local check like the rest of uc-lint: it
//! cannot see locks taken by callees. Its job is to stop the *easy*
//! regression — someone adding a map or log behind a mutex directly in a
//! hot function — and to force a written justification for everything
//! else.

use super::{is_punct, Diagnostic, FileCtx, RULE_HOTPATH};
use crate::lexer::Kind;

/// Method names whose call returns (or stands for) a lock guard.
const ACQ_METHODS: &[&str] = &["read", "write", "lock", "try_lock", "write_gate", "acquire"];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let listed = ctx.cfg.list("hotpath", "functions");
    if listed.is_empty() {
        return;
    }
    let toks = ctx.tokens;
    for f in &ctx.scan.fns {
        let key = format!("{}::{}", ctx.rel_path, f.name);
        if !listed.iter().any(|l| l == &key) {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        if ctx.scan.test_mask[open] {
            continue;
        }
        let mut i = open + 1;
        while i < close {
            let t = &toks[i];
            if t.kind == Kind::Ident
                && is_punct(&toks[i - 1], ".")
                && i + 1 < close
                && is_punct(&toks[i + 1], "(")
                && ACQ_METHODS.contains(&t.text.as_str())
            {
                out.push(ctx.diag(
                    t.line,
                    RULE_HOTPATH,
                    format!(
                        "`.{}()` acquisition inside hot-path function `{}` (api_enter→audit must take no shared exclusive lock; suppress with a reasoned allow(hotpath) pragma if provably uncontended)",
                        t.text, f.name
                    ),
                ));
            }
            i += 1;
        }
    }
}
