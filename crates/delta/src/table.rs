//! `DeltaTable`: the user-facing handle combining data files, the log, and
//! a commit coordinator.
//!
//! All methods take the caller's [`Credential`] explicitly — in the
//! governed system engines hold only short-lived vended tokens, and those
//! tokens are presented to storage on every operation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use uc_cloudstore::{Credential, ObjectStore, StoragePath};

use crate::actions::{
    Action, AddFile, CommitInfo, MetaData, Protocol, RemoveFile,
};
use crate::datafile::{collect_stats, decode_rows, encode_rows};
use crate::error::{DeltaError, DeltaResult};
use crate::expr::{EvalContext, Expr};
use crate::log::{read_log, write_commit, CommitCoordinator, StorageCommitCoordinator};
use crate::snapshot::Snapshot;
use crate::value::{Row, Schema};

/// Process-unique suffix source for data file names.
static FILE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Write a checkpoint every this many commits (the Delta protocol's
/// default cadence).
pub const CHECKPOINT_INTERVAL: i64 = 10;

/// Result of an OPTIMIZE run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeMetrics {
    pub files_removed: usize,
    pub files_added: usize,
    pub rows_rewritten: u64,
}

/// Result of a VACUUM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VacuumMetrics {
    pub objects_deleted: usize,
    pub bytes_reclaimed: u64,
}

/// A handle to a Delta-style table rooted at a storage path.
pub struct DeltaTable {
    store: ObjectStore,
    path: StoragePath,
    coordinator: Arc<dyn CommitCoordinator>,
}

impl DeltaTable {
    /// Open a table with the default storage-based commit coordinator.
    pub fn open(store: ObjectStore, path: StoragePath) -> Self {
        let coordinator = Arc::new(StorageCommitCoordinator::new(store.clone(), &path));
        DeltaTable { store, path, coordinator }
    }

    /// Open a table with a custom (e.g. catalog-owned) coordinator.
    pub fn with_coordinator(
        store: ObjectStore,
        path: StoragePath,
        coordinator: Arc<dyn CommitCoordinator>,
    ) -> Self {
        DeltaTable { store, path, coordinator }
    }

    /// Create the table: commit version 0 with protocol + metadata.
    pub fn create(
        store: ObjectStore,
        path: StoragePath,
        cred: &Credential,
        table_id: &str,
        schema: Schema,
    ) -> DeltaResult<Self> {
        let table = DeltaTable::open(store, path);
        table.create_with(cred, table_id, schema)?;
        Ok(table)
    }

    /// Create through this handle's coordinator (for catalog-owned tables).
    pub fn create_with(&self, cred: &Credential, table_id: &str, schema: Schema) -> DeltaResult<()> {
        let actions = vec![
            Action::Protocol(Protocol::default()),
            Action::MetaData(MetaData {
                id: table_id.to_string(),
                schema,
                partition_columns: vec![],
                configuration: BTreeMap::new(),
            }),
            Action::CommitInfo(CommitInfo {
                operation: "CREATE TABLE".into(),
                timestamp_ms: self.now_ms(),
                ..Default::default()
            }),
        ];
        write_commit(self.coordinator.as_ref(), cred, 0, &actions)
    }

    pub fn path(&self) -> &StoragePath {
        &self.path
    }

    pub fn coordinator(&self) -> &Arc<dyn CommitCoordinator> {
        &self.coordinator
    }

    /// Current snapshot: replay from the latest checkpoint when one
    /// exists, otherwise from the start of the log.
    pub fn snapshot(&self, cred: &Credential) -> DeltaResult<Snapshot> {
        let Some(latest) = self.coordinator.latest_version(cred)? else {
            return Err(DeltaError::NotATable(self.path.to_string()));
        };
        if let Some((cv, base)) = self.read_latest_checkpoint(cred, latest)? {
            let mut log = Vec::with_capacity((latest - cv) as usize);
            for v in cv + 1..=latest {
                let payload = self
                    .coordinator
                    .read_commit(cred, v)?
                    .ok_or_else(|| DeltaError::Corrupt(format!("missing log version {v}")))?;
                log.push((v, crate::actions::decode_commit(&payload)?));
            }
            uc_obs::span_event(
                "delta.snapshot",
                &format!("version={latest} replayed={} from_checkpoint={cv}", log.len()),
            );
            return Snapshot::replay_from(Some(base), &log);
        }
        let log = read_log(self.coordinator.as_ref(), cred)?;
        uc_obs::span_event("delta.snapshot", &format!("version={latest} replayed={}", log.len()));
        if log.is_empty() {
            return Err(DeltaError::NotATable(self.path.to_string()));
        }
        Snapshot::replay(&log)
    }

    /// Find and decode the newest checkpoint at or below `max_version`.
    /// Checkpoints always live on storage, even for catalog-owned tables.
    fn read_latest_checkpoint(
        &self,
        cred: &Credential,
        max_version: i64,
    ) -> DeltaResult<Option<(i64, Snapshot)>> {
        let log_dir = self.path.child(crate::log::LOG_DIR);
        let listed = match self.store.list(cred, &log_dir) {
            Ok(l) => l,
            // a catalog-owned table may have no storage log directory yet
            Err(uc_cloudstore::StorageError::NoSuchBucket(_)) => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let best = listed
            .iter()
            .filter_map(|m| crate::log::parse_checkpoint_version(m.path.key()))
            .filter(|v| *v <= max_version)
            .max();
        let Some(v) = best else { return Ok(None) };
        let data = self
            .store
            .get(cred, &log_dir.child(&crate::log::checkpoint_file_name(v)))?;
        let actions = crate::actions::decode_commit(&data)?;
        Ok(Some((v, Snapshot::from_checkpoint(v, actions)?)))
    }

    /// Write a checkpoint of the current state; returns the checkpointed
    /// version. Subsequent snapshots replay only the commits after it.
    pub fn checkpoint(&self, cred: &Credential) -> DeltaResult<i64> {
        let snap = self.snapshot(cred)?;
        let data = crate::actions::encode_commit(&snap.to_checkpoint_actions());
        let log_dir = self.path.child(crate::log::LOG_DIR);
        self.store
            .put(cred, &log_dir.child(&crate::log::checkpoint_file_name(snap.version)), data)?;
        Ok(snap.version)
    }

    /// Snapshot at a historical version (time travel).
    pub fn snapshot_at(&self, cred: &Credential, version: i64) -> DeltaResult<Snapshot> {
        let log = read_log(self.coordinator.as_ref(), cred)?;
        let upto: Vec<_> = log.into_iter().filter(|(v, _)| *v <= version).collect();
        if upto.is_empty() {
            return Err(DeltaError::NotATable(self.path.to_string()));
        }
        Snapshot::replay(&upto)
    }

    /// Write a batch of rows as one data file and commit it. Returns the
    /// new table version. Retries are the caller's concern: on
    /// [`DeltaError::CommitConflict`] the data file is already on storage
    /// and a retry will commit a fresh add action for it.
    pub fn append(&self, cred: &Credential, rows: &[Row]) -> DeltaResult<i64> {
        let snapshot = self.snapshot(cred)?;
        let add = self.write_data_file(cred, snapshot.schema(), rows)?;
        let version = snapshot.version + 1;
        let actions = vec![
            Action::Add(add),
            Action::CommitInfo(CommitInfo {
                operation: "WRITE".into(),
                timestamp_ms: self.now_ms(),
                ..Default::default()
            }),
        ];
        write_commit(self.coordinator.as_ref(), cred, version, &actions)?;
        uc_obs::span_event("delta.commit", &format!("version={version}"));
        // Periodic checkpointing, as the Delta protocol does every N
        // commits, keeps snapshot construction O(recent commits).
        if version > 0 && version % CHECKPOINT_INTERVAL == 0 {
            self.checkpoint(cred)?;
        }
        Ok(version)
    }

    /// Write rows into several files of at most `rows_per_file` rows each,
    /// in a single commit — how a small-files problem is born.
    pub fn append_fragmented(
        &self,
        cred: &Credential,
        rows: &[Row],
        rows_per_file: usize,
    ) -> DeltaResult<i64> {
        let snapshot = self.snapshot(cred)?;
        let mut actions = Vec::new();
        for chunk in rows.chunks(rows_per_file.max(1)) {
            actions.push(Action::Add(self.write_data_file(cred, snapshot.schema(), chunk)?));
        }
        actions.push(Action::CommitInfo(CommitInfo {
            operation: "WRITE".into(),
            timestamp_ms: self.now_ms(),
            ..Default::default()
        }));
        let version = snapshot.version + 1;
        write_commit(self.coordinator.as_ref(), cred, version, &actions)?;
        Ok(version)
    }

    /// Prepare an append without committing: writes the data file and
    /// returns the actions. Used for multi-table transactions, where the
    /// catalog commits all tables' actions atomically.
    pub fn prepare_append(&self, cred: &Credential, rows: &[Row]) -> DeltaResult<(i64, Vec<Action>)> {
        let snapshot = self.snapshot(cred)?;
        let add = self.write_data_file(cred, snapshot.schema(), rows)?;
        Ok((
            snapshot.version + 1,
            vec![
                Action::Add(add),
                Action::CommitInfo(CommitInfo {
                    operation: "WRITE".into(),
                    timestamp_ms: self.now_ms(),
                    ..Default::default()
                }),
            ],
        ))
    }

    /// Scan rows matching `predicate`, using file stats to skip files.
    /// Returns matching rows and the number of files actually read.
    pub fn scan(
        &self,
        cred: &Credential,
        predicate: Option<&Expr>,
        ctx: &EvalContext,
    ) -> DeltaResult<(Vec<Row>, usize)> {
        let snapshot = self.snapshot(cred)?;
        self.scan_snapshot(cred, &snapshot, predicate, ctx)
    }

    /// Scan against an existing snapshot (avoids replaying the log again).
    pub fn scan_snapshot(
        &self,
        cred: &Credential,
        snapshot: &Snapshot,
        predicate: Option<&Expr>,
        ctx: &EvalContext,
    ) -> DeltaResult<(Vec<Row>, usize)> {
        let schema = snapshot.schema();
        let files = snapshot.prune_files(predicate);
        let files_read = files.len();
        let mut out = Vec::new();
        for file in files {
            let data = self.store.get(cred, &self.path.child(&file.path))?;
            for row in decode_rows(&data)? {
                let keep = match predicate {
                    Some(p) => p.eval_bool(schema, &row, ctx)?,
                    None => true,
                };
                if keep {
                    out.push(row);
                }
            }
        }
        Ok((out, files_read))
    }

    /// Delete all rows matching `predicate` via copy-on-write: files with
    /// no matches are untouched, files with matches are rewritten without
    /// the matching rows. Returns the number of rows deleted.
    pub fn delete_where(
        &self,
        cred: &Credential,
        predicate: &Expr,
        ctx: &EvalContext,
    ) -> DeltaResult<u64> {
        let snapshot = self.snapshot(cred)?;
        let schema = snapshot.schema().clone();
        let now = self.now_ms();
        let mut actions = Vec::new();
        let mut deleted = 0u64;
        // Stats pruning bounds the rewrite set exactly like a scan.
        for file in snapshot.prune_files(Some(predicate)) {
            let data = self.store.get(cred, &self.path.child(&file.path))?;
            let rows = decode_rows(&data)?;
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                if predicate.eval_bool(&schema, &row, ctx)? {
                    deleted += 1;
                } else {
                    kept.push(row);
                }
            }
            if kept.len() as u64 == file.num_records {
                continue; // stats over-approximated; nothing matched here
            }
            actions.push(Action::Remove(RemoveFile {
                path: file.path.clone(),
                deletion_timestamp_ms: now,
            }));
            if !kept.is_empty() {
                actions.push(Action::Add(self.write_data_file(cred, &schema, &kept)?));
            }
        }
        if actions.is_empty() {
            return Ok(0);
        }
        actions.push(Action::CommitInfo(CommitInfo {
            operation: "DELETE".into(),
            timestamp_ms: now,
            ..Default::default()
        }));
        write_commit(self.coordinator.as_ref(), cred, snapshot.version + 1, &actions)?;
        Ok(deleted)
    }

    /// Compact active files into files of ~`target_rows` rows. This is the
    /// maintenance operation predictive optimization automates (Fig 10c).
    pub fn optimize(&self, cred: &Credential, target_rows: usize) -> DeltaResult<OptimizeMetrics> {
        let snapshot = self.snapshot(cred)?;
        let small: Vec<&AddFile> = snapshot
            .files
            .values()
            .filter(|f| (f.num_records as usize) < target_rows)
            .collect();
        if small.len() < 2 {
            return Ok(OptimizeMetrics { files_removed: 0, files_added: 0, rows_rewritten: 0 });
        }
        // Read all small files' rows.
        let mut rows = Vec::new();
        for file in &small {
            let data = self.store.get(cred, &self.path.child(&file.path))?;
            rows.extend(decode_rows(&data)?);
        }
        // Rewrite as target-sized files.
        let mut actions = Vec::new();
        let mut files_added = 0;
        for chunk in rows.chunks(target_rows.max(1)) {
            actions.push(Action::Add(self.write_data_file(cred, snapshot.schema(), chunk)?));
            files_added += 1;
        }
        let now = self.now_ms();
        for file in &small {
            actions.push(Action::Remove(RemoveFile {
                path: file.path.clone(),
                deletion_timestamp_ms: now,
            }));
        }
        actions.push(Action::CommitInfo(CommitInfo {
            operation: "OPTIMIZE".into(),
            timestamp_ms: now,
            ..Default::default()
        }));
        write_commit(self.coordinator.as_ref(), cred, snapshot.version + 1, &actions)?;
        Ok(OptimizeMetrics {
            files_removed: small.len(),
            files_added,
            rows_rewritten: rows.len() as u64,
        })
    }

    /// Delete storage objects that are no longer referenced by the current
    /// snapshot (tombstoned files). Returns reclaimed bytes — the storage
    /// efficiency part of the predictive-optimization experiment.
    pub fn vacuum(&self, cred: &Credential) -> DeltaResult<VacuumMetrics> {
        let snapshot = self.snapshot(cred)?;
        let mut deleted = 0;
        let mut reclaimed = 0u64;
        for path in snapshot.tombstones.keys() {
            let full = self.path.child(path);
            if let Ok(data) = self.store.get(cred, &full) {
                reclaimed += data.len() as u64;
                self.store.delete(cred, &full)?;
                deleted += 1;
            }
        }
        Ok(VacuumMetrics { objects_deleted: deleted, bytes_reclaimed: reclaimed })
    }

    /// Total bytes of data files under the table root (active + garbage).
    pub fn physical_bytes(&self, cred: &Credential) -> DeltaResult<u64> {
        let listed = self.store.list(cred, &self.path)?;
        Ok(listed
            .iter()
            .filter(|m| !m.path.key().contains(crate::log::LOG_DIR))
            .map(|m| m.size as u64)
            .sum())
    }

    fn write_data_file(
        &self,
        cred: &Credential,
        schema: &Schema,
        rows: &[Row],
    ) -> DeltaResult<AddFile> {
        let n = FILE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let name = format!("part-{n:010}.json");
        let data = encode_rows(schema, rows)?;
        let size = data.len() as u64;
        self.store.put(cred, &self.path.child(&name), data)?;
        Ok(AddFile {
            path: name,
            size_bytes: size,
            num_records: rows.len() as u64,
            stats: collect_stats(schema, rows),
            modification_time_ms: self.now_ms(),
        })
    }

    fn now_ms(&self) -> u64 {
        self.store.sts().clock().now_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::value::{DataType, Field, Value};

    fn setup() -> (ObjectStore, Credential, StoragePath) {
        let store = ObjectStore::in_memory();
        let root = store.create_bucket("bkt");
        (store, Credential::Root(root), StoragePath::parse("s3://bkt/tables/t").unwrap())
    }

    fn schema() -> Schema {
        Schema::new(vec![Field::new("id", DataType::Int), Field::new("name", DataType::Str)])
    }

    fn rows(range: std::ops::Range<i64>) -> Vec<Row> {
        range
            .map(|i| vec![Value::Int(i), Value::Str(format!("row{i}"))])
            .collect()
    }

    #[test]
    fn create_append_scan() {
        let (store, cred, path) = setup();
        let t = DeltaTable::create(store, path, &cred, "t1", schema()).unwrap();
        assert_eq!(t.append(&cred, &rows(0..10)).unwrap(), 1);
        assert_eq!(t.append(&cred, &rows(10..20)).unwrap(), 2);
        let (all, _) = t.scan(&cred, None, &EvalContext::anonymous()).unwrap();
        assert_eq!(all.len(), 20);
        let snap = t.snapshot(&cred).unwrap();
        assert_eq!(snap.version, 2);
        assert_eq!(snap.num_records(), 20);
        assert_eq!(snap.files.len(), 2);
    }

    #[test]
    fn scan_with_predicate_prunes_files() {
        let (store, cred, path) = setup();
        let t = DeltaTable::create(store, path, &cred, "t1", schema()).unwrap();
        t.append(&cred, &rows(0..100)).unwrap();
        t.append(&cred, &rows(100..200)).unwrap();
        t.append(&cred, &rows(200..300)).unwrap();
        let pred = Expr::cmp("id", CmpOp::Eq, 150i64);
        let (matched, files_read) = t.scan(&cred, Some(&pred), &EvalContext::anonymous()).unwrap();
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0][0], Value::Int(150));
        assert_eq!(files_read, 1, "stats pruning should skip 2 of 3 files");
    }

    #[test]
    fn append_validates_schema() {
        let (store, cred, path) = setup();
        let t = DeltaTable::create(store, path, &cred, "t1", schema()).unwrap();
        let bad = vec![vec![Value::Str("oops".into()), Value::Int(1)]];
        assert!(matches!(t.append(&cred, &bad), Err(DeltaError::Schema(_))));
    }

    #[test]
    fn time_travel_reads_old_versions() {
        let (store, cred, path) = setup();
        let t = DeltaTable::create(store, path, &cred, "t1", schema()).unwrap();
        t.append(&cred, &rows(0..5)).unwrap(); // v1
        t.append(&cred, &rows(5..10)).unwrap(); // v2
        let old = t.snapshot_at(&cred, 1).unwrap();
        assert_eq!(old.num_records(), 5);
        let new = t.snapshot(&cred).unwrap();
        assert_eq!(new.num_records(), 10);
    }

    #[test]
    fn optimize_compacts_small_files() {
        let (store, cred, path) = setup();
        let t = DeltaTable::create(store, path, &cred, "t1", schema()).unwrap();
        t.append_fragmented(&cred, &rows(0..100), 5).unwrap(); // 20 small files
        assert_eq!(t.snapshot(&cred).unwrap().files.len(), 20);
        let metrics = t.optimize(&cred, 100).unwrap();
        assert_eq!(metrics.files_removed, 20);
        assert_eq!(metrics.files_added, 1);
        assert_eq!(metrics.rows_rewritten, 100);
        let snap = t.snapshot(&cred).unwrap();
        assert_eq!(snap.files.len(), 1);
        assert_eq!(snap.num_records(), 100);
        // data is intact
        let (all, _) = t.scan(&cred, None, &EvalContext::anonymous()).unwrap();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn optimize_noop_when_already_compact() {
        let (store, cred, path) = setup();
        let t = DeltaTable::create(store, path, &cred, "t1", schema()).unwrap();
        t.append(&cred, &rows(0..100)).unwrap();
        let before = t.snapshot(&cred).unwrap().version;
        let metrics = t.optimize(&cred, 50).unwrap();
        assert_eq!(metrics.files_removed, 0);
        assert_eq!(t.snapshot(&cred).unwrap().version, before, "no commit on noop");
    }

    #[test]
    fn vacuum_reclaims_tombstoned_files() {
        let (store, cred, path) = setup();
        let t = DeltaTable::create(store.clone(), path, &cred, "t1", schema()).unwrap();
        t.append_fragmented(&cred, &rows(0..100), 10).unwrap();
        let before_bytes = t.physical_bytes(&cred).unwrap();
        t.optimize(&cred, 100).unwrap();
        // Optimize adds a compacted file; garbage still on storage.
        assert!(t.physical_bytes(&cred).unwrap() > before_bytes);
        let metrics = t.vacuum(&cred).unwrap();
        assert_eq!(metrics.objects_deleted, 10);
        assert!(metrics.bytes_reclaimed > 0);
        // After vacuum only the compacted file remains.
        let snap = t.snapshot(&cred).unwrap();
        assert_eq!(snap.files.len(), 1);
        let (all, _) = t.scan(&cred, None, &EvalContext::anonymous()).unwrap();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn concurrent_appends_one_conflicts() {
        let (store, cred, path) = setup();
        let t = DeltaTable::create(store.clone(), path.clone(), &cred, "t1", schema()).unwrap();
        // Two handles race to commit version 1 manually.
        let t2 = DeltaTable::open(store, path);
        let (v1, a1) = t.prepare_append(&cred, &rows(0..5)).unwrap();
        let (v2, a2) = t2.prepare_append(&cred, &rows(5..10)).unwrap();
        assert_eq!(v1, v2);
        write_commit(t.coordinator().as_ref(), &cred, v1, &a1).unwrap();
        assert!(matches!(
            write_commit(t2.coordinator().as_ref(), &cred, v2, &a2),
            Err(DeltaError::CommitConflict { .. })
        ));
    }

    #[test]
    fn open_nonexistent_table_errors() {
        let (store, cred, path) = setup();
        let t = DeltaTable::open(store, path);
        assert!(matches!(t.snapshot(&cred), Err(DeltaError::NotATable(_))));
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use crate::expr::EvalContext;
    use crate::value::{DataType, Field, Value};

    fn setup() -> (ObjectStore, Credential, DeltaTable) {
        let store = ObjectStore::in_memory();
        let root = store.create_bucket("bkt");
        let cred = Credential::Root(root);
        let path = StoragePath::parse("s3://bkt/tables/cp").unwrap();
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let t = DeltaTable::create(store.clone(), path, &cred, "cp", schema).unwrap();
        (store, cred, t)
    }

    fn row(v: i64) -> Vec<Vec<Value>> {
        vec![vec![Value::Int(v)]]
    }

    #[test]
    fn auto_checkpoint_written_every_interval() {
        let (store, cred, t) = setup();
        for i in 0..CHECKPOINT_INTERVAL {
            t.append(&cred, &row(i)).unwrap();
        }
        let log_dir = t.path().child(crate::log::LOG_DIR);
        let checkpoints: Vec<i64> = store
            .list(&cred, &log_dir)
            .unwrap()
            .iter()
            .filter_map(|m| crate::log::parse_checkpoint_version(m.path.key()))
            .collect();
        assert_eq!(checkpoints, vec![CHECKPOINT_INTERVAL]);
    }

    #[test]
    fn snapshot_from_checkpoint_equals_full_replay() {
        let (_store, cred, t) = setup();
        for i in 0..25 {
            t.append(&cred, &row(i)).unwrap();
        }
        // checkpointed snapshot
        let fast = t.snapshot(&cred).unwrap();
        // force a full replay by reading the raw log
        let full = Snapshot::replay(&read_log(t.coordinator().as_ref(), &cred).unwrap()).unwrap();
        assert_eq!(fast.version, full.version);
        assert_eq!(
            fast.files.keys().collect::<Vec<_>>(),
            full.files.keys().collect::<Vec<_>>()
        );
        assert_eq!(fast.num_records(), full.num_records());
        // and the data reads identically
        let (rows, _) = t.scan(&cred, None, &EvalContext::anonymous()).unwrap();
        assert_eq!(rows.len(), 25);
    }

    #[test]
    fn checkpoint_preserves_tombstones_for_vacuum() {
        let (_store, cred, t) = setup();
        t.append_fragmented(&cred, &(0..40).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(), 10)
            .unwrap();
        t.optimize(&cred, 1000).unwrap(); // creates 4 tombstones at v2
        let v = t.checkpoint(&cred).unwrap();
        assert_eq!(v, 2);
        // the checkpointed snapshot still knows the garbage
        let snap = t.snapshot(&cred).unwrap();
        assert_eq!(snap.tombstones.len(), 4);
        let metrics = t.vacuum(&cred).unwrap();
        assert_eq!(metrics.objects_deleted, 4);
    }

    #[test]
    fn manual_checkpoint_speeds_up_snapshot_reads() {
        let (_store, cred, t) = setup();
        for i in 0..9 {
            t.append(&cred, &row(i)).unwrap();
        }
        let v = t.checkpoint(&cred).unwrap();
        assert_eq!(v, 9);
        t.append(&cred, &row(9)).unwrap(); // auto-checkpoint at 10 too
        let snap = t.snapshot(&cred).unwrap();
        assert_eq!(snap.version, 10);
        assert_eq!(snap.num_records(), 10);
    }
}
