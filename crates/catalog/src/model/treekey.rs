//! Order-preserving tree key codec (TreeCat-style, DESIGN.md §11).
//!
//! A hierarchy path `[seg0, seg1, ..]` encodes to a single string key such
//! that:
//!
//! * **Round trip** — `decode(encode(p)) == p` for arbitrary segment
//!   strings, including empty segments, `|`, `.`, control characters, and
//!   multi-byte unicode.
//! * **Order preservation** — byte order of encoded keys equals
//!   lexicographic order of the segment vectors. This is what turns
//!   `list_children`, subtree drops, and path-overlap checks into single
//!   contiguous range scans.
//! * **Prefix containment** — `encode(parent)` is a *string prefix* of
//!   `encode(child)` for every descendant, so "the subtree of P" is
//!   exactly the key range `[encode(P), successor(encode(P)))`, i.e. one
//!   `scan_prefix`.
//! * **No sibling-prefix trap** — `t1` and `t10` are siblings, never
//!   ancestor/descendant: each segment ends with an unambiguous
//!   terminator byte that cannot appear unescaped in content.
//!
//! Encoding: each segment's characters are emitted verbatim except the
//! bytes `0x00..=0x02`, which are escaped as `ESC` + (byte + 0x10); the
//! segment is then closed with the terminator `TERM` (0x01). Because
//! `TERM` (0x01) sorts below `ESC` (0x02) and below every unescaped
//! content byte (≥ 0x03), a segment that is a strict prefix of its
//! sibling sorts first — and because escaping is char-by-char, the
//! encoding of a *partial* segment is a string prefix of the encoding of
//! any segment extending it (used for group-scoped child listings).
//!
//! Note: ISSUE 9 sketches "length-prefixed" segments; a length prefix
//! breaks byte-order ≡ path-order (length bytes compare before content),
//! so this codec uses terminator-escape framing instead. The deviation is
//! documented in DESIGN.md §11.

/// Segment terminator. Sorts below every other byte that can appear in an
/// encoded key, so shorter paths sort before their extensions.
pub const TERM: char = '\u{1}';

/// Escape lead byte for content bytes `0x00..=0x02`.
pub const ESC: char = '\u{2}';

/// Offset added to an escaped byte: `0x00 → 0x10`, `0x01 → 0x11`,
/// `0x02 → 0x12`. The mapping is order-preserving within the escaped
/// range, and escaped pairs (`0x02 0x10..=0x12`) still sort below any
/// unescaped content byte's first byte only when that byte is > `ESC` —
/// which holds, because every unescaped content byte is ≥ 0x03.
const ESC_OFFSET: u32 = 0x10;

/// Append the escaped form of `segment` to `out`, *without* the closing
/// terminator. The result is a string prefix of the escaped form of any
/// segment that extends `segment` — the primitive behind group-scoped
/// child-listing prefixes.
pub fn escape_into(out: &mut String, segment: &str) {
    for ch in segment.chars() {
        match ch {
            '\u{0}' => {
                out.push(ESC);
                out.push('\u{10}');
            }
            '\u{1}' => {
                out.push(ESC);
                out.push('\u{11}');
            }
            '\u{2}' => {
                out.push(ESC);
                out.push('\u{12}');
            }
            c => out.push(c),
        }
    }
}

/// Append one complete encoded segment (escaped content + terminator).
pub fn push_segment(out: &mut String, segment: &str) {
    escape_into(out, segment);
    out.push(TERM);
}

/// Encode a full path. The empty path encodes to the empty string.
pub fn encode(segments: &[impl AsRef<str>]) -> String {
    let mut out = String::with_capacity(segments.iter().map(|s| s.as_ref().len() + 1).sum());
    for s in segments {
        push_segment(&mut out, s.as_ref());
    }
    out
}

/// Decode an encoded key back to its segments. Returns `None` for
/// malformed input: a dangling escape, an invalid escape pair, or content
/// after the last terminator (every valid key ends with `TERM`).
pub fn decode(key: &str) -> Option<Vec<String>> {
    let mut segments = Vec::new();
    let mut cur = String::new();
    let mut dirty = false;
    let mut chars = key.chars();
    while let Some(ch) = chars.next() {
        match ch {
            TERM => {
                segments.push(std::mem::take(&mut cur));
                dirty = false;
            }
            ESC => {
                let esc = chars.next()?;
                let raw = (esc as u32).checked_sub(ESC_OFFSET)?;
                if raw > 0x02 {
                    return None;
                }
                cur.push(char::from_u32(raw)?);
                dirty = true;
            }
            c => {
                cur.push(c);
                dirty = true;
            }
        }
    }
    if dirty || !cur.is_empty() {
        return None; // trailing unterminated segment
    }
    Some(segments)
}

/// Number of complete segments in an encoded key (its depth). Counts raw
/// terminator bytes — escaped content never contains one, so this needs
/// no decoding and is safe to run per-row while filtering a range scan.
pub fn depth(key: &str) -> usize {
    key.bytes().filter(|b| *b == TERM as u8).count()
}

/// Iterate the encoded ancestor chain of `key`: every prefix of `key`
/// that ends at a segment terminator, shortest first, including `key`
/// itself when it is a complete encoded path.
pub fn chain_prefixes(key: &str) -> impl Iterator<Item = &str> {
    key.bytes()
        .enumerate()
        .filter(|(_, b)| *b == TERM as u8)
        .map(move |(i, _)| &key[..=i])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(segs: &[&str]) -> String {
        encode(segs)
    }

    #[test]
    fn round_trip_plain_and_special() {
        for segs in [
            vec!["ms", "catalog:main", "schema:s", "relation:t"],
            vec![""],
            vec!["", ""],
            vec!["a|b.c/d"],
            vec!["\u{0}\u{1}\u{2}", "naïve-ünïcode-日本語"],
        ] {
            let key = enc(&segs);
            assert_eq!(decode(&key).unwrap(), segs, "round trip for {segs:?}");
        }
        assert_eq!(decode("").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn malformed_keys_decode_to_none() {
        assert!(decode("abc").is_none(), "unterminated segment");
        assert!(decode("\u{2}").is_none(), "dangling escape");
        assert!(decode("\u{2}\u{7f}\u{1}").is_none(), "invalid escape pair");
    }

    #[test]
    fn parent_key_is_string_prefix_of_descendants() {
        let parent = enc(&["ms", "catalog:main"]);
        let child = enc(&["ms", "catalog:main", "schema:s"]);
        let grandchild = enc(&["ms", "catalog:main", "schema:s", "relation:t"]);
        assert!(child.starts_with(&parent));
        assert!(grandchild.starts_with(&child));
    }

    #[test]
    fn sibling_prefix_trap_regressions() {
        // `t1` vs `t10`: siblings, not ancestor/descendant.
        let t1 = enc(&["ms", "s", "t1"]);
        let t10 = enc(&["ms", "s", "t10"]);
        assert!(!t10.starts_with(&t1));
        assert!(t1 < t10, "shorter sibling sorts first");
        // `ware` vs `warehouse`
        let ware = enc(&["ms", "ware"]);
        let warehouse = enc(&["ms", "warehouse"]);
        assert!(!warehouse.starts_with(&ware));
        assert!(ware < warehouse);
        // But a real descendant of `ware` *does* live under its prefix,
        // and still sorts between `ware` and `warehouse`.
        let under = enc(&["ms", "ware", "x"]);
        assert!(under.starts_with(&ware));
        assert!(ware < under && under < warehouse);
    }

    #[test]
    fn key_order_matches_path_order() {
        let paths: Vec<Vec<&str>> = vec![
            vec!["a"],
            vec!["a", ""],
            vec!["a", "b"],
            vec!["a", "b", "c"],
            vec!["a", "bc"],
            vec!["a\u{1}b"], // content terminator escapes, stays one segment
            vec!["ab"],
            vec!["b"],
        ];
        let keys: Vec<String> = paths.iter().map(|p| enc(p)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "encoded order must equal path order");
    }

    #[test]
    fn partial_escape_is_prefix_of_full_segment() {
        let mut partial = enc(&["ms", "parent"]);
        escape_into(&mut partial, "relation:");
        let full = enc(&["ms", "parent", "relation:orders"]);
        assert!(full.starts_with(&partial));
        let other_group = enc(&["ms", "parent", "volume:v"]);
        assert!(!other_group.starts_with(&partial));
    }

    #[test]
    fn depth_counts_segments_without_decoding() {
        assert_eq!(depth(&enc(&["ms"])), 1);
        assert_eq!(depth(&enc(&["ms", "c", "s", "t"])), 4);
        // an escaped 0x01 in content must not count as a boundary
        assert_eq!(depth(&enc(&["a\u{1}b"])), 1);
    }

    #[test]
    fn chain_prefixes_yields_every_ancestor() {
        let key = enc(&["ms", "c", "s", "t"]);
        let chain: Vec<&str> = chain_prefixes(&key).collect();
        assert_eq!(
            chain,
            vec![
                enc(&["ms"]),
                enc(&["ms", "c"]),
                enc(&["ms", "c", "s"]),
                enc(&["ms", "c", "s", "t"]),
            ]
        );
    }
}
