// Vendored offline shim (see shims/README.md): not held to workspace lint
// standards so the call-site-compatible surface can stay close to upstream.
#![allow(clippy::all)]

//! Workspace-local stand-in for `serde_json`.
//!
//! Prints and parses the shim `serde` crate's [`Value`] content tree as
//! JSON text. Covers the API surface the workspace uses: `to_string`,
//! `to_string_pretty`, `to_vec`, `from_str`, `from_slice`, `to_value`,
//! `from_value`, the [`Value`] type (re-exported from `serde`), and the
//! `json!` macro (a tt-muncher following the canonical structure, so
//! nested literals, match expressions, and iterator pipelines all work
//! as values). Numbers preserve u64 magnitudes above `i64::MAX`.

pub use serde::{Error, Number, Value};

use serde::{DeserializeOwned, Serialize};

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization entry points
// ---------------------------------------------------------------------------

pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_content())
}

pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::from_content(&value)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_content(&value)
}

pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::I64(v) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{v}"));
        }
        Number::U64(v) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{v}"));
        }
        Number::F64(v) if v.is_finite() => {
            // Debug formatting keeps a decimal point ("1.0") and is the
            // shortest representation that round-trips.
            let _ = std::fmt::Write::write_fmt(out, format_args!("{v:?}"));
        }
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::I64(v)));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| self.err("bad number"))
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Convert an arbitrary `Serialize` expression inside `json!`.
#[doc(hidden)]
pub fn __to_json_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //
    // @array: build up a vec of array elements.
    //
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };
    (@array [$($elems:expr),*] $unexpected:tt $($rest:tt)*) => {
        $crate::json_unexpected!($unexpected)
    };

    //
    // @object: munch key tokens, then the value, pushing entries.
    //
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).into(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr) $unexpected:tt $($rest:tt)*) => {
        $crate::json_unexpected!($unexpected);
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).into(), $value));
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)+) (:) $copy:tt) => {
        // Missing value.
        $crate::json_internal!();
    };
    (@object $object:ident ($($key:tt)+) () $copy:tt) => {
        // Missing colon and value.
        $crate::json_internal!();
    };
    (@object $object:ident () (: $($rest:tt)*) ($colon:tt $($copy:tt)*)) => {
        // Missing key.
        $crate::json_unexpected!($colon);
    };
    (@object $object:ident ($($key:tt)*) (, $($rest:tt)*) ($comma:tt $($copy:tt)*)) => {
        // Misplaced comma.
        $crate::json_unexpected!($comma);
    };
    (@object $object:ident () (($key:expr) : $($rest:tt)*) $copy:tt) => {
        // Parenthesized key.
        $crate::json_internal!(@object $object ($key) (: $($rest)*) (: $($rest)*));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        // Munch one token into the current key.
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //
    // Entry points.
    //
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object(::std::vec::Vec::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::__to_json_value(&$other)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_unexpected {
    () => {};
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for text in ["null", "true", "false", "0", "-7", "1.5", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            assert_eq!(back, text, "roundtrip of {text}");
        }
    }

    #[test]
    fn u64_preserved_above_i64_max() {
        let big = u64::MAX - 3;
        let text = big.to_string();
        let v: Value = from_str(&text).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn object_and_array_parse() {
        let v: Value = from_str(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert!(v["a"][1]["b"].is_null());
        assert_eq!(v["c"], "x");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn json_macro_shapes() {
        let name = String::from("n");
        let items: Vec<Value> = (0..2).map(|i| json!({ "i": i })).collect::<Vec<_>>();
        let v = json!({
            "name": name,
            "flag": true,
            "none": Option::<String>::None,
            "nested": {"list": [1, 2, 3]},
            "items": items,
            "picked": match 1 + 1 {
                2 => "two",
                _ => "other",
            },
        });
        assert_eq!(v["name"], "n");
        assert_eq!(v["flag"], true);
        assert!(v["none"].is_null());
        assert_eq!(v["nested"]["list"].as_array().unwrap().len(), 3);
        assert_eq!(v["items"].as_array().unwrap().len(), 2);
        assert_eq!(v["picked"], "two");
        assert_eq!(json!({}), Value::Object(Vec::new()));
        assert_eq!(json!([]), Value::Array(Vec::new()));
    }

    #[test]
    fn pretty_output_roundtrips() {
        let v = json!({"a": {"b": [1.25, "x"]}});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::String("a\"b\\c\u{1}d\u{1F600}".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let unicode: Value = from_str(r#""😀""#).unwrap();
        assert_eq!(unicode.as_str(), Some("\u{1F600}"));
    }
}
