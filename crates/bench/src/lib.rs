//! Shared harness for the figure-regeneration binaries and benches.
//!
//! Every table and figure in the paper's evaluation (§6) has a binary in
//! `src/bin/` that regenerates it; this library holds what they share —
//! world bootstrapping with configurable latency models, a closed-loop
//! load generator, latency summaries, and plain-text table output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use uc_catalog::ids::Uid;
use uc_catalog::service::{Context, UcConfig, UnityCatalog};
use uc_cloudstore::{LatencyModel, ObjectStore, StsService, Clock};
use uc_txdb::{Db, DbConfig};

pub use uc_workload as workload;

/// The administrator principal every harness world uses.
pub const ADMIN: &str = "admin";

/// A bootstrapped catalog world.
pub struct World {
    pub db: Db,
    pub store: ObjectStore,
    pub uc: Arc<UnityCatalog>,
    pub ms: Uid,
}

/// Knobs for world construction.
pub struct WorldConfig {
    /// Database connection pool size.
    pub db_pool: usize,
    /// Per-operation database latency.
    pub db_latency: Duration,
    /// Engine→catalog network hop latency.
    pub api_latency: Duration,
    /// Object storage per-operation latency.
    pub storage_latency: Duration,
    /// Metadata cache enabled?
    pub cache: bool,
    /// Credential cache enabled?
    pub cred_cache: bool,
    /// STS mint round-trip cost.
    pub sts_mint_cost: Duration,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            db_pool: 64,
            db_latency: Duration::ZERO,
            api_latency: Duration::ZERO,
            storage_latency: Duration::ZERO,
            cache: true,
            cred_cache: true,
            sts_mint_cost: Duration::ZERO,
        }
    }
}

impl World {
    /// Build a world: database + storage + one catalog node + a metastore
    /// with a storage credential and managed root configured.
    pub fn build(cfg: &WorldConfig) -> World {
        let db = Db::new(DbConfig {
            pool_size: cfg.db_pool,
            latency: LatencyModel::uniform(cfg.db_latency),
            ..Default::default()
        });
        let store = ObjectStore::new(
            StsService::new(Clock::system()),
            LatencyModel::uniform(cfg.storage_latency),
        );
        let uc_config = UcConfig {
            api_latency: LatencyModel::uniform(cfg.api_latency),
            cache: if cfg.cache {
                uc_catalog::cache::CacheConfig::default()
            } else {
                uc_catalog::cache::CacheConfig::disabled()
            },
            cred_cache_enabled: cfg.cred_cache,
            sts_mint_cost: cfg.sts_mint_cost,
            ..Default::default()
        };
        let uc = UnityCatalog::new(db.clone(), store.clone(), uc_config, "node-0");
        let ms = uc.create_metastore(ADMIN, "bench", "us-west-2").unwrap();
        let ctx = Context::user(ADMIN);
        let root = store.create_bucket("lake");
        uc.create_storage_credential(&ctx, &ms, "lake_cred", &root).unwrap();
        uc.set_metastore_root(&ctx, &ms, "s3://lake/managed").unwrap();
        World { db, store, uc, ms }
    }

    pub fn admin(&self) -> Context {
        Context::user(ADMIN)
    }
}

/// Latency summary of one load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadSummary {
    pub requests: u64,
    pub wall: Duration,
    pub throughput_rps: f64,
    pub mean: Duration,
    pub p50: Duration,
    pub p99: Duration,
}

/// Run a closed loop: `threads` workers issue `op` back-to-back for
/// `duration`, collecting per-request latencies.
pub fn closed_loop(
    threads: usize,
    duration: Duration,
    op: impl Fn() + Send + Sync,
) -> LoadSummary {
    let op = &op;
    let total = AtomicU64::new(0);
    let latencies: parking_lot::Mutex<Vec<u64>> = parking_lot::Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::with_capacity(4096);
                while start.elapsed() < duration {
                    let t0 = Instant::now();
                    op();
                    local.push(t0.elapsed().as_nanos() as u64);
                }
                total.fetch_add(local.len() as u64, Ordering::Relaxed);
                latencies.lock().extend(local);
            });
        }
    });
    let wall = start.elapsed();
    let mut lat = latencies.into_inner();
    lat.sort_unstable();
    let requests = total.load(Ordering::Relaxed);
    let pct = |q: f64| -> Duration {
        if lat.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((lat.len() as f64 - 1.0) * q) as usize;
        Duration::from_nanos(lat[idx])
    };
    let mean = if lat.is_empty() {
        Duration::ZERO
    } else {
        Duration::from_nanos(lat.iter().sum::<u64>() / lat.len() as u64)
    };
    LoadSummary {
        requests,
        wall,
        throughput_rps: requests as f64 / wall.as_secs_f64(),
        mean,
        p50: pct(0.5),
        p99: pct(0.99),
    }
}

/// Time a single closure.
pub fn time_it(f: impl FnOnce()) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

/// Mean and standard deviation of durations, in milliseconds.
pub fn mean_std_ms(samples: &[Duration]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    let mean = ms.iter().sum::<f64>() / ms.len() as f64;
    let var = ms.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / ms.len() as f64;
    (mean, var.sqrt())
}

/// Render a plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format bytes human-readably.
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.1} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} KB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

/// Format a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us >= 1_000_000 {
        format!("{:.2} s", d.as_secs_f64())
    } else if us >= 1_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_and_serves() {
        let w = World::build(&WorldConfig::default());
        let ctx = w.admin();
        w.uc.create_catalog(&ctx, &w.ms, "main").unwrap();
        assert_eq!(w.uc.list_catalogs(&ctx, &w.ms).unwrap().len(), 1);
    }

    #[test]
    fn closed_loop_measures_throughput() {
        let counter = AtomicU64::new(0);
        let summary = closed_loop(4, Duration::from_millis(100), || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(summary.requests, counter.load(Ordering::Relaxed));
        assert!(summary.throughput_rps > 1000.0);
        assert!(summary.p99 >= summary.p50);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2_500_000.0), "2.5 MB");
        assert!(fmt_dur(Duration::from_micros(250)).contains("µs"));
        assert!(fmt_dur(Duration::from_millis(5)).contains("ms"));
        let (m, s) = mean_std_ms(&[Duration::from_millis(10), Duration::from_millis(10)]);
        assert!((m - 10.0).abs() < 1e-9);
        assert!(s.abs() < 1e-9);
    }
}
