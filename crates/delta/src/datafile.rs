//! Data-file encoding and statistics collection.
//!
//! Data files are JSON row groups — a stand-in for Parquet that preserves
//! what the experiments need: per-file min/max/null statistics enabling
//! scan pruning, and a realistic relationship between row count and file
//! size so OPTIMIZE/compaction has something to optimize.

use std::collections::BTreeMap;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::actions::ColumnStats;
use crate::error::{DeltaError, DeltaResult};
use crate::value::{Row, Schema, Value};

/// On-storage representation of a data file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataFile {
    pub rows: Vec<Row>,
}

/// Encode rows, validating each against the schema.
pub fn encode_rows(schema: &Schema, rows: &[Row]) -> DeltaResult<Bytes> {
    for row in rows {
        schema.validate_row(row).map_err(DeltaError::Schema)?;
    }
    let file = DataFile { rows: rows.to_vec() };
    // uc-lint: allow(hygiene) -- rows were schema-validated above; serialization is infallible
    Ok(Bytes::from(serde_json::to_vec(&file).expect("rows serialize")))
}

/// Decode a data file.
pub fn decode_rows(data: &[u8]) -> DeltaResult<Vec<Row>> {
    let file: DataFile = serde_json::from_slice(data)
        .map_err(|e| DeltaError::Corrupt(format!("bad data file: {e}")))?;
    Ok(file.rows)
}

/// Compute per-column min/max/null-count statistics for a row batch.
pub fn collect_stats(schema: &Schema, rows: &[Row]) -> BTreeMap<String, ColumnStats> {
    let mut stats: BTreeMap<String, ColumnStats> = BTreeMap::new();
    for (idx, field) in schema.fields.iter().enumerate() {
        let mut s = ColumnStats::default();
        for row in rows {
            match row.get(idx) {
                Some(Value::Null) | None => s.null_count += 1,
                Some(v) => {
                    let lower = match &s.min {
                        Some(cur) => v.try_cmp(cur) == Some(std::cmp::Ordering::Less),
                        None => true,
                    };
                    if lower {
                        s.min = Some(v.clone());
                    }
                    let higher = match &s.max {
                        Some(cur) => v.try_cmp(cur) == Some(std::cmp::Ordering::Greater),
                        None => true,
                    };
                    if higher {
                        s.max = Some(v.clone());
                    }
                }
            }
        }
        stats.insert(field.name.clone(), s);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
        ])
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = schema();
        let rows = vec![
            vec![Value::Int(1), Value::Str("a".into())],
            vec![Value::Int(2), Value::Null],
        ];
        let bytes = encode_rows(&s, &rows).unwrap();
        assert_eq!(decode_rows(&bytes).unwrap(), rows);
    }

    #[test]
    fn encode_rejects_invalid_rows() {
        let s = schema();
        let bad = vec![vec![Value::Str("not an int".into()), Value::Null]];
        assert!(matches!(encode_rows(&s, &bad), Err(DeltaError::Schema(_))));
    }

    #[test]
    fn stats_cover_min_max_nulls() {
        let s = schema();
        let rows = vec![
            vec![Value::Int(5), Value::Str("m".into())],
            vec![Value::Int(-3), Value::Null],
            vec![Value::Int(9), Value::Str("a".into())],
        ];
        let stats = collect_stats(&s, &rows);
        assert_eq!(stats["id"].min, Some(Value::Int(-3)));
        assert_eq!(stats["id"].max, Some(Value::Int(9)));
        assert_eq!(stats["id"].null_count, 0);
        assert_eq!(stats["name"].min, Some(Value::Str("a".into())));
        assert_eq!(stats["name"].max, Some(Value::Str("m".into())));
        assert_eq!(stats["name"].null_count, 1);
    }

    #[test]
    fn stats_of_empty_batch_are_empty() {
        let stats = collect_stats(&schema(), &[]);
        assert_eq!(stats["id"].min, None);
        assert_eq!(stats["id"].null_count, 0);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_rows(b"[[[").is_err());
    }
}
