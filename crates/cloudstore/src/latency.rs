//! Injected latency model for storage and database operations.
//!
//! The paper's performance figures depend on where the latency lives:
//! network hops to a remote catalog, database reads behind a bounded
//! connection pool, and object-store round trips. Benchmarks configure a
//! [`LatencyModel`] per component; unit tests use [`LatencyModel::zero`].

use std::time::Duration;

/// Classes of operations that may have distinct costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Point read of one object / row.
    Read,
    /// Write of one object / row.
    Write,
    /// Listing / range scan.
    List,
    /// Control-plane round trip (e.g. credential mint).
    Control,
}

/// Fixed per-class latencies, applied by busy-sleeping the calling thread.
#[derive(Debug, Clone, Default)]
pub struct LatencyModel {
    read: Duration,
    write: Duration,
    list: Duration,
    control: Duration,
}

impl LatencyModel {
    /// No injected latency — the right choice for unit tests.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Uniform latency for all operation classes.
    pub fn uniform(d: Duration) -> Self {
        LatencyModel { read: d, write: d, list: d, control: d }
    }

    /// Build with explicit per-class durations.
    pub fn per_class(read: Duration, write: Duration, list: Duration, control: Duration) -> Self {
        LatencyModel { read, write, list, control }
    }

    /// Latency configured for `class`.
    pub fn duration(&self, class: OpClass) -> Duration {
        match class {
            OpClass::Read => self.read,
            OpClass::Write => self.write,
            OpClass::List => self.list,
            OpClass::Control => self.control,
        }
    }

    /// Block the calling thread for the configured duration. Zero-cost when
    /// the duration is zero.
    pub fn apply(&self, class: OpClass) {
        let d = self.duration(class);
        if !d.is_zero() {
            spin_sleep(d);
        }
    }
}

/// Sleep with better-than-scheduler accuracy for sub-millisecond latencies:
/// `thread::sleep` on Linux typically overshoots by ~50µs+, which would
/// distort throughput curves at high request rates. We sleep for the bulk
/// and spin the remainder.
fn spin_sleep(d: Duration) {
    let start = std::time::Instant::now();
    if d > Duration::from_micros(200) {
        std::thread::sleep(d - Duration::from_micros(150));
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_applies_instantly() {
        let m = LatencyModel::zero();
        let start = std::time::Instant::now();
        for _ in 0..1000 {
            m.apply(OpClass::Read);
        }
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn uniform_model_sleeps_at_least_duration() {
        let m = LatencyModel::uniform(Duration::from_micros(500));
        let start = std::time::Instant::now();
        m.apply(OpClass::Write);
        assert!(start.elapsed() >= Duration::from_micros(500));
    }

    #[test]
    fn per_class_durations_are_respected() {
        let m = LatencyModel::per_class(
            Duration::from_millis(1),
            Duration::from_millis(2),
            Duration::from_millis(3),
            Duration::from_millis(4),
        );
        assert_eq!(m.duration(OpClass::Read), Duration::from_millis(1));
        assert_eq!(m.duration(OpClass::Write), Duration::from_millis(2));
        assert_eq!(m.duration(OpClass::List), Duration::from_millis(3));
        assert_eq!(m.duration(OpClass::Control), Duration::from_millis(4));
    }
}
