//! Unique identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 128-bit random identifier rendered as 32 hex characters.
///
/// Used for every entity in the catalog (metastores, catalogs, schemas,
/// assets). IDs are stable across renames — the namespace maps names to
/// IDs, and all internal references (ownership, grants, lineage, paths)
/// are by ID.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Uid(String);

impl Uid {
    /// Generate a fresh random id from the audited process-wide seed
    /// stream (UC_SEED-pinnable; never ambient `thread_rng`).
    pub fn generate() -> Self {
        let hi = uc_cloudstore::seed::next_u64();
        let lo = uc_cloudstore::seed::next_u64();
        Uid(format!("{hi:016x}{lo:016x}"))
    }

    /// Construct from an existing string (e.g. decoded from storage).
    pub fn from_string(s: String) -> Self {
        Uid(s)
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Uid {
    fn from(s: &str) -> Self {
        Uid(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generated_ids_are_32_hex_chars() {
        let id = Uid::generate();
        assert_eq!(id.as_str().len(), 32);
        assert!(id.as_str().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn generated_ids_are_unique() {
        let ids: HashSet<_> = (0..10_000).map(|_| Uid::generate()).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn serde_roundtrip_is_transparent() {
        let id = Uid::generate();
        let json = serde_json::to_string(&id).unwrap();
        let back: Uid = serde_json::from_str(&json).unwrap();
        assert_eq!(id, back);
    }
}
