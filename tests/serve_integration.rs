//! Serving-plane integration suite: coalescing exactly-once, audited
//! shedding, bounded virtual-clock retry, deterministic replay, and the
//! read-your-snapshot flight key.
//!
//! The correctness contract under test (DESIGN.md §10):
//!
//! * N racing `getTable`s for one key produce **exactly one database
//!   execution and one audit record per flight** — leaders do real work,
//!   followers are free;
//! * an over-budget request is **shed, never dropped silently**: a typed
//!   429, a `requestShed` deny in the audit trail, a `serve.shed` tick;
//! * retry backoff runs on the injected clock — deterministic and
//!   instant under a manual clock;
//! * the deterministic replay of an open-loop schedule is a pure
//!   function of its seed, with per-tenant telemetry obeying the
//!   conservation law;
//! * the flight key embeds the metastore cache version, so an
//!   invalidation can never serve a stale leader result to a
//!   post-invalidation arrival.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use uc_bench::{labeled_counter_sum, parse_snapshot, SnapshotValue, World, WorldConfig};
use uc_catalog::audit::AuditDecision;
use uc_catalog::service::crud::TableSpec;
use uc_catalog::service::rest::ApiError;
use uc_catalog::service::{Context, UcConfig, UnityCatalog};
use uc_catalog::{FullName, UcError};
use uc_cloudstore::{Clock, LatencyModel, ObjectStore, StsService};
use uc_delta::value::{DataType, Field, Schema};
use uc_obs::Obs;
use uc_serve::replay::{run_with, ReplayBinding};
use uc_serve::{replay, RetryPolicy, Role, ServeConfig, ServePlane};
use uc_txdb::{Db, DbConfig};
use uc_workload::openloop::{OpenLoopParams, Schedule};

const ADMIN: &str = "admin";
const TABLES: usize = 8;

fn seed_tables(uc: &UnityCatalog, ctx: &Context, ms: &uc_catalog::Uid) {
    uc.create_catalog(ctx, ms, "main").unwrap();
    uc.create_schema(ctx, ms, "main", "s").unwrap();
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    for i in 0..TABLES {
        uc.create_table(
            ctx,
            ms,
            TableSpec::managed(&format!("main.s.t{i}"), schema.clone()).unwrap(),
        )
        .unwrap();
    }
}

/// A cache-miss world: every read goes to the (latency-modelled) db.
fn miss_world() -> World {
    let world = World::build(&WorldConfig {
        db_pool: 8,
        db_latency: Duration::from_millis(2),
        cache: false,
        ..Default::default()
    });
    seed_tables(&world.uc, &world.admin(), &world.ms);
    world
}

/// A manual-clock world (instant, deterministic) for replay and backoff
/// tests; `cache` controls whether the metastore version can advance.
fn manual_world(cache: bool) -> (Arc<UnityCatalog>, uc_catalog::Uid) {
    let clock = Clock::manual(0);
    let obs_clock = clock.clone();
    let obs = Obs::with_clock_fn(Arc::new(move || obs_clock.now_ms()));
    let sts = StsService::new(clock).with_obs(obs.clone());
    let store = ObjectStore::new(sts, LatencyModel::zero()).with_obs(obs.clone());
    let db = Db::new(DbConfig { obs: obs.clone(), ..Default::default() });
    let uc = UnityCatalog::new(
        db,
        store.clone(),
        UcConfig {
            cache: if cache {
                uc_catalog::cache::CacheConfig::default()
            } else {
                uc_catalog::cache::CacheConfig::disabled()
            },
            obs,
            ..Default::default()
        },
        "node-0",
    );
    let ms = uc.create_metastore(ADMIN, "serve", "us-west-2").unwrap();
    let ctx = Context::user(ADMIN);
    let root = store.create_bucket("lake");
    uc.create_storage_credential(&ctx, &ms, "lake_cred", &root).unwrap();
    uc.set_metastore_root(&ctx, &ms, "s3://lake/managed").unwrap();
    seed_tables(&uc, &ctx, &ms);
    (uc, ms)
}

fn db_reads(uc: &UnityCatalog) -> u64 {
    match parse_snapshot(&uc.metrics_snapshot()).get("txdb.read.count") {
        Some(SnapshotValue::Counter(n)) => *n,
        _ => 0,
    }
}

fn counter(uc: &UnityCatalog, name: &str) -> u64 {
    match parse_snapshot(&uc.metrics_snapshot()).get(name) {
        Some(SnapshotValue::Counter(n)) => *n,
        _ => 0,
    }
}

/// N threads racing the same key share flights: every request is served
/// (leader xor follower), each flight is exactly one catalog execution —
/// the database and the audit trail both count leaders, never N.
#[test]
fn racing_get_tables_coalesce_exactly_once() {
    let world = miss_world();
    let plane = Arc::new(ServePlane::new(world.uc.clone(), ServeConfig::default()));
    plane.register_tenant(&world.ms, "serve");
    let ctx = world.admin();

    // Calibrate: one uncontended call's database read count (the chain
    // walk; constant shape for any 3-part name with the cache off).
    let before = db_reads(&world.uc);
    plane.get_table(&ctx, &world.ms, "main.s.t1").unwrap();
    let reads_per_call = db_reads(&world.uc) - before;
    assert!(reads_per_call > 0, "cache-off getTable must read the db");
    let audits_before = world
        .uc
        .audit_log()
        .query(|r| r.action == "getSecurable" && r.detail.contains("main.s.t0"))
        .len() as u64;

    const N: usize = 16;
    let before = db_reads(&world.uc);
    let leaders = AtomicU64::new(0);
    let followers = AtomicU64::new(0);
    let barrier = Barrier::new(N);
    std::thread::scope(|scope| {
        for _ in 0..N {
            scope.spawn(|| {
                barrier.wait();
                let served = plane.get_table(&ctx, &world.ms, "main.s.t0").unwrap();
                assert_eq!(served.value.name, "t0");
                match served.role {
                    Role::Leader => leaders.fetch_add(1, Ordering::Relaxed),
                    Role::Follower => followers.fetch_add(1, Ordering::Relaxed),
                };
            });
        }
    });
    let leaders = leaders.load(Ordering::Relaxed);
    let followers = followers.load(Ordering::Relaxed);

    // Every request served exactly once; at least one flight coalesced.
    assert_eq!(leaders + followers, N as u64);
    assert!(leaders >= 1);
    assert!(
        followers > 0,
        "16 simultaneous misses at 2 ms/db-read must share at least one flight"
    );
    // Exactly one database execution per leader — followers are free.
    assert_eq!(db_reads(&world.uc) - before, leaders * reads_per_call);
    // Exactly one audit record per leader (the coalesced requests never
    // reached the catalog, so they cannot double-audit).
    let audits = world
        .uc
        .audit_log()
        .query(|r| r.action == "getSecurable" && r.detail.contains("main.s.t0"))
        .len() as u64;
    assert_eq!(audits - audits_before, leaders);
    // Telemetry agrees with the observed roles.
    assert_eq!(counter(&world.uc, "serve.coalesce.followers"), followers);
}

/// Over-budget requests shed loudly: typed 429, audited deny, counted.
#[test]
fn shed_is_audited_and_maps_to_429() {
    let (uc, ms) = manual_world(false);
    let plane = ServePlane::new(
        uc.clone(),
        ServeConfig { queue_capacity: 0, ..ServeConfig::default() },
    );
    plane.register_tenant(&ms, "serve");
    let ctx = Context::user(ADMIN);

    let err = plane.get_table(&ctx, &ms, "main.s.t0").unwrap_err();
    let UcError::ResourceExhausted(_) = &err else {
        panic!("expected ResourceExhausted, got {err:?}");
    };
    assert_eq!(ApiError::from(err).status, 429, "shed must surface as HTTP 429");

    let sheds = uc.audit_log().query(|r| {
        r.action == "requestShed" && r.decision == AuditDecision::Deny && r.principal == ADMIN
    });
    assert_eq!(sheds.len(), 1, "every shed is exactly one audited deny");
    assert_eq!(counter(&uc, "serve.shed"), 1);
    // Resolve sheds through the same contract.
    let refs = vec![FullName::parse("main.s.t0").unwrap()];
    let err = plane.resolve(&ctx, &ms, refs, false).unwrap_err();
    assert!(matches!(err, UcError::ResourceExhausted(_)));
    assert_eq!(counter(&uc, "serve.shed"), 2);
}

/// Shed-and-retry backoff is bounded and driven by the injected clock:
/// on a manual clock it is instant and advances virtual time exactly.
#[test]
fn retry_backoff_is_bounded_and_virtual() {
    let (uc, ms) = manual_world(false);
    let plane = ServePlane::new(
        uc.clone(),
        ServeConfig {
            queue_capacity: 0,
            retry: RetryPolicy { max_retries: 3, base_ms: 4 },
            ..ServeConfig::default()
        },
    );
    plane.register_tenant(&ms, "serve");
    let ctx = Context::user(ADMIN);
    let t0 = uc.clock().now_ms();
    let err = plane.get_table_with_retry(&ctx, &ms, "main.s.t0").unwrap_err();
    assert!(matches!(err, UcError::ResourceExhausted(_)));
    // Four shed attempts (initial + 3 retries), backoffs 4, 8, 16 ms.
    assert_eq!(uc.clock().now_ms() - t0, 4 + 8 + 16);
    assert_eq!(counter(&uc, "serve.retries"), 3);
    assert_eq!(counter(&uc, "serve.shed"), 4);
    assert_eq!(
        uc.audit_log().query(|r| r.action == "requestShed").len(),
        4,
        "every attempt's shed is audited"
    );
}

fn replay_fixture() -> (Arc<UnityCatalog>, ServePlane, Schedule, ReplayBinding) {
    let (uc, ms) = manual_world(false);
    let plane = ServePlane::new(
        uc.clone(),
        ServeConfig { queue_capacity: 8, ..ServeConfig::default() },
    );
    plane.register_tenant(&ms, "serve");
    let mut params = OpenLoopParams::fig5(42, 60_000.0);
    params.horizon_ms = 50;
    params.tenants = 2;
    let schedule = Schedule::generate(&params);
    let names: Vec<String> = (0..TABLES).map(|i| format!("main.s.t{i}")).collect();
    let binding = ReplayBinding {
        ms: ms.clone(),
        contexts: (0..params.tenants).map(|t| Context::user(&format!("tenant{t}"))).collect(),
        tables: (0..params.tenants).map(|_| names.clone()).collect(),
        want_credentials: false,
    };
    let admin = Context::user(ADMIN);
    for t in 0..params.tenants {
        for name in &names {
            uc.grant_read_path(&admin, &ms, name, &format!("tenant{t}")).unwrap();
        }
    }
    (uc, plane, schedule, binding)
}

/// Same seed ⇒ byte-identical replay: the report, the serve counters,
/// and the audit trail are pure functions of the schedule.
#[test]
fn replay_is_deterministic_and_conserves_telemetry() {
    let serve_counters = |uc: &UnityCatalog| -> String {
        let snapshot = uc.metrics_snapshot();
        let mut lines: Vec<&str> = snapshot
            .lines()
            .filter(|l| l.starts_with("serve.") && l.contains(" counter "))
            .collect();
        lines.sort_unstable();
        lines.join("\n")
    };

    let (uc_a, plane_a, schedule, binding_a) = replay_fixture();
    let report_a = replay::run(&plane_a, &schedule, &binding_a);
    let (uc_b, plane_b, _, binding_b) = replay_fixture();
    let report_b = replay::run(&plane_b, &schedule, &binding_b);

    assert_eq!(report_a, report_b, "replay report must be seed-pure");
    assert_eq!(
        report_a.canonical_text(),
        report_b.canonical_text(),
        "canonical artifact must be byte-identical"
    );
    assert_eq!(
        serve_counters(&uc_a),
        serve_counters(&uc_b),
        "serve telemetry must be byte-identical across replays"
    );
    // Audit trails agree in shape: every shed is a deny, counted once.
    let shed_audits =
        |uc: &UnityCatalog| uc.audit_log().query(|r| r.action == "requestShed").len() as u64;
    assert_eq!(shed_audits(&uc_a), report_a.shed);
    assert_eq!(shed_audits(&uc_b), report_a.shed);

    // The storm actually exercised every mechanism.
    assert!(report_a.shed > 0, "8-deep budget under 60 K rps must shed");
    assert!(report_a.followers > 0, "hot keys must coalesce");
    assert!(report_a.batches > 0, "resolve arrivals must batch");
    assert_eq!(report_a.errors, 0);

    // Serve accounting: every admitted request is served exactly once.
    assert_eq!(
        report_a.admitted,
        report_a.leaders + report_a.followers + report_a.batch_items
    );
    // Conservation law: per-tenant cells (plus overflow) sum exactly to
    // each global serve counter.
    let parsed = parse_snapshot(&uc_a.metrics_snapshot());
    for base in ["serve.admitted", "serve.shed", "serve.coalesce.leaders", "serve.coalesce.followers"] {
        let global = match parsed.get(base) {
            Some(SnapshotValue::Counter(n)) => *n,
            other => panic!("{base} missing: {other:?}"),
        };
        assert_eq!(
            labeled_counter_sum(&parsed, &format!("{base}.by_tenant")),
            global,
            "{base}.by_tenant must sum to the global counter"
        );
    }
}

/// The flight key embeds the metastore cache version: an invalidation
/// advances the version, so post-invalidation requests compute a new key
/// and can never be served a pre-invalidation leader's result.
#[test]
fn invalidation_advances_the_flight_key_version() {
    let (uc, ms) = manual_world(true);
    let plane = ServePlane::new(uc.clone(), ServeConfig::default());
    plane.register_tenant(&ms, "serve");
    let ctx = Context::user(ADMIN);

    let v0 = uc.metastore_cache_version(&ms);
    let served = plane.get_table(&ctx, &ms, "main.s.t0").unwrap();
    assert_eq!(served.key_version, v0, "flight key pins the version at join time");

    // A write invalidates: the metastore version advances, so new
    // arrivals key a fresh flight.
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    uc.create_table(&ctx, &ms, TableSpec::managed("main.s.fresh", schema).unwrap()).unwrap();
    let v1 = uc.metastore_cache_version(&ms);
    assert!(v1 > v0, "a committed write must advance the metastore version");
    let served = plane.get_table(&ctx, &ms, "main.s.t0").unwrap();
    assert_eq!(served.key_version, v1, "post-invalidation requests use the new key");

    // Same property through the replay driver: a write injected between
    // quanta moves every later flight to the new version.
    let params = OpenLoopParams {
        horizon_ms: 10,
        ..OpenLoopParams::fig5(7, 3_000.0)
    };
    let schedule = Schedule::generate(&params);
    let names: Vec<String> = (0..TABLES).map(|i| format!("main.s.t{i}")).collect();
    let binding = ReplayBinding {
        ms: ms.clone(),
        contexts: vec![ctx.clone()],
        tables: vec![names],
        want_credentials: false,
    };
    let mut invalidated_at = None;
    let report = run_with(&plane, &schedule, &binding, |t, plane| {
        if t >= 5 && invalidated_at.is_none() {
            let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
            plane
                .catalog()
                .create_table(
                    &Context::user(ADMIN),
                    &binding.ms,
                    TableSpec::managed("main.s.mid_replay", schema).unwrap(),
                )
                .unwrap();
            invalidated_at = Some(t);
        }
    });
    assert!(invalidated_at.is_some(), "schedule must reach the invalidation quantum");
    assert!(
        report.last_version > v1,
        "flights after the mid-replay write must carry the advanced version"
    );
}

/// Racing resolves combine into batches, and every request still gets
/// exactly its own refs' results back.
#[test]
fn batched_resolves_split_correctly() {
    let world = miss_world();
    let plane = Arc::new(ServePlane::new(world.uc.clone(), ServeConfig::default()));
    plane.register_tenant(&world.ms, "serve");
    let ctx = world.admin();

    const N: usize = 12;
    let barrier = Arc::new(Barrier::new(N));
    std::thread::scope(|scope| {
        for i in 0..N {
            let plane = Arc::clone(&plane);
            let barrier = Arc::clone(&barrier);
            let ctx = ctx.clone();
            let ms = world.ms.clone();
            scope.spawn(move || {
                // Each request asks for a distinct slice of the tables.
                let refs: Vec<FullName> = (0..=(i % 3))
                    .map(|k| FullName::parse(&format!("main.s.t{}", (i + k) % TABLES)).unwrap())
                    .collect();
                barrier.wait();
                let served = plane.resolve(&ctx, &ms, refs.clone(), false).unwrap();
                assert_eq!(served.value.len(), refs.len(), "positional split must match");
                for (want, got) in refs.iter().zip(&served.value) {
                    assert_eq!(got.entity.name, want.asset().unwrap());
                }
            });
        }
    });
    let parsed = parse_snapshot(&world.uc.metrics_snapshot());
    let batches = match parsed.get("serve.batch.count") {
        Some(SnapshotValue::Counter(n)) => *n,
        other => panic!("serve.batch.count missing: {other:?}"),
    };
    assert!(batches >= 1, "racing resolves must dispatch");
    assert!(batches <= N as u64, "dispatches never exceed requests");
    let sizes = match parsed.get("serve.batch.size") {
        Some(SnapshotValue::Histogram { count, sum, .. }) => (*count, *sum),
        other => panic!("serve.batch.size missing: {other:?}"),
    };
    assert_eq!(sizes, (batches, N as u64), "batch sizes must sum to the request count");
}
