//! Infallible JSON encoding for the catalog's own model types.
//!
//! Serializing an in-memory model type (entities, policies, lineage
//! edges, share members) cannot fail: none of them contain non-string
//! map keys or fallible `Serialize` impls. Routing every such encode
//! through this module keeps the rest of the crate free of `expect`
//! (the hygiene rule) while concentrating the panic-on-bug behavior in
//! two audited lines.

use serde::Serialize;

/// JSON-encode a model value to bytes.
pub(crate) fn to_vec<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    // uc-lint: allow(hygiene) -- model types serialize infallibly; a failure here is a code bug
    serde_json::to_vec(value).expect("model type serializes")
}

/// JSON-encode a model value to a string.
pub(crate) fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    // uc-lint: allow(hygiene) -- model types serialize infallibly; a failure here is a code bug
    serde_json::to_string(value).expect("model type serializes")
}
