//! Cross-crate lifecycle integration: the full life of assets and
//! queries — engine + catalog + delta + cloudstore + txdb together.

use std::time::Duration;

use uc_bench::{World, WorldConfig, ADMIN};
use uc_catalog::service::Context;
use uc_catalog::types::FullName;
use uc_cloudstore::{AccessLevel, Credential, StoragePath};
use uc_delta::value::Value;
use uc_engine::{Engine, EngineConfig};

#[test]
fn predictive_optimization_flow() {
    // The Fig 10(c) mechanism at test scale: a fragmented table is slow
    // for selective queries; OPTIMIZE + VACUUM fix latency and storage.
    let world = World::build(&WorldConfig {
        storage_latency: Duration::from_micros(300),
        ..Default::default()
    });
    let engine = Engine::new(world.uc.clone(), world.ms.clone(), EngineConfig::trusted("dbr"));
    let mut s = engine.session(ADMIN);
    s.execute("CREATE CATALOG main").unwrap();
    s.execute("CREATE SCHEMA main.s").unwrap();
    s.execute("CREATE TABLE main.s.t (x BIGINT)").unwrap();
    // 60 fragments of 10 rows
    for base in 0..60 {
        let vals: Vec<String> = (base * 10..(base + 1) * 10).map(|v| format!("({v})")).collect();
        s.execute(&format!("INSERT INTO main.s.t VALUES {}", vals.join(","))).unwrap();
    }
    let selective = "SELECT * FROM main.s.t WHERE x >= 100 AND x < 130";
    let before = s.execute(selective).unwrap();
    assert_eq!(before.rows.len(), 30);
    assert!(before.files_scanned >= 3);

    // data-file bytes only (the log is metadata, not reclaimable garbage)
    let data_bytes = || {
        let ent = world.uc.get_table(&world.admin(), &world.ms, "main.s.t").unwrap();
        let path = StoragePath::parse(ent.storage_path.as_ref().unwrap()).unwrap();
        let tok = world
            .uc
            .temp_credentials(&world.admin(), &world.ms, &FullName::parse("main.s.t").unwrap(), "relation", AccessLevel::Read)
            .unwrap();
        world
            .store
            .list(&Credential::Temp(tok), &path)
            .unwrap()
            .iter()
            .filter(|m| !m.path.key().contains("_delta_log"))
            .map(|m| m.size)
            .sum::<usize>()
    };

    s.execute("OPTIMIZE main.s.t").unwrap();
    let after = s.execute(selective).unwrap();
    assert_eq!(after.rows.len(), 30);
    assert_eq!(after.files_scanned, 1, "one compacted file");
    assert!(after.files_scanned < before.files_scanned);

    // after OPTIMIZE the garbage (old fragments) still occupies storage
    let physical_with_garbage = data_bytes();
    s.execute("VACUUM main.s.t").unwrap();
    let physical_clean = data_bytes();
    assert!(
        physical_with_garbage as f64 > 1.5 * physical_clean as f64,
        "vacuum reclaims ~half the storage: {physical_with_garbage} -> {physical_clean}"
    );
}

#[test]
fn volumes_store_unstructured_data_under_governance() {
    let world = World::build(&WorldConfig::default());
    let uc = &world.uc;
    let ctx = world.admin();
    let engine = Engine::new(uc.clone(), world.ms.clone(), EngineConfig::trusted("dbr"));
    let mut s = engine.session(ADMIN);
    s.execute("CREATE CATALOG media").unwrap();
    s.execute("CREATE SCHEMA media.raw").unwrap();
    s.execute("CREATE VOLUME media.raw.images").unwrap();

    let vol = uc
        .get_securable(&ctx, &world.ms, &FullName::parse("media.raw.images").unwrap(), "volume")
        .unwrap();
    let root = StoragePath::parse(vol.storage_path.as_ref().unwrap()).unwrap();

    // admin uploads files through a vended token
    let rw = uc
        .temp_credentials(&ctx, &world.ms, &FullName::parse("media.raw.images").unwrap(), "volume", AccessLevel::ReadWrite)
        .unwrap();
    let cred = Credential::Temp(rw);
    for f in ["cat.png", "dog.png", "fish.png"] {
        world.store.put(&cred, &root.child(f), bytes::Bytes::from_static(b"\x89PNG...")).unwrap();
    }

    // a reader with READ_VOLUME can list and fetch, but not write
    uc.grant(&ctx, &world.ms, &FullName::parse("media").unwrap(), "catalog", "reader", uc_catalog::authz::Privilege::UseCatalog).unwrap();
    uc.grant(&ctx, &world.ms, &FullName::parse("media.raw").unwrap(), "schema", "reader", uc_catalog::authz::Privilege::UseSchema).unwrap();
    uc.grant(&ctx, &world.ms, &FullName::parse("media.raw.images").unwrap(), "volume", "reader", uc_catalog::authz::Privilege::ReadVolume).unwrap();
    let reader = Context::user("reader");
    let ro = uc
        .temp_credentials(&reader, &world.ms, &FullName::parse("media.raw.images").unwrap(), "volume", AccessLevel::Read)
        .unwrap();
    let ro_cred = Credential::Temp(ro);
    assert_eq!(world.store.list(&ro_cred, &root).unwrap().len(), 3);
    assert!(world.store.put(&ro_cred, &root.child("new.png"), bytes::Bytes::new()).is_err());
    assert!(uc
        .temp_credentials(&reader, &world.ms, &FullName::parse("media.raw.images").unwrap(), "volume", AccessLevel::ReadWrite)
        .is_err());
}

#[test]
fn token_expiry_mid_scan_forces_revend() {
    // Failure injection: an engine holds a token across a long scan; the
    // token expires; storage rejects it; re-vending restores access.
    let world = World::build(&WorldConfig::default());
    let uc = &world.uc;
    let ctx = world.admin();
    let engine = Engine::new(uc.clone(), world.ms.clone(), EngineConfig::trusted("dbr"));
    let mut s = engine.session(ADMIN);
    s.execute("CREATE CATALOG main").unwrap();
    s.execute("CREATE SCHEMA main.s").unwrap();
    s.execute("CREATE TABLE main.s.t (x BIGINT)").unwrap();
    s.execute("INSERT INTO main.s.t VALUES (1)").unwrap();

    let name = FullName::parse("main.s.t").unwrap();
    let tok = uc.temp_credentials(&ctx, &world.ms, &name, "relation", AccessLevel::Read).unwrap();
    let ent = uc.get_table(&ctx, &world.ms, "main.s.t").unwrap();
    let path = StoragePath::parse(ent.storage_path.as_ref().unwrap()).unwrap();
    assert!(world.store.list(&Credential::Temp(tok.clone()), &path).is_ok());

    // jump past expiry (the World uses the system clock; expire by
    // constructing an already-stale token copy through tampering is not
    // possible — so we simulate with a tiny-TTL token instead)
    let short_world = {
        // ~instant expiry
        let cfg = uc_catalog::service::UcConfig { cred_ttl_ms: 1, ..Default::default() };
        uc_catalog::service::UnityCatalog::new(world.db.clone(), world.store.clone(), cfg, "node-short")
    };
    let stale = short_world
        .temp_credentials(&ctx, &world.ms, &name, "relation", AccessLevel::Read)
        .unwrap();
    std::thread::sleep(Duration::from_millis(5));
    let err = world.store.list(&Credential::Temp(stale), &path).unwrap_err();
    assert!(matches!(err, uc_cloudstore::StorageError::ExpiredCredential { .. }));

    // re-vend and continue
    let fresh = uc.temp_credentials(&ctx, &world.ms, &name, "relation", AccessLevel::Read).unwrap();
    assert!(world.store.list(&Credential::Temp(fresh), &path).is_ok());
}

#[test]
fn drop_and_recreate_reuses_name_and_storage_is_gced() {
    let world = World::build(&WorldConfig::default());
    let engine = Engine::new(world.uc.clone(), world.ms.clone(), EngineConfig::trusted("dbr"));
    let mut s = engine.session(ADMIN);
    s.execute("CREATE CATALOG main").unwrap();
    s.execute("CREATE SCHEMA main.s").unwrap();
    for round in 0..3 {
        s.execute("CREATE TABLE main.s.t (x BIGINT)").unwrap();
        s.execute(&format!("INSERT INTO main.s.t VALUES ({round})")).unwrap();
        let res = s.execute("SELECT * FROM main.s.t").unwrap();
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0][0], Value::Int(round));
        s.execute("DROP TABLE main.s.t").unwrap();
        let (purged, _objects) = world.uc.purge_soft_deleted(&world.ms).unwrap();
        assert_eq!(purged, 1);
    }
}

#[test]
fn information_schema_reflects_live_metadata() {
    use uc_catalog::service::discovery_api::MetaFilter;
    use uc_catalog::types::SecurableKind;
    let world = World::build(&WorldConfig::default());
    let engine = Engine::new(world.uc.clone(), world.ms.clone(), EngineConfig::trusted("dbr"));
    let mut s = engine.session(ADMIN);
    s.execute("CREATE CATALOG main").unwrap();
    s.execute("CREATE SCHEMA main.s").unwrap();
    for i in 0..5 {
        s.execute(&format!("CREATE TABLE main.s.t{i} (x BIGINT)")).unwrap();
    }
    s.execute("CREATE VIEW main.s.v AS SELECT x FROM main.s.t0").unwrap();
    let tables = world
        .uc
        .query_entities(&world.admin(), &world.ms, &[MetaFilter::KindIs(SecurableKind::Table)], 100)
        .unwrap();
    assert_eq!(tables.len(), 5);
    let delta_tables = world
        .uc
        .query_entities(
            &world.admin(),
            &world.ms,
            &[
                MetaFilter::KindIs(SecurableKind::Table),
                MetaFilter::PropEquals("format".into(), "DELTA".into()),
            ],
            100,
        )
        .unwrap();
    assert_eq!(delta_tables.len(), 5);
    let views = world
        .uc
        .query_entities(&world.admin(), &world.ms, &[MetaFilter::KindIs(SecurableKind::View)], 100)
        .unwrap();
    assert_eq!(views.len(), 1);
}
