//! Labeled-metric cardinality ban. The dimensional telemetry plane keeps
//! per-tenant series bounded by routing every label through the
//! `CounterFamily` / `HistogramFamily` slot table (fixed capacity +
//! overflow + heavy-hitter sketch). That bound only holds if hot-path
//! code hands the family a *memoized* label — a `format!` built inline at
//! the call site allocates per request and, worse, invites interpolating
//! an unbounded value (entity uid, table name) straight into the label
//! space. `[hotpath] functions` in Lint.toml lists the hot functions; in
//! those, any `.inc(..)` / `.add(..)` / `.record(..)` whose *label
//! argument* contains a `format!` invocation is a diagnostic unless
//! suppressed with a reasoned `// uc-lint: allow(cardinality)` pragma.
//!
//! Like the rest of uc-lint this is textual and function-local: it checks
//! the label (first) argument only, so plain-value `record(elapsed)`
//! calls on unlabeled histograms never match, and it cannot see labels
//! built by callees — its job is to stop the easy regression and force a
//! written justification for everything else.

use super::{is_ident, is_punct, Diagnostic, FileCtx, RULE_CARDINALITY};
use crate::lexer::Kind;

/// Family methods whose first argument is the label.
const LABELED_METHODS: &[&str] = &["inc", "add", "record"];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let listed = ctx.cfg.list("hotpath", "functions");
    if listed.is_empty() {
        return;
    }
    let toks = ctx.tokens;
    for f in &ctx.scan.fns {
        let key = format!("{}::{}", ctx.rel_path, f.name);
        if !listed.iter().any(|l| l == &key) {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        if ctx.scan.test_mask[open] {
            continue;
        }
        let mut i = open + 1;
        while i < close {
            let t = &toks[i];
            if t.kind == Kind::Ident
                && is_punct(&toks[i - 1], ".")
                && i + 1 < close
                && is_punct(&toks[i + 1], "(")
                && LABELED_METHODS.contains(&t.text.as_str())
            {
                // Walk the first (label-position) argument only: stop at a
                // top-level `,` or the closing `)`.
                let mut depth = 0i64;
                let mut j = i + 1;
                while j < close {
                    let a = &toks[j];
                    if is_punct(a, "(") || is_punct(a, "[") || is_punct(a, "{") {
                        depth += 1;
                    } else if is_punct(a, ")") || is_punct(a, "]") || is_punct(a, "}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if is_punct(a, ",") && depth == 1 {
                        break;
                    } else if is_ident(a, "format")
                        && j + 1 < close
                        && is_punct(&toks[j + 1], "!")
                    {
                        out.push(ctx.diag(
                            a.line,
                            RULE_CARDINALITY,
                            format!(
                                "inline `format!` label in `.{}()` inside hot-path function `{}` (labels must be memoized and bounded — route them through tenant_label/the family slot table, or suppress with a reasoned allow(cardinality) pragma)",
                                t.text, f.name
                            ),
                        ));
                        break;
                    }
                    j += 1;
                }
            }
            i += 1;
        }
    }
}
