#![forbid(unsafe_code)]
//! uc-serve: the request-coalescing, batched serving plane.
//!
//! `RestApi` dispatches one request at a time, synchronously; under the
//! paper's Fig 10b engine-metadata storms the database connection pool is
//! the knee (pool permits × per-read latency caps throughput however
//! many clients pile in). This crate puts an explicit serving plane in
//! front of [`UnityCatalog`] — the FoundationDB Record Layer shape: a
//! stateless tier that owns request scheduling so shared storage sees
//! shaped, deduplicated traffic. Three mechanisms (DESIGN.md §10):
//!
//! * **Single-flight coalescing** ([`flight`]): concurrent `getTable`
//!   requests for the same `(metastore, principal, key, cache-version)`
//!   share one execution. The first arrival is the *leader* and runs the
//!   catalog call (one db miss, one audit record); the rest are
//!   *followers* that subscribe to the leader's result. The cache
//!   version in the key is the correctness hinge: a request that
//!   observed an invalidation computes a different key, so a leader's
//!   result is never served across an invalidation (read-your-snapshot
//!   holds for followers — adversarially checked by uc-check's
//!   `coalesce_clients` schedules).
//!
//! * **Batched resolution** ([`batch`]): concurrent `resolve` requests
//!   combine, group-commit style — the first arrival becomes the batch
//!   leader, drains compatible queued requests, and executes one
//!   [`UnityCatalog::resolve_batch`] call for all of them. Batch size
//!   grows with concurrency naturally; no dispatcher thread exists.
//!
//! * **Bounded per-tenant admission** ([`admission`]): each tenant
//!   (metastore × principal) owns a bounded in-flight budget. Over
//!   budget, the request is *shed deterministically*: an audited deny
//!   (`requestShed`), a `serve.shed` counter tick, and a typed
//!   [`UcError::ResourceExhausted`] that `rest.rs` maps to HTTP 429 —
//!   never a silent drop. Shed-and-retry clients use the bounded
//!   virtual-clock backoff helpers.
//!
//! Two execution modes share this policy code. The concurrent mode
//! (`get_table`/`resolve` called from many threads) powers the
//! `fig10b_serve` bench; the deterministic mode ([`replay`]) drives an
//! open-loop [`uc_workload::openloop::Schedule`] single-threaded on the
//! injected clock, so leader election, shedding, batching, telemetry,
//! and audit are pure functions of the seed — that is what the CI
//! byte-diff gates replay.

pub mod admission;
pub mod batch;
pub mod flight;
pub mod replay;

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use uc_catalog::service::resolve::ResolvedSecurable;
use uc_catalog::service::{Context, UnityCatalog};
use uc_catalog::{Entity, FullName, UcError, UcResult, Uid};
use uc_cloudstore::sched::yield_point;
use uc_obs::{Counter, CounterFamily, Gauge, Histogram, HistogramFamily, Obs};

/// Scheduler yield points owned by the serving plane. Constants so the
/// interleaving explorer can land adversarial schedules at each stage;
/// all three are reached holding no serve lock.
pub mod points {
    /// Before admission control examines the request.
    pub const SERVE_ENQUEUE: &str = "serve.enqueue";
    /// Before a resolve request joins (or drains) the combining batch.
    pub const SERVE_BATCH: &str = "serve.batch";
    /// Before a leader executes the catalog call, and between a
    /// follower's wait-loop probes under the explorer.
    pub const SERVE_DISPATCH: &str = "serve.dispatch";
}

/// Bounded retry/backoff policy for shed-and-retry clients. Backoff is
/// driven by the injected clock: on a manual clock virtual time advances
/// (deterministic, instant); on a system clock the thread sleeps.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first shed (0 = never retry).
    pub max_retries: u32,
    /// Backoff before retry `k` is `base_ms << min(k, 6)`.
    pub base_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, base_ms: 4 }
    }
}

/// Serving-plane configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-tenant in-flight budget; request N+1 is shed.
    pub queue_capacity: usize,
    /// Maximum requests combined into one `resolve_batch` dispatch.
    pub max_batch: usize,
    /// Bound on the combining queue across tenants (belt-and-braces on
    /// top of per-tenant admission; overflow sheds).
    pub batch_queue_capacity: usize,
    /// Single-flight coalescing on/off (off = the uncoalesced bench arm).
    pub coalesce: bool,
    /// Combining batch dispatch on/off.
    pub batch: bool,
    pub retry: RetryPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            max_batch: 16,
            batch_queue_capacity: 1024,
            coalesce: true,
            batch: true,
            retry: RetryPolicy::default(),
        }
    }
}

/// How a request was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Executed the catalog call itself (coalescing leader, batch
    /// leader, or coalescing disabled).
    Leader,
    /// Subscribed to another request's execution.
    Follower,
}

/// A successful serve-plane response: the value plus how it was served.
#[derive(Debug, Clone)]
pub struct Served<T> {
    pub value: T,
    pub role: Role,
    /// The metastore cache version embedded in the flight key at join
    /// time. Read-your-snapshot invariant: this is never below the
    /// version the caller observed before submitting.
    pub key_version: u64,
}

/// The serving plane's instruments, all riding the PR-7 dimensional
/// plane: each global counter has a `.by_tenant` family whose per-label
/// cells (plus `~overflow`) sum exactly to the global value — the
/// conservation law the benches assert.
pub(crate) struct ServeMetrics {
    pub leaders: Counter,
    pub leaders_by: CounterFamily,
    pub followers: Counter,
    pub followers_by: CounterFamily,
    pub admitted: Counter,
    pub admitted_by: CounterFamily,
    pub shed: Counter,
    pub shed_by: CounterFamily,
    pub retries: Counter,
    pub queue_depth: Gauge,
    pub depth_hist: Histogram,
    pub depth_by: HistogramFamily,
    pub batch_size: Histogram,
    pub batches: Counter,
}

impl ServeMetrics {
    fn new(obs: &Obs) -> ServeMetrics {
        ServeMetrics {
            leaders: obs.counter("serve.coalesce.leaders"),
            leaders_by: obs.counter_family("serve.coalesce.leaders.by_tenant"),
            followers: obs.counter("serve.coalesce.followers"),
            followers_by: obs.counter_family("serve.coalesce.followers.by_tenant"),
            admitted: obs.counter("serve.admitted"),
            admitted_by: obs.counter_family("serve.admitted.by_tenant"),
            shed: obs.counter("serve.shed"),
            shed_by: obs.counter_family("serve.shed.by_tenant"),
            retries: obs.counter("serve.retries"),
            queue_depth: obs.gauge("serve.queue.depth"),
            depth_hist: obs.histogram("serve.queue.depth.hist"),
            depth_by: obs.histogram_family("serve.queue.depth.by_tenant"),
            batch_size: obs.histogram("serve.batch.size"),
            batches: obs.counter("serve.batch.count"),
        }
    }
}

/// The serving plane bound to one catalog node.
pub struct ServePlane {
    uc: Arc<UnityCatalog>,
    cfg: ServeConfig,
    metrics: ServeMetrics,
    admission: admission::Admission,
    flights: flight::FlightMap,
    batcher: batch::Batcher,
    /// Tenant aliases for metric labels, mirroring the catalog's scheme
    /// (`t=<alias>,p=<principal>`); registered by the host, uid-free so
    /// labeled snapshots stay byte-stable across runs.
    aliases: RwLock<HashMap<Uid, Arc<str>>>,
}

impl ServePlane {
    pub fn new(uc: Arc<UnityCatalog>, cfg: ServeConfig) -> ServePlane {
        let obs = uc.obs().clone();
        ServePlane {
            metrics: ServeMetrics::new(&obs),
            admission: admission::Admission::new(),
            flights: flight::FlightMap::new(),
            batcher: batch::Batcher::new(),
            aliases: RwLock::new(HashMap::new()),
            uc,
            cfg,
        }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    pub fn catalog(&self) -> &Arc<UnityCatalog> {
        &self.uc
    }

    /// Coalescing flights currently in progress.
    pub fn flights_in_progress(&self) -> usize {
        self.flights.in_flight()
    }

    /// Resolve requests queued in the combining batcher.
    pub fn batch_queue_len(&self) -> usize {
        self.batcher.queued()
    }

    /// A tenant's current admitted in-flight depth.
    pub fn tenant_depth(&self, ms: &Uid, principal: &str) -> usize {
        self.admission.depth(ms, principal)
    }

    /// Register the human-readable alias rendered into this metastore's
    /// serve metric labels (idempotent; call alongside `create_metastore`).
    pub fn register_tenant(&self, ms: &Uid, alias: &str) {
        let alias: Arc<str> = Arc::from(uc_obs::sanitize_label_value(alias));
        self.aliases.write().insert(ms.clone(), alias);
    }

    /// The `t=<alias>,p=<principal>` tenant label for a request.
    pub(crate) fn tenant_label(&self, ms: &Uid, principal: &str) -> Arc<str> {
        let alias = {
            let aliases = self.aliases.read();
            aliases.get(ms).cloned()
        };
        match alias {
            Some(a) => Arc::from(format!("t={a},p={}", uc_obs::sanitize_label_value(principal))),
            None => Arc::from(format!("t=~,p={}", uc_obs::sanitize_label_value(principal))),
        }
    }

    /// Admit or shed one request; on admit the returned guard holds the
    /// tenant's slot until dropped. Shedding audits a deny and returns
    /// the typed 429 error — never a silent drop.
    pub(crate) fn admit(
        &self,
        ms: &Uid,
        principal: &str,
        what: &str,
    ) -> UcResult<admission::AdmissionGuard<'_>> {
        yield_point(points::SERVE_ENQUEUE);
        let label = self.tenant_label(ms, principal);
        match self.admission.try_admit(
            ms,
            principal,
            self.cfg.queue_capacity,
            &self.metrics,
            &label,
        ) {
            Some(guard) => Ok(guard),
            None => {
                self.metrics.shed.inc();
                self.metrics.shed_by.inc(&label);
                self.uc.audit_shed(
                    principal,
                    format!("{what} shed: tenant over admission budget ({})", self.cfg.queue_capacity),
                );
                Err(UcError::ResourceExhausted(format!(
                    "{what}: tenant admission queue full (capacity {})",
                    self.cfg.queue_capacity
                )))
            }
        }
    }

    /// Serve one `getTable` through admission + single-flight coalescing.
    pub fn get_table(
        &self,
        ctx: &Context,
        ms: &Uid,
        name: &str,
    ) -> UcResult<Served<Arc<Entity>>> {
        let _slot = self.admit(ms, &ctx.principal, "getTable")?;
        if !self.cfg.coalesce {
            yield_point(points::SERVE_DISPATCH);
            let value = self.uc.get_table(ctx, ms, name)?;
            return Ok(Served { value, role: Role::Leader, key_version: 0 });
        }
        let key_version = self.uc.metastore_cache_version(ms);
        let label = self.tenant_label(ms, &ctx.principal);
        self.flights.serve(
            &self.uc,
            &self.metrics,
            &label,
            ctx,
            ms,
            name,
            key_version,
        )
    }

    /// [`ServePlane::get_table`] with bounded shed-and-retry backoff.
    pub fn get_table_with_retry(
        &self,
        ctx: &Context,
        ms: &Uid,
        name: &str,
    ) -> UcResult<Served<Arc<Entity>>> {
        let mut attempt: u32 = 0;
        loop {
            match self.get_table(ctx, ms, name) {
                Err(UcError::ResourceExhausted(_)) if attempt < self.cfg.retry.max_retries => {
                    self.backoff(attempt);
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Serve one batched resolution through admission + the combining
    /// batcher.
    pub fn resolve(
        &self,
        ctx: &Context,
        ms: &Uid,
        refs: Vec<FullName>,
        want_credentials: bool,
    ) -> UcResult<Served<Vec<ResolvedSecurable>>> {
        let _slot = self.admit(ms, &ctx.principal, "resolve")?;
        if !self.cfg.batch {
            yield_point(points::SERVE_DISPATCH);
            let value = self.uc.resolve_for_query(ctx, ms, &refs, want_credentials)?;
            return Ok(Served { value, role: Role::Leader, key_version: 0 });
        }
        let label = self.tenant_label(ms, &ctx.principal);
        self.batcher.serve(
            &self.uc,
            &self.cfg,
            &self.metrics,
            &label,
            ctx,
            ms,
            refs,
            want_credentials,
        )
    }

    /// Bounded virtual-clock backoff after a shed: on a manual clock
    /// virtual time advances (chaos/replay runs stay instant and
    /// deterministic); on a system clock the thread sleeps.
    pub(crate) fn backoff(&self, attempt: u32) {
        let backoff_ms = self.cfg.retry.base_ms << attempt.min(6);
        self.metrics.retries.inc();
        let clock = self.uc.clock();
        if clock.is_manual() {
            clock.advance_ms(backoff_ms);
        } else {
            std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
        }
    }
}
