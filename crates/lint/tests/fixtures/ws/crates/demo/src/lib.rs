//! Fixture crate root. Deliberately missing `#![forbid(unsafe_code)]`
//! so the unsafe rule fires at line 1, plus one `unsafe` keyword use.

pub mod api;
pub mod audit;
pub mod clock_ok;
pub mod det;
pub mod hyg;
pub mod keyspace;
pub mod locks;

pub fn touch_raw(ptr: *const u8) -> u8 {
    unsafe { *ptr } // line 12: the `unsafe` keyword itself
}
