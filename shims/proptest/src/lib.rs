// Vendored offline shim (see shims/README.md): not held to workspace lint
// standards so the call-site-compatible surface can stay close to upstream.
#![allow(clippy::all)]

//! Workspace-local stand-in for `proptest`.
//!
//! Implements the generator-based subset the workspace's property tests
//! use: the [`Strategy`] trait (ranges, tuples, `Just`, `prop_map`,
//! `prop_oneof!`, `collection::vec`, `option::of`), the `proptest!`
//! macro with `#![proptest_config(...)]`, and panic-based
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its seed and case number
//!   instead; set `UC_PROPTEST_SEED` / `UC_PROPTEST_CASE` to replay
//!   exactly that input.
//! - **Deterministic by default.** The base seed is derived from the
//!   test name, so CI runs are reproducible without a seed file.
//! - `*.proptest-regressions` files are not consulted; regressions worth
//!   keeping are encoded as explicit `#[test]` cases instead.

use std::ops::Range;
use std::panic::AssertUnwindSafe;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// RNG + config + runner
// ---------------------------------------------------------------------------

/// Per-case RNG handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

fn fnv1a(data: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn case_seed(base: u64, case: u32) -> u64 {
    // splitmix-style mix so consecutive cases diverge immediately.
    let mut z = base ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Drive one property over `config.cases` generated inputs. On failure,
/// prints the seed/case pair that reproduces the exact input, then
/// re-raises the panic so the test harness reports it.
pub fn run_test(config: &ProptestConfig, name: &str, f: impl Fn(&mut TestRng)) {
    let base_seed = match std::env::var("UC_PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| {
            panic!("UC_PROPTEST_SEED must be a u64, got {s:?}")
        }),
        Err(_) => fnv1a(name),
    };
    let only_case: Option<u32> = std::env::var("UC_PROPTEST_CASE")
        .ok()
        .and_then(|s| s.parse().ok());
    for case in 0..config.cases {
        if let Some(only) = only_case {
            if case != only {
                continue;
            }
        }
        let mut rng = TestRng::from_seed(case_seed(base_seed, case));
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest shim: `{name}` failed at case {case} of {total} \
                 (base seed {base_seed}). Replay this input with \
                 UC_PROPTEST_SEED={base_seed} UC_PROPTEST_CASE={case}.",
                total = config.cases,
            );
            std::panic::resume_unwind(panic);
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy, the element type of `prop_oneof!`.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Uniform choice among alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.inner().gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.inner().gen_range(self.clone())
    }
}

/// String strategies from a small regex subset, mirroring proptest's
/// `&str`-as-regex strategies. Supports literal characters, `[...]`
/// character classes with ranges, and the quantifiers `{n}`, `{n,m}`,
/// `*`, `+`, `?` (unbounded quantifiers cap at 8 repetitions).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let elems = parse_regex(self);
        let mut out = String::new();
        for elem in &elems {
            let count = if elem.min == elem.max {
                elem.min
            } else {
                rng.inner().gen_range(elem.min..=elem.max)
            };
            for _ in 0..count {
                out.push(sample_class(&elem.class, rng));
            }
        }
        out
    }
}

struct RegexElem {
    class: Vec<(char, char)>, // inclusive char ranges
    min: usize,
    max: usize,
}

fn sample_class(class: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = class.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
    let mut pick = rng.inner().gen_range(0..total);
    for (lo, hi) in class {
        let width = *hi as u32 - *lo as u32 + 1;
        if pick < width {
            return char::from_u32(*lo as u32 + pick).expect("invalid char range");
        }
        pick -= width;
    }
    unreachable!("sample_class: pick exceeded class width")
}

fn parse_regex(pattern: &str) -> Vec<RegexElem> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut elems = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class: Vec<(char, char)> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in regex strategy {pattern:?}"))
                    + i;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                ranges
            }
            '\\' => {
                i += 2;
                match chars[i - 1] {
                    'd' => vec![('0', '9')],
                    'w' => vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                    c => vec![(c, c)],
                }
            }
            '.' => {
                i += 1;
                vec![('a', 'z'), ('A', 'Z'), ('0', '9')]
            }
            c if c == '(' || c == ')' || c == '|' => {
                panic!("regex strategy {pattern:?}: groups/alternation unsupported by shim")
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {n,m} lower bound"),
                            hi.trim().parse().expect("bad {n,m} upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad {n} count");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        elems.push(RegexElem { class, min, max });
    }
    elems
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

pub mod collection {
    use super::{Range, Strategy, TestRng};
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range for collection::vec");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.inner().gen_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`: `None` about half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.inner().gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    pub use super::{ProptestConfig, TestRng};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { @cfg ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_each {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_test(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                $body
            });
        }
        $crate::__proptest_each! { @cfg ($config) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let s = collection::vec((0u8..4, 1usize..10), 1..40);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..40).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 4);
                assert!((1..10).contains(&b));
            }
        }
    }

    #[test]
    fn same_seed_same_values() {
        let s = prop_oneof![
            (0u64..100).prop_map(|v| format!("a{v}")),
            Just(String::from("fixed")),
        ];
        let a: Vec<String> =
            (0..50).map(|i| Strategy::generate(&s, &mut TestRng::from_seed(i))).collect();
        let b: Vec<String> =
            (0..50).map(|i| Strategy::generate(&s, &mut TestRng::from_seed(i))).collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_round_trips(xs in collection::vec(0i64..50, 1..10), flag in option::of(0u8..2)) {
            prop_assert!(xs.len() < 10);
            prop_assert_eq!(xs.iter().count(), xs.len());
            if let Some(f) = flag {
                prop_assert!(f < 2, "flag {} out of range", f);
            }
        }
    }
}
