//! Deterministic telemetry dump: drive a fixed-seed chaos workload with
//! tracing live and print the full trace (JSON lines) plus the metrics
//! snapshot.
//!
//! This is the CI determinism gate's subject: two invocations with the
//! same `UC_CHAOS_SEED` must produce byte-identical output, because every
//! source of telemetry is deterministic — fault schedules come from the
//! seeded plan, timestamps from the shared manual clock, trace IDs from a
//! sequential counter, and the metrics snapshot iterates a sorted map.
//! Any nondeterminism that leaks into the observability plane (a random
//! ID in a span name, a wall-clock timestamp, hash-map iteration order)
//! shows up here as a diff.

use std::sync::Arc;

use uc_catalog::service::crud::TableSpec;
use uc_catalog::service::{Context, UcConfig, UnityCatalog};
use uc_catalog::types::FullName;
use uc_cloudstore::faults::{points, FaultMode, FaultPlan};
use uc_cloudstore::{AccessLevel, Clock, LatencyModel, ObjectStore, StsService};
use uc_delta::value::{DataType, Field, Schema};
use uc_engine::{Engine, EngineConfig};
use uc_obs::Obs;
use uc_txdb::{Db, DbConfig};

const ADMIN: &str = "admin";

fn main() {
    let seed: u64 = std::env::var("UC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(424242);

    // One fault plan, one manual clock, one Obs handle — shared by every
    // layer, exactly like the chaos test harness.
    let plan = FaultPlan::seeded(seed);
    let clock = Clock::manual(0);
    let obs_clock = clock.clone();
    let obs = Obs::with_clock_fn(Arc::new(move || obs_clock.now_ms()));
    let sts = StsService::new(clock).with_faults(plan.clone()).with_obs(obs.clone());
    let store = ObjectStore::with_faults(sts, LatencyModel::zero(), plan.clone())
        .with_obs(obs.clone());
    let db = Db::new(DbConfig {
        faults: plan.clone(),
        obs: obs.clone(),
        ..Default::default()
    });
    let uc = UnityCatalog::new(
        db,
        store.clone(),
        UcConfig { faults: plan.clone(), obs: obs.clone(), ..Default::default() },
        "node-0",
    );
    let ms = uc.create_metastore(ADMIN, "chaos", "us-west-2").unwrap();
    let ctx = Context::user(ADMIN);
    let root = store.create_bucket("lake");
    uc.create_storage_credential(&ctx, &ms, "lake_cred", &root).unwrap();
    uc.set_metastore_root(&ctx, &ms, "s3://lake/managed").unwrap();

    // The workload: engine-driven DDL + DML under storage and commit
    // faults, a conflict storm absorbed by write retries, and a credential
    // vend — every layer contributes spans and counters.
    let engine = Engine::new(uc.clone(), ms.clone(), EngineConfig::trusted("dbr"));
    let mut s = engine.session(ADMIN);
    s.execute("CREATE CATALOG main").unwrap();
    s.execute("CREATE SCHEMA main.s").unwrap();
    s.execute("CREATE TABLE main.s.t (x BIGINT)").unwrap();

    plan.arm(points::STORE_PUT_IF_ABSENT, FaultMode::Probability(0.25));
    plan.arm(points::TXDB_COMMIT_CONFLICT, FaultMode::Probability(0.2));
    for i in 0..25i64 {
        let _ = s.execute(&format!("INSERT INTO main.s.t VALUES ({i})"));
        let _ = uc.update_comment(
            &ctx,
            &ms,
            &FullName::parse("main.s.t").unwrap(),
            "relation",
            &format!("c{i}"),
        );
    }
    plan.disarm(points::STORE_PUT_IF_ABSENT);
    plan.disarm(points::TXDB_COMMIT_CONFLICT);

    // A burst of injected serialization conflicts, retried to success.
    plan.arm(points::TXDB_COMMIT_CONFLICT, FaultMode::FirstN(5));
    uc.create_table(
        &ctx,
        &ms,
        TableSpec::managed("main.s.stormy", Schema::new(vec![Field::new("x", DataType::Int)]))
            .unwrap(),
    )
    .unwrap();
    plan.disarm(points::TXDB_COMMIT_CONFLICT);

    let _ = uc
        .temp_credentials(&ctx, &ms, &FullName::parse("main.s.t").unwrap(), "relation", AccessLevel::Read)
        .unwrap();
    let _ = s.execute("SELECT * FROM main.s.t").unwrap();

    println!("# chaos-telemetry seed={seed}");
    println!("# trace");
    print!("{}", obs.trace_jsonl());
    print!("{}", obs.metrics_snapshot());

    // The flight recorder froze itself at the first injected fault (the
    // workload above arms several); dump the frozen ring as canonical
    // JSONL and as a Chrome-trace export. Both are part of the CI
    // double-run byte diff — a schedule-dependent lane index or arrival
    // order leaking into the merge would show up here.
    println!("# flight");
    match obs.flight_jsonl() {
        Some(jsonl) => print!("{jsonl}"),
        None => println!("(no freeze triggered)"),
    }
    println!("# flight-chrome-trace");
    match obs.flight_chrome_trace() {
        Some(trace) => println!("{trace}"),
        None => println!("[]"),
    }
}
