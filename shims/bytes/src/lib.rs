// Vendored offline shim (see shims/README.md): not held to workspace lint
// standards so the call-site-compatible surface can stay close to upstream.
#![allow(clippy::all)]

//! Workspace-local stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal implementations of its external dependencies under
//! `shims/`. This one provides [`Bytes`]: a cheaply-cloneable immutable
//! byte buffer backed by `Arc<[u8]>`, covering the API surface the
//! workspace actually uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply-cloneable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wrap a static slice. (The shim copies; the real crate borrows.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.data == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn from_static_and_str() {
        assert_eq!(Bytes::from_static(b"hi"), Bytes::from("hi"));
        assert!(Bytes::new().is_empty());
    }
}
