//! Database table names and key construction.
//!
//! Every key is prefixed by the metastore id, so (a) all operations are
//! naturally metastore-scoped, and (b) the cache can filter the database
//! change log down to one metastore by key prefix during reconciliation.

use crate::ids::Uid;
use crate::model::treekey;

/// Entities by id: `{ms}/{id}` → Entity JSON.
pub const T_ENTITY: &str = "ent";
/// Name index: `{ms}/{parent}/{group}/{name}` → entity id.
pub const T_NAME: &str = "name";
/// Path index: tree-encoded `enc(ms).enc(path segments)` → entity id.
/// Order-preserving, so overlap checks and nearest-covering-ancestor
/// resolution are one range scan + one predecessor seek (see
/// `model::paths` and DESIGN.md §11).
pub const T_PATH: &str = "path";
/// Tree-encoded hierarchy index: `enc(ms).enc(group:name)...` → the
/// entity's JSON, byte-identical to its `T_ENTITY` row. All descendants
/// of a node occupy one contiguous key range; the ancestor chain of a
/// node is exactly the terminator-prefix chain of its key (one
/// `scan_chain`). Maintained by `WriteEffects::upsert`; only *active*
/// entities have tree rows (soft delete removes the row, freeing the
/// name).
pub const T_TREE: &str = "tree";
/// Tree-index build state: `{ms}` → `"building"` | `"ready"`. Governs
/// writers only (dual-write while building or ready); readers use the
/// presence of the metastore's own tree row as the readiness signal, so
/// the fast path costs no extra read. Absent for metastores created on
/// the legacy layout until `rebuild_tree_index` runs.
pub const T_TREEMETA: &str = "treemeta";
/// Metastore version: `{ms}` → decimal version.
pub const T_MSVER: &str = "msver";
/// Grants: `{ms}/{securable}/{principal}|{privilege}` → "1".
pub const T_GRANT: &str = "grant";
/// Entity tags: `{ms}/{entity}/{key}` → value.
pub const T_TAG: &str = "tag";
/// Column tags: `{ms}/{table}/{column}/{key}` → value.
pub const T_COLTAG: &str = "coltag";
/// FGAC policies: `{ms}/{table}/filter` and `{ms}/{table}/mask/{column}`.
pub const T_FGAC: &str = "fgac";
/// ABAC policies: `{ms}/{scope}/{policy name}` → policy JSON.
pub const T_ABAC: &str = "abac";
/// Principals: `{name}` → principal record JSON (account-level).
pub const T_PRINCIPAL: &str = "prin";
/// Lineage edges: `{ms}/d/{downstream}/{upstream}` and `{ms}/u/{upstream}/{downstream}`.
pub const T_LINEAGE: &str = "lineage";
/// Catalog-owned commit log: `{ms}/{table}/{version:020}` → payload.
pub const T_COMMIT: &str = "commit";
/// Share membership: `{ms}/{share}/{entity}` → alias.
pub const T_SHAREMEM: &str = "sharemem";

/// Sentinel parent for metastore-level objects in the name index.
pub const ROOT_PARENT: &str = "root";

pub fn ent_key(ms: &Uid, id: &Uid) -> String {
    format!("{ms}/{id}")
}

/// Prefix of every entity row in a metastore.
pub fn ent_ms_prefix(ms: &Uid) -> String {
    format!("{ms}/")
}

pub fn name_key(ms: &Uid, parent: Option<&Uid>, group: &str, name: &str) -> String {
    let ms = ms.as_str();
    let parent = parent.map(|p| p.as_str()).unwrap_or(ROOT_PARENT);
    // Names are case-insensitive in SQL identifiers; normalize to lowercase.
    // Built by hand into one pre-sized buffer: this runs on every cached
    // name lookup, and `format!` with an intermediate `to_ascii_lowercase`
    // would cost two allocations per call.
    let mut key = String::with_capacity(ms.len() + parent.len() + group.len() + name.len() + 3);
    key.push_str(ms);
    key.push('/');
    key.push_str(parent);
    key.push('/');
    key.push_str(group);
    key.push('/');
    key.extend(name.chars().map(|c| c.to_ascii_lowercase()));
    key
}

/// Prefix listing all children of a parent (across groups).
pub fn children_prefix(ms: &Uid, parent: Option<&Uid>) -> String {
    let parent = parent.map(|p| p.as_str()).unwrap_or(ROOT_PARENT);
    format!("{ms}/{parent}/")
}

/// Prefix listing children of a parent within one name group.
pub fn children_group_prefix(ms: &Uid, parent: Option<&Uid>, group: &str) -> String {
    let parent = parent.map(|p| p.as_str()).unwrap_or(ROOT_PARENT);
    format!("{ms}/{parent}/{group}/")
}

// ---------------------------------------------------------------------
// Tree index keys (order-preserving; see model::treekey and DESIGN.md §11)
// ---------------------------------------------------------------------

/// Root of a metastore's tree keyspace: the encoded metastore segment.
/// Every tree and path key of the metastore starts with this, so "the
/// whole namespace" is one contiguous range.
pub fn tree_ms_prefix(ms: &Uid) -> String {
    let mut key = String::with_capacity(ms.as_str().len() + 1);
    treekey::push_segment(&mut key, ms.as_str());
    key
}

/// One tree segment's content: `{group}:{lowercased name}` — the group
/// comes first so children of one namespace group are contiguous within
/// the parent's range.
fn tree_segment(group: &str, name: &str) -> String {
    let mut seg = String::with_capacity(group.len() + name.len() + 1);
    seg.push_str(group);
    seg.push(':');
    seg.extend(name.chars().map(|c| c.to_ascii_lowercase()));
    seg
}

/// Append a child's encoded segment to its parent's tree key.
pub fn tree_push_child(parent_key: &mut String, group: &str, name: &str) {
    treekey::push_segment(parent_key, &tree_segment(group, name));
}

/// Tree key of a node from its already-resolved ancestor names, outermost
/// first: `&[(group, name), ...]` under `ms`.
pub fn tree_key(ms: &Uid, chain: &[(&str, &str)]) -> String {
    let mut key = tree_ms_prefix(ms);
    for (group, name) in chain {
        tree_push_child(&mut key, group, name);
    }
    key
}

/// Prefix of every child of `parent_key` within one name group: the
/// partial segment `{group}:` escaped without a terminator. Escaping is
/// char-by-char, so this is a string prefix of exactly the children whose
/// segment starts with `{group}:`.
pub fn tree_group_prefix(parent_key: &str, group: &str) -> String {
    let mut key = String::with_capacity(parent_key.len() + group.len() + 1);
    key.push_str(parent_key);
    treekey::escape_into(&mut key, group);
    key.push(':');
    key
}

/// The metastore id of a tree or path key (everything before the first
/// terminator; metastore uids contain no escapable characters).
pub fn ms_of_tree_key(key: &str) -> Option<&str> {
    key.split(treekey::TERM).next()
}

// ---------------------------------------------------------------------
// Path index keys (tree-encoded storage-path hierarchy)
// ---------------------------------------------------------------------

/// Split a canonical storage path (`scheme://bucket/seg/..`) into tree
/// segments: the `scheme://bucket` root, then each path component. The
/// parent path's segments are a prefix of the child's, which is what
/// makes the encoded parent key a string prefix of the child key.
fn path_segments(canonical_path: &str) -> Vec<&str> {
    let rest_at = canonical_path.find("://").map(|i| i + 3).unwrap_or(0);
    match canonical_path[rest_at..].find('/') {
        Some(j) => {
            let cut = rest_at + j;
            let mut segs = vec![&canonical_path[..cut]];
            segs.extend(canonical_path[cut + 1..].split('/'));
            segs
        }
        None => vec![canonical_path],
    }
}

pub fn path_key(ms: &Uid, canonical_path: &str) -> String {
    let mut key = tree_ms_prefix(ms);
    for seg in path_segments(canonical_path) {
        treekey::push_segment(&mut key, seg);
    }
    key
}

/// Prefix of every path key in a metastore.
pub fn path_ms_prefix(ms: &Uid) -> String {
    tree_ms_prefix(ms)
}

/// Decode a path-index key back to its canonical path string.
pub fn path_of_path_key(key: &str) -> Option<String> {
    let segs = treekey::decode(key)?;
    // segs[0] is the metastore id, segs[1] the scheme://bucket root.
    if segs.len() < 2 {
        return None;
    }
    Some(segs[1..].join("/"))
}

pub fn grant_key(ms: &Uid, securable: &Uid, principal: &str, privilege: &str) -> String {
    format!("{ms}/{securable}/{principal}|{privilege}")
}

pub fn grants_prefix(ms: &Uid, securable: &Uid) -> String {
    format!("{ms}/{securable}/")
}

pub fn tag_key(ms: &Uid, entity: &Uid, key: &str) -> String {
    format!("{ms}/{entity}/{key}")
}

pub fn tags_prefix(ms: &Uid, entity: &Uid) -> String {
    format!("{ms}/{entity}/")
}

pub fn coltag_key(ms: &Uid, table: &Uid, column: &str, key: &str) -> String {
    format!("{ms}/{table}/{column}/{key}")
}

pub fn coltags_prefix(ms: &Uid, table: &Uid) -> String {
    format!("{ms}/{table}/")
}

pub fn fgac_filter_key(ms: &Uid, table: &Uid) -> String {
    format!("{ms}/{table}/filter")
}

pub fn fgac_mask_key(ms: &Uid, table: &Uid, column: &str) -> String {
    format!("{ms}/{table}/mask/{column}")
}

pub fn fgac_mask_prefix(ms: &Uid, table: &Uid) -> String {
    format!("{ms}/{table}/mask/")
}

pub fn abac_key(ms: &Uid, scope: &Uid, name: &str) -> String {
    format!("{ms}/{scope}/{name}")
}

pub fn abac_prefix(ms: &Uid, scope: &Uid) -> String {
    format!("{ms}/{scope}/")
}

pub fn lineage_down_key(ms: &Uid, downstream: &Uid, upstream: &Uid) -> String {
    format!("{ms}/d/{downstream}/{upstream}")
}

pub fn lineage_up_key(ms: &Uid, upstream: &Uid, downstream: &Uid) -> String {
    format!("{ms}/u/{upstream}/{downstream}")
}

pub fn commit_key(ms: &Uid, table: &Uid, version: i64) -> String {
    format!("{ms}/{table}/{version:020}")
}

pub fn commit_prefix(ms: &Uid, table: &Uid) -> String {
    format!("{ms}/{table}/")
}

pub fn share_member_key(ms: &Uid, share: &Uid, entity: &Uid) -> String {
    format!("{ms}/{share}/{entity}")
}

pub fn share_members_prefix(ms: &Uid, share: &Uid) -> String {
    format!("{ms}/{share}/")
}

/// Extract the metastore id from an entity-table key (`{ms}/{id}`).
pub fn ms_of_ent_key(key: &str) -> Option<&str> {
    key.split('/').next()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(s: &str) -> Uid {
        Uid::from(s)
    }

    #[test]
    fn name_keys_are_lowercased() {
        let k = name_key(&uid("ms"), Some(&uid("p")), "relation", "Orders");
        assert_eq!(k, "ms/p/relation/orders");
    }

    #[test]
    fn root_parent_sentinel() {
        let k = name_key(&uid("ms"), None, "catalog", "main");
        assert_eq!(k, "ms/root/catalog/main");
        assert!(k.starts_with(&children_prefix(&uid("ms"), None)));
    }

    #[test]
    fn children_prefix_covers_group_prefix() {
        let ms = uid("ms");
        let p = uid("parent");
        let group = children_group_prefix(&ms, Some(&p), "relation");
        assert!(group.starts_with(&children_prefix(&ms, Some(&p))));
    }

    #[test]
    fn commit_keys_sort_numerically() {
        let ms = uid("ms");
        let t = uid("t");
        assert!(commit_key(&ms, &t, 9) < commit_key(&ms, &t, 10));
        assert!(commit_key(&ms, &t, 99) < commit_key(&ms, &t, 100));
    }

    #[test]
    fn ms_extraction() {
        assert_eq!(ms_of_ent_key("msid/entid"), Some("msid"));
    }

    #[test]
    fn tree_keys_nest_by_string_prefix() {
        let ms = uid("ms1");
        let cat = tree_key(&ms, &[("catalog", "Main")]);
        let sch = tree_key(&ms, &[("catalog", "Main"), ("schema", "S")]);
        let tbl = tree_key(&ms, &[("catalog", "main"), ("schema", "s"), ("relation", "t")]);
        assert!(cat.starts_with(&tree_ms_prefix(&ms)));
        assert!(sch.starts_with(&cat), "names are case-normalized");
        assert!(tbl.starts_with(&sch));
        assert_eq!(ms_of_tree_key(&tbl), Some("ms1"));
    }

    #[test]
    fn tree_group_prefix_selects_one_group() {
        let ms = uid("ms");
        let parent = tree_key(&ms, &[("catalog", "c"), ("schema", "s")]);
        let rel_prefix = tree_group_prefix(&parent, "relation");
        let table = tree_key(&ms, &[("catalog", "c"), ("schema", "s"), ("relation", "t")]);
        let volume = tree_key(&ms, &[("catalog", "c"), ("schema", "s"), ("volume", "v")]);
        assert!(table.starts_with(&rel_prefix));
        assert!(!volume.starts_with(&rel_prefix));
        assert!(volume.starts_with(&parent));
    }

    #[test]
    fn path_keys_nest_like_storage_paths() {
        let ms = uid("ms");
        let parent = path_key(&ms, "s3://b/warehouse");
        let child = path_key(&ms, "s3://b/warehouse/t1");
        let sibling = path_key(&ms, "s3://b/warehouse2");
        let bucket_only = path_key(&ms, "s3://b");
        assert!(child.starts_with(&parent));
        assert!(!sibling.starts_with(&parent), "no sibling-prefix trap");
        assert!(parent.starts_with(&bucket_only));
        assert!(parent.starts_with(&path_ms_prefix(&ms)));
        assert_eq!(path_of_path_key(&child), Some("s3://b/warehouse/t1".to_string()));
    }
}
