//! A pure sequential reference model of the catalog's entity-relationship
//! core, small enough to audit by eye (~300 lines).
//!
//! The model deliberately mirrors the *semantics* the live catalog exposes,
//! not its implementation: entities have stable identities (`EntId`), names
//! are an index over identities, drops are idempotent soft-deletes, and
//! external-table paths live in a flat registry with a prefix-overlap rule.
//!
//! # Two-phase application
//!
//! The live catalog resolves names at a (possibly stale) snapshot version and
//! then acts on the resolved *identity* at commit time.  A name-keyed model
//! cannot express that: after a concurrent rename, a live `update_comment`
//! addressed by the old name still succeeds (it holds the entity id), while a
//! name lookup in the final state fails.  So the model exposes
//! [`ModelState::apply_resolved`], which resolves names against one state
//! (the *resolve state* — the snapshot the live operation read) and
//! validates/effects the change against another (`self` — the commit-time
//! state).  [`ModelState::apply`] is the degenerate case where both coincide.

use std::collections::BTreeMap;
use std::fmt;

/// Synthetic entity identity. Assigned densely in creation order, which is
/// deterministic because the checker replays commits in commit order.
pub type EntId = u64;

#[derive(Clone, Debug)]
pub struct SchemaRec {
    pub name: String,
    pub alive: bool,
}

#[derive(Clone, Debug)]
pub struct TableRec {
    pub schema: EntId,
    pub name: String,
    pub comment: Option<String>,
    pub path: String,
    pub alive: bool,
}

/// One catalog-shaped operation, addressed by name (as the live API is).
/// All ops run inside the fixed catalog `main`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelOp {
    CreateSchema { name: String },
    DropSchema { name: String },
    CreateTable { schema: String, name: String, path: String },
    GetTable { schema: String, name: String },
    UpdateComment { schema: String, name: String, comment: String },
    RenameTable { schema: String, name: String, new_name: String },
    DropTable { schema: String, name: String },
    ListTables { schema: String },
}

impl fmt::Display for ModelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelOp::CreateSchema { name } => write!(f, "create_schema(main.{name})"),
            ModelOp::DropSchema { name } => write!(f, "drop_schema(main.{name})"),
            ModelOp::CreateTable { schema, name, path } => {
                write!(f, "create_table(main.{schema}.{name},{path})")
            }
            ModelOp::GetTable { schema, name } => write!(f, "get_table(main.{schema}.{name})"),
            ModelOp::UpdateComment { schema, name, comment } => {
                write!(f, "update_comment(main.{schema}.{name},{comment})")
            }
            ModelOp::RenameTable { schema, name, new_name } => {
                write!(f, "rename_table(main.{schema}.{name},{new_name})")
            }
            ModelOp::DropTable { schema, name } => write!(f, "drop_table(main.{schema}.{name})"),
            ModelOp::ListTables { schema } => write!(f, "list_tables(main.{schema})"),
        }
    }
}

/// `true` when two external paths are equal or one is a directory prefix of
/// the other — the catalog's one-asset-per-path invariant.
pub fn paths_overlap(p: &str, q: &str) -> bool {
    p == q
        || q.strip_prefix(p).is_some_and(|rest| rest.starts_with('/'))
        || p.strip_prefix(q).is_some_and(|rest| rest.starts_with('/'))
}

/// The full sequential state: identity tables plus name indexes.
#[derive(Clone, Debug, Default)]
pub struct ModelState {
    next_id: EntId,
    pub schemas_by_id: BTreeMap<EntId, SchemaRec>,
    pub tables_by_id: BTreeMap<EntId, TableRec>,
    /// Live schema name -> identity.
    pub schemas: BTreeMap<String, EntId>,
    /// Live (schema identity, table name) -> table identity.
    pub table_names: BTreeMap<(EntId, String), EntId>,
}

impl ModelState {
    pub fn new() -> Self {
        ModelState::default()
    }

    fn fresh_id(&mut self) -> EntId {
        self.next_id += 1;
        self.next_id
    }

    /// Seed helper used to build the initial model matching the live world.
    pub fn seed_schema(&mut self, name: &str) -> EntId {
        let id = self.fresh_id();
        self.schemas_by_id
            .insert(id, SchemaRec { name: name.to_string(), alive: true });
        self.schemas.insert(name.to_string(), id);
        id
    }

    /// Seed helper: table under an existing schema identity.
    pub fn seed_table(&mut self, schema: EntId, name: &str, path: &str) -> EntId {
        let id = self.fresh_id();
        self.tables_by_id.insert(
            id,
            TableRec {
                schema,
                name: name.to_string(),
                comment: None,
                path: path.to_string(),
                alive: true,
            },
        );
        self.table_names.insert((schema, name.to_string()), id);
        id
    }

    fn resolve_schema(&self, name: &str) -> Option<EntId> {
        self.schemas.get(name).copied()
    }

    fn resolve_table(&self, schema: &str, name: &str) -> Option<EntId> {
        let sid = self.resolve_schema(schema)?;
        self.table_names.get(&(sid, name.to_string())).copied()
    }

    fn live_paths(&self) -> impl Iterator<Item = &str> {
        self.tables_by_id
            .values()
            .filter(|t| t.alive)
            .map(|t| t.path.as_str())
    }

    fn path_conflicts(&self, path: &str) -> bool {
        self.live_paths().any(|p| paths_overlap(p, path))
    }

    /// Apply with resolution and effect against the same state.
    pub fn apply(&mut self, op: &ModelOp) -> String {
        let resolve = self.clone();
        self.apply_resolved(op, &resolve)
    }

    /// Resolve names against `rs` (the snapshot the live op read), validate
    /// and effect against `self` (the commit-time state). Returns the
    /// response digest in the same format the live driver produces.
    pub fn apply_resolved(&mut self, op: &ModelOp, rs: &ModelState) -> String {
        match op {
            ModelOp::CreateSchema { name } => {
                if self.schemas.contains_key(name) {
                    return "err:already_exists".into();
                }
                let id = self.fresh_id();
                self.schemas_by_id
                    .insert(id, SchemaRec { name: name.clone(), alive: true });
                self.schemas.insert(name.clone(), id);
                format!("ok:schema:{name}")
            }
            ModelOp::DropSchema { name } => {
                let Some(sid) = rs.resolve_schema(name) else {
                    return "err:not_found".into();
                };
                let Some(rec) = self.schemas_by_id.get_mut(&sid) else {
                    return "err:not_found".into();
                };
                if !rec.alive {
                    return "ok:dropped:0".into();
                }
                rec.alive = false;
                let dead_name = rec.name.clone();
                if self.schemas.get(&dead_name) == Some(&sid) {
                    self.schemas.remove(&dead_name);
                }
                let mut count = 1usize;
                let children: Vec<EntId> = self
                    .tables_by_id
                    .iter()
                    .filter(|(_, t)| t.schema == sid && t.alive)
                    .map(|(id, _)| *id)
                    .collect();
                for tid in children {
                    let t = self.tables_by_id.get_mut(&tid).unwrap();
                    t.alive = false;
                    let key = (sid, t.name.clone());
                    if self.table_names.get(&key) == Some(&tid) {
                        self.table_names.remove(&key);
                    }
                    count += 1;
                }
                format!("ok:dropped:{count}")
            }
            ModelOp::CreateTable { schema, name, path } => {
                let Some(sid) = rs.resolve_schema(schema) else {
                    return "err:not_found".into();
                };
                // Commit-time parent liveness re-check (mirrors the live
                // in-transaction re-read).
                if !self.schemas_by_id.get(&sid).is_some_and(|s| s.alive) {
                    return "err:not_found".into();
                }
                if self.table_names.contains_key(&(sid, name.clone())) {
                    return "err:already_exists".into();
                }
                if self.path_conflicts(path) {
                    return "err:path_conflict".into();
                }
                let id = self.fresh_id();
                self.tables_by_id.insert(
                    id,
                    TableRec {
                        schema: sid,
                        name: name.clone(),
                        comment: None,
                        path: path.clone(),
                        alive: true,
                    },
                );
                self.table_names.insert((sid, name.clone()), id);
                format!("ok:table:{name}")
            }
            ModelOp::GetTable { schema, name } => {
                let Some(tid) = rs.resolve_table(schema, name) else {
                    return "err:not_found".into();
                };
                match rs.tables_by_id.get(&tid) {
                    Some(t) if t.alive => format!(
                        "ok:get:{}:comment={}:path={}",
                        t.name,
                        t.comment.as_deref().unwrap_or("-"),
                        t.path
                    ),
                    _ => "err:not_found".into(),
                }
            }
            ModelOp::UpdateComment { schema, name, comment } => {
                let Some(tid) = rs.resolve_table(schema, name) else {
                    return "err:not_found".into();
                };
                match self.tables_by_id.get_mut(&tid) {
                    Some(t) if t.alive => {
                        t.comment = Some(comment.clone());
                        format!("ok:comment:{}:{comment}", t.name)
                    }
                    _ => "err:not_found".into(),
                }
            }
            ModelOp::RenameTable { schema, name, new_name } => {
                let Some(tid) = rs.resolve_table(schema, name) else {
                    return "err:not_found".into();
                };
                let (sid, old_name, alive) = match self.tables_by_id.get(&tid) {
                    Some(t) => (t.schema, t.name.clone(), t.alive),
                    None => return "err:not_found".into(),
                };
                if !alive {
                    return "err:not_found".into();
                }
                let new_key = (sid, new_name.clone());
                match self.table_names.get(&new_key) {
                    Some(&other) if other != tid => return "err:already_exists".into(),
                    _ => {}
                }
                let old_key = (sid, old_name);
                if self.table_names.get(&old_key) == Some(&tid) {
                    self.table_names.remove(&old_key);
                }
                self.table_names.insert(new_key, tid);
                let t = self.tables_by_id.get_mut(&tid).unwrap();
                t.name = new_name.clone();
                format!("ok:renamed:{new_name}")
            }
            ModelOp::DropTable { schema, name } => {
                let Some(tid) = rs.resolve_table(schema, name) else {
                    return "err:not_found".into();
                };
                let Some(t) = self.tables_by_id.get_mut(&tid) else {
                    return "err:not_found".into();
                };
                if !t.alive {
                    return "ok:dropped:0".into();
                }
                t.alive = false;
                let key = (t.schema, t.name.clone());
                if self.table_names.get(&key) == Some(&tid) {
                    self.table_names.remove(&key);
                }
                "ok:dropped:1".into()
            }
            ModelOp::ListTables { schema } => {
                let Some(sid) = rs.resolve_schema(schema) else {
                    return "err:not_found".into();
                };
                let mut names: Vec<&str> = self
                    .tables_by_id
                    .values()
                    .filter(|t| t.schema == sid && t.alive)
                    .map(|t| t.name.as_str())
                    .collect();
                names.sort_unstable();
                format!("ok:list:[{}]", names.join(","))
            }
        }
    }

    /// All live external paths, for the one-asset-per-path sweep.
    pub fn live_path_list(&self) -> Vec<String> {
        self.live_paths().map(str::to_string).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_drop_roundtrip() {
        let mut m = ModelState::new();
        assert_eq!(m.apply(&ModelOp::CreateSchema { name: "s".into() }), "ok:schema:s");
        let op = ModelOp::CreateTable {
            schema: "s".into(),
            name: "t".into(),
            path: "s3://b/p".into(),
        };
        assert_eq!(m.apply(&op), "ok:table:t");
        assert_eq!(m.apply(&op), "err:already_exists");
        assert_eq!(
            m.apply(&ModelOp::GetTable { schema: "s".into(), name: "t".into() }),
            "ok:get:t:comment=-:path=s3://b/p"
        );
        assert_eq!(
            m.apply(&ModelOp::DropTable { schema: "s".into(), name: "t".into() }),
            "ok:dropped:1"
        );
        assert_eq!(
            m.apply(&ModelOp::GetTable { schema: "s".into(), name: "t".into() }),
            "err:not_found"
        );
    }

    #[test]
    fn drop_schema_cascades_and_double_drop_table_is_zero() {
        let mut m = ModelState::new();
        m.apply(&ModelOp::CreateSchema { name: "s".into() });
        m.apply(&ModelOp::CreateTable {
            schema: "s".into(),
            name: "t".into(),
            path: "s3://b/p".into(),
        });
        // Stale-resolve double drop: resolve against a snapshot where the
        // table is alive, effect against a state where it is already dead.
        let rs = m.clone();
        let drop = ModelOp::DropTable { schema: "s".into(), name: "t".into() };
        assert_eq!(m.apply_resolved(&drop, &rs), "ok:dropped:1");
        assert_eq!(m.apply_resolved(&drop, &rs), "ok:dropped:0");
        assert_eq!(
            m.apply(&ModelOp::DropSchema { name: "s".into() }),
            "ok:dropped:1" // table already dead, only the schema counts
        );
    }

    #[test]
    fn rename_keeps_identity_for_stale_resolvers() {
        let mut m = ModelState::new();
        m.apply(&ModelOp::CreateSchema { name: "s".into() });
        m.apply(&ModelOp::CreateTable {
            schema: "s".into(),
            name: "a".into(),
            path: "s3://b/a".into(),
        });
        let stale = m.clone();
        m.apply(&ModelOp::RenameTable {
            schema: "s".into(),
            name: "a".into(),
            new_name: "b".into(),
        });
        // An updater that resolved "a" before the rename still lands on the
        // same identity, now named "b".
        let upd = ModelOp::UpdateComment {
            schema: "s".into(),
            name: "a".into(),
            comment: "c".into(),
        };
        assert_eq!(m.apply_resolved(&upd, &stale), "ok:comment:b:c");
        // But resolving against the current state fails.
        let cur = m.clone();
        assert_eq!(m.apply_resolved(&upd, &cur), "err:not_found");
    }

    #[test]
    fn path_overlap_rules() {
        assert!(paths_overlap("s3://b/x", "s3://b/x"));
        assert!(paths_overlap("s3://b/x", "s3://b/x/y"));
        assert!(paths_overlap("s3://b/x/y", "s3://b/x"));
        assert!(!paths_overlap("s3://b/x", "s3://b/xy"));
        let mut m = ModelState::new();
        m.apply(&ModelOp::CreateSchema { name: "s".into() });
        m.apply(&ModelOp::CreateTable {
            schema: "s".into(),
            name: "t".into(),
            path: "s3://b/x".into(),
        });
        assert_eq!(
            m.apply(&ModelOp::CreateTable {
                schema: "s".into(),
                name: "u".into(),
                path: "s3://b/x/sub".into(),
            }),
            "err:path_conflict"
        );
    }
}
