//! Offline snapshot-isolation / serializability checker.
//!
//! Replays a recorded [`History`] against the pure sequential
//! [`ModelState`] and verifies, at every prefix of the commit order:
//!
//! * **Commit-order equivalence** — committed versions are dense
//!   (`base+1, base+2, ...`), unique, and their database CSN order agrees
//!   with version order.
//! * **No lost or duplicate writes** — each committed op's response digest
//!   is reproduced by the model when applied at its commit point, with name
//!   resolution taken from one of the snapshot versions the op actually
//!   read (∃-quantified over its observed reads: the live catalog resolves
//!   at a possibly-stale snapshot and acts by identity at commit).
//! * **Read-your-snapshot** — read-only ops and aborted writes must be
//!   explainable by *some* pair of observed snapshot versions.
//! * **Read-your-writes** — after a client commits version `V`, every later
//!   op by that client observes a version `>= V`.
//! * **One-asset-per-path** — no two live external tables overlap by path
//!   prefix in any committed state.

use std::collections::BTreeMap;
use std::fmt;

use crate::history::{History, OpRecord};
use crate::model::{paths_overlap, ModelState};

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two commits claim the same metastore version.
    DuplicateCommitVersion { version: u64, seqs: Vec<u64> },
    /// Committed versions are not dense from `base_version + 1`.
    VersionGap { expected: u64, found: u64 },
    /// CSN order disagrees with version order.
    CommitOrderMismatch { version: u64, csn: u64, prev_csn: u64 },
    /// A committed op's effect is not reproducible by the model at its
    /// commit point under any observed resolve snapshot.
    WriteMismatch { seq: u64, got: String, tried: Vec<String> },
    /// An aborted write's error is not explainable at its abort version.
    AbortedOpMismatch { seq: u64, got: String, tried: Vec<String> },
    /// A read-only op's response matches no observed snapshot.
    StaleRead { seq: u64, got: String, tried: Vec<String> },
    /// A client failed to observe its own committed write.
    NonMonotonicClient { client: usize, seq: u64, committed: u64, observed: u64 },
    /// Two live external tables overlap by path prefix.
    PathOverlap { version: u64, a: String, b: String },
    /// The tree index disagrees with the entity table: an orphan tree row
    /// (missing/inactive entity or non-identical bytes), a missing
    /// ancestor prefix row, or an active entity with no tree row.
    TreeIndexMismatch { key: String, why: String },
    /// The path index violates one-asset-per-path: a registered key is a
    /// strict prefix of another registered key, or a row points at a
    /// missing/inactive entity.
    PathIndexMismatch { key: String, why: String },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DuplicateCommitVersion { version, seqs } => {
                write!(f, "duplicate commit version {version} claimed by ops {seqs:?}")
            }
            Violation::VersionGap { expected, found } => {
                write!(f, "commit version gap: expected {expected}, found {found}")
            }
            Violation::CommitOrderMismatch { version, csn, prev_csn } => write!(
                f,
                "commit order mismatch at version {version}: csn {csn} <= previous csn {prev_csn}"
            ),
            Violation::WriteMismatch { seq, got, tried } => write!(
                f,
                "op {seq}: committed response {got:?} not reproducible (model said {tried:?})"
            ),
            Violation::AbortedOpMismatch { seq, got, tried } => write!(
                f,
                "op {seq}: aborted response {got:?} not explainable (model said {tried:?})"
            ),
            Violation::StaleRead { seq, got, tried } => write!(
                f,
                "op {seq}: read response {got:?} matches no observed snapshot (model said {tried:?})"
            ),
            Violation::NonMonotonicClient { client, seq, committed, observed } => write!(
                f,
                "client {client} op {seq}: observed version {observed} after own commit {committed}"
            ),
            Violation::PathOverlap { version, a, b } => {
                write!(f, "path overlap at version {version}: {a:?} vs {b:?}")
            }
            Violation::TreeIndexMismatch { key, why } => {
                write!(f, "tree index mismatch at {key:?}: {why}")
            }
            Violation::PathIndexMismatch { key, why } => {
                write!(f, "path index mismatch at {key:?}: {why}")
            }
        }
    }
}

/// Verify the on-disk structural invariants of a metastore's indexes
/// directly against the database — independent of any recorded history,
/// so it holds at *every* quiescent point, not just checked prefixes:
///
/// * **Tree ↔ entity 1:1** — every tree row names an active entity and
///   carries its exact entity-row bytes; every active entity has exactly
///   one tree row (soft-deleted entities have none).
/// * **No orphan at any prefix** — every terminator-prefix of every tree
///   key is itself a present row: a child can never outlive its ancestor
///   chain in the index.
/// * **One asset per path, prefix-free** — registered path keys are
///   prefix-free (no registered path is an ancestor of another) and each
///   names an active entity.
pub fn verify_structure(db: &uc_txdb::Db, ms: &uc_catalog::Uid) -> Vec<Violation> {
    use uc_catalog::model::{keys, treekey};
    use uc_catalog::Entity;

    let mut violations = Vec::new();
    let rt = db.begin_read();

    let ent_rows = rt.scan_prefix(keys::T_ENTITY, &keys::ent_ms_prefix(ms));
    let mut active: std::collections::BTreeMap<String, bytes::Bytes> =
        std::collections::BTreeMap::new();
    for (_, raw) in &ent_rows {
        match Entity::decode(raw) {
            Ok(ent) if ent.is_active() => {
                active.insert(ent.id.as_str().to_string(), raw.clone());
            }
            _ => {}
        }
    }

    let tree_rows = rt.scan_prefix(keys::T_TREE, &keys::tree_ms_prefix(ms));
    // An unbuilt index (legacy layout) is vacuously consistent.
    if !tree_rows.is_empty() {
        let present: std::collections::BTreeSet<&str> =
            tree_rows.iter().map(|(k, _)| k.as_str()).collect();
        for (key, raw) in &tree_rows {
            let ent = match Entity::decode(raw) {
                Ok(e) => e,
                Err(e) => {
                    violations.push(Violation::TreeIndexMismatch {
                        key: key.clone(),
                        why: format!("undecodable value: {e}"),
                    });
                    continue;
                }
            };
            match active.get(ent.id.as_str()) {
                Some(ent_raw) if ent_raw == raw => {}
                Some(_) => violations.push(Violation::TreeIndexMismatch {
                    key: key.clone(),
                    why: format!("value not byte-identical to entity row {}", ent.id),
                }),
                None => violations.push(Violation::TreeIndexMismatch {
                    key: key.clone(),
                    why: format!("orphan row: entity {} missing or inactive", ent.id),
                }),
            }
            for prefix in treekey::chain_prefixes(key) {
                if !present.contains(prefix) {
                    violations.push(Violation::TreeIndexMismatch {
                        key: key.clone(),
                        why: format!("ancestor prefix {prefix:?} has no row"),
                    });
                }
            }
        }
        if tree_rows.len() != active.len() {
            violations.push(Violation::TreeIndexMismatch {
                key: keys::tree_ms_prefix(ms),
                why: format!(
                    "{} tree rows for {} active entities (must be 1:1)",
                    tree_rows.len(),
                    active.len()
                ),
            });
        }
    }

    let path_rows = rt.scan_prefix(keys::T_PATH, &keys::path_ms_prefix(ms));
    for pair in path_rows.windows(2) {
        // Rows come back in key order, and an ancestor sorts immediately
        // before its first descendant — adjacent comparison is complete.
        if pair[1].0.starts_with(&pair[0].0) {
            violations.push(Violation::PathIndexMismatch {
                key: pair[1].0.clone(),
                why: format!("registered under registered ancestor {:?}", pair[0].0),
            });
        }
    }
    for (key, id_raw) in &path_rows {
        let id = String::from_utf8_lossy(id_raw);
        if !active.contains_key(id.as_ref()) {
            violations.push(Violation::PathIndexMismatch {
                key: key.clone(),
                why: format!("orphan row: entity {id} missing or inactive"),
            });
        }
    }

    violations
}

/// Check a recorded history against an initial model state (the world as it
/// stood at `history.base_version`). Returns all violations found.
pub fn check(history: &History, initial: &ModelState) -> Vec<Violation> {
    let mut violations = Vec::new();

    // --- Phase 1: commit-order integrity -------------------------------
    let mut commits: Vec<&OpRecord> = history.ops.iter().filter(|o| o.commit.is_some()).collect();
    commits.sort_by_key(|o| o.commit.unwrap());

    let mut by_version: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for c in &commits {
        by_version.entry(c.commit.unwrap().0).or_default().push(c.seq);
    }
    for (version, seqs) in &by_version {
        if seqs.len() > 1 {
            violations.push(Violation::DuplicateCommitVersion {
                version: *version,
                seqs: seqs.clone(),
            });
        }
    }
    let mut expected = history.base_version + 1;
    let mut prev_csn: Option<u64> = None;
    for c in &commits {
        let (version, csn) = c.commit.unwrap();
        if version > expected {
            violations.push(Violation::VersionGap { expected, found: version });
        }
        if version >= expected {
            expected = version + 1;
        }
        if let Some(p) = prev_csn {
            if csn <= p {
                violations.push(Violation::CommitOrderMismatch { version, csn, prev_csn: p });
            }
        }
        prev_csn = Some(csn);
    }

    // --- Phase 2: replay commits, building the snapshot sequence -------
    // snapshots[i] = (version, state after all commits <= version)
    let mut snapshots: Vec<(u64, ModelState)> = vec![(history.base_version, initial.clone())];
    let state_at = |snaps: &[(u64, ModelState)], v: u64| -> ModelState {
        // Latest snapshot with version <= v (versions outside the recorded
        // range clamp to the nearest end).
        let idx = snaps.partition_point(|(sv, _)| *sv <= v);
        snaps[idx.saturating_sub(1)].1.clone()
    };

    for c in &commits {
        let (version, _) = c.commit.unwrap();
        let pre = snapshots.last().unwrap().1.clone();
        // Candidate resolve versions: every snapshot version the op read,
        // falling back to the commit predecessor if it recorded none.
        let mut candidates: Vec<u64> = c.reads.clone();
        if candidates.is_empty() {
            candidates.push(snapshots.last().unwrap().0);
        }
        candidates.sort_unstable();
        candidates.dedup();

        let mut committed: Option<ModelState> = None;
        let mut tried = Vec::new();
        for &rv in &candidates {
            let rs = state_at(&snapshots, rv);
            let mut next = pre.clone();
            let resp = next.apply_resolved(&c.op, &rs);
            if resp == c.resp {
                committed = Some(next);
                break;
            }
            tried.push(resp);
        }
        tried.sort_unstable();
        tried.dedup();
        match committed {
            Some(next) => {
                // One-asset-per-path sweep over the new committed state.
                let paths = next.live_path_list();
                'sweep: for i in 0..paths.len() {
                    for j in (i + 1)..paths.len() {
                        if paths_overlap(&paths[i], &paths[j]) {
                            violations.push(Violation::PathOverlap {
                                version,
                                a: paths[i].clone(),
                                b: paths[j].clone(),
                            });
                            break 'sweep;
                        }
                    }
                }
                snapshots.push((version, next));
            }
            None => {
                violations.push(Violation::WriteMismatch {
                    seq: c.seq,
                    got: c.resp.clone(),
                    tried,
                });
                // Keep the pre-state associated with this version so later
                // reads of it still resolve to something.
                snapshots.push((version, pre));
            }
        }
    }

    // --- Phase 3: aborted writes and read-only ops ---------------------
    let all_versions: Vec<u64> = snapshots.iter().map(|(v, _)| *v).collect();
    for op in &history.ops {
        if op.commit.is_some() {
            continue;
        }
        let read_candidates: Vec<u64> = if op.reads.is_empty() {
            all_versions.clone()
        } else {
            let mut c = op.reads.clone();
            c.sort_unstable();
            c.dedup();
            c
        };
        if !op.aborts.is_empty() {
            // The op ended in an abort at some version `a`: its error must
            // be explainable by effecting against the state at `a` with
            // resolution from some observed read.
            let mut ok = false;
            let mut tried = Vec::new();
            'outer: for &a in &op.aborts {
                let base = state_at(&snapshots, a);
                for &rv in &read_candidates {
                    let rs = state_at(&snapshots, rv);
                    let resp = base.clone().apply_resolved(&op.op, &rs);
                    if resp == op.resp {
                        ok = true;
                        break 'outer;
                    }
                    tried.push(resp);
                }
            }
            if !ok {
                tried.sort_unstable();
                tried.dedup();
                violations.push(Violation::AbortedOpMismatch {
                    seq: op.seq,
                    got: op.resp.clone(),
                    tried,
                });
            }
            continue;
        }
        // Pure read (or an error produced before any write attempt): must
        // match some pair of observed snapshots (list ops resolve the
        // schema and scan the children in two phases, so two versions may
        // legitimately differ).
        let mut ok = false;
        let mut tried = Vec::new();
        'pairs: for &v2 in &read_candidates {
            let base = state_at(&snapshots, v2);
            for &v1 in &read_candidates {
                let rs = state_at(&snapshots, v1);
                let resp = base.clone().apply_resolved(&op.op, &rs);
                if resp == op.resp {
                    ok = true;
                    break 'pairs;
                }
                tried.push(resp);
            }
        }
        if !ok {
            tried.sort_unstable();
            tried.dedup();
            violations.push(Violation::StaleRead {
                seq: op.seq,
                got: op.resp.clone(),
                tried,
            });
        }
    }

    // --- Phase 4: read-your-writes per client --------------------------
    let mut ops_by_seq: Vec<&OpRecord> = history.ops.iter().collect();
    ops_by_seq.sort_by_key(|o| o.seq);
    let mut last_commit: BTreeMap<usize, u64> = BTreeMap::new();
    for op in &ops_by_seq {
        if let Some(&committed) = last_commit.get(&op.client) {
            let observed = op
                .reads
                .iter()
                .chain(op.aborts.iter())
                .copied()
                .chain(op.commit.map(|(v, _)| v))
                .max();
            if let Some(observed) = observed {
                if observed < committed {
                    violations.push(Violation::NonMonotonicClient {
                        client: op.client,
                        seq: op.seq,
                        committed,
                        observed,
                    });
                }
            }
        }
        if let Some((v, _)) = op.commit {
            let e = last_commit.entry(op.client).or_insert(0);
            *e = (*e).max(v);
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::model::ModelOp;

    fn seeded() -> ModelState {
        let mut m = ModelState::new();
        let s = m.seed_schema("s");
        m.seed_table(s, "seed0", "s3://lake/ext/s/seed0");
        m
    }

    fn rec(
        seq: u64,
        client: usize,
        op: ModelOp,
        resp: &str,
        reads: Vec<u64>,
        commit: Option<(u64, u64)>,
    ) -> OpRecord {
        OpRecord { seq, client, op, resp: resp.into(), reads, commit, aborts: vec![] }
    }

    #[test]
    fn clean_sequential_history_passes() {
        let h = History {
            base_version: 5,
            ops: vec![
                rec(
                    0,
                    0,
                    ModelOp::CreateTable {
                        schema: "s".into(),
                        name: "t0".into(),
                        path: "s3://lake/ext/s/t0".into(),
                    },
                    "ok:table:t0",
                    vec![5],
                    Some((6, 10)),
                ),
                rec(
                    1,
                    1,
                    ModelOp::GetTable { schema: "s".into(), name: "t0".into() },
                    "ok:get:t0:comment=-:path=s3://lake/ext/s/t0",
                    vec![6],
                    None,
                ),
            ],
        };
        assert_eq!(check(&h, &seeded()), vec![]);
    }

    #[test]
    fn duplicate_version_is_flagged() {
        let mk = |seq, name: &str, csn| {
            rec(
                seq,
                seq as usize,
                ModelOp::CreateTable {
                    schema: "s".into(),
                    name: name.into(),
                    path: format!("s3://lake/ext/s/{name}"),
                },
                &format!("ok:table:{name}"),
                vec![5],
                Some((6, csn)),
            )
        };
        let h = History { base_version: 5, ops: vec![mk(0, "a", 10), mk(1, "b", 11)] };
        let vs = check(&h, &seeded());
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::DuplicateCommitVersion { version: 6, .. })),
            "expected duplicate-version violation, got {vs:?}"
        );
    }

    #[test]
    fn lost_write_is_flagged_as_stale_read() {
        // t0 is created at version 6, but a later read at version 6 claims
        // it does not exist -> the read is unexplainable.
        let h = History {
            base_version: 5,
            ops: vec![
                rec(
                    0,
                    0,
                    ModelOp::CreateTable {
                        schema: "s".into(),
                        name: "t0".into(),
                        path: "s3://lake/ext/s/t0".into(),
                    },
                    "ok:table:t0",
                    vec![5],
                    Some((6, 10)),
                ),
                rec(
                    1,
                    1,
                    ModelOp::GetTable { schema: "s".into(), name: "t0".into() },
                    "err:not_found",
                    vec![6],
                    None,
                ),
            ],
        };
        let vs = check(&h, &seeded());
        assert!(
            vs.iter().any(|v| matches!(v, Violation::StaleRead { seq: 1, .. })),
            "expected stale read, got {vs:?}"
        );
    }

    #[test]
    fn read_your_writes_is_enforced() {
        let h = History {
            base_version: 5,
            ops: vec![
                rec(
                    0,
                    0,
                    ModelOp::CreateTable {
                        schema: "s".into(),
                        name: "t0".into(),
                        path: "s3://lake/ext/s/t0".into(),
                    },
                    "ok:table:t0",
                    vec![5],
                    Some((6, 10)),
                ),
                // Same client then reads at version 5 < its own commit 6.
                rec(
                    1,
                    0,
                    ModelOp::GetTable { schema: "s".into(), name: "seed0".into() },
                    "ok:get:seed0:comment=-:path=s3://lake/ext/s/seed0",
                    vec![5],
                    None,
                ),
            ],
        };
        let vs = check(&h, &seeded());
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::NonMonotonicClient { client: 0, seq: 1, .. })),
            "expected non-monotonic client, got {vs:?}"
        );
    }

    #[test]
    fn version_gap_and_csn_disorder_are_flagged() {
        let h = History {
            base_version: 5,
            ops: vec![
                rec(
                    0,
                    0,
                    ModelOp::CreateTable {
                        schema: "s".into(),
                        name: "a".into(),
                        path: "s3://lake/ext/s/a".into(),
                    },
                    "ok:table:a",
                    vec![5],
                    Some((7, 10)),
                ),
                rec(
                    1,
                    1,
                    ModelOp::CreateTable {
                        schema: "s".into(),
                        name: "b".into(),
                        path: "s3://lake/ext/s/b".into(),
                    },
                    "ok:table:b",
                    vec![7],
                    Some((8, 9)),
                ),
            ],
        };
        let vs = check(&h, &seeded());
        assert!(vs.iter().any(|v| matches!(v, Violation::VersionGap { expected: 6, found: 7 })));
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::CommitOrderMismatch { version: 8, csn: 9, .. })));
    }

    #[test]
    fn path_overlap_in_committed_state_is_flagged() {
        // Both creates claim success with overlapping paths (as a weakened
        // commit check would allow).
        let h = History {
            base_version: 5,
            ops: vec![
                rec(
                    0,
                    0,
                    ModelOp::CreateTable {
                        schema: "s".into(),
                        name: "a".into(),
                        path: "s3://lake/ext/shared".into(),
                    },
                    "ok:table:a",
                    vec![5],
                    Some((6, 10)),
                ),
                rec(
                    1,
                    1,
                    ModelOp::CreateTable {
                        schema: "s".into(),
                        name: "b".into(),
                        path: "s3://lake/ext/shared/sub".into(),
                    },
                    "ok:table:b",
                    vec![5],
                    Some((7, 11)),
                ),
            ],
        };
        let vs = check(&h, &seeded());
        // The second create must either mismatch (model refuses) — which is
        // the expected signal — or produce a path overlap.
        assert!(
            vs.iter().any(|v| matches!(
                v,
                Violation::WriteMismatch { seq: 1, .. } | Violation::PathOverlap { .. }
            )),
            "expected write mismatch or path overlap, got {vs:?}"
        );
    }
}
