#![forbid(unsafe_code)]
//! Shared harness for the figure-regeneration binaries and benches.
//!
//! Every table and figure in the paper's evaluation (§6) has a binary in
//! `src/bin/` that regenerates it; this library holds what they share —
//! world bootstrapping with configurable latency models, a closed-loop
//! load generator, latency summaries, and plain-text table output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use uc_catalog::ids::Uid;
use uc_catalog::service::{Context, UcConfig, UnityCatalog};
use uc_cloudstore::{LatencyModel, ObjectStore, StsService, Clock};
use uc_obs::{Histogram, Obs};
use uc_txdb::{Db, DbConfig};

pub mod timer;
pub use timer::Stopwatch;

pub use uc_obs as obs;
pub use uc_workload as workload;

/// The administrator principal every harness world uses.
pub const ADMIN: &str = "admin";

/// A bootstrapped catalog world.
pub struct World {
    pub db: Db,
    pub store: ObjectStore,
    pub uc: Arc<UnityCatalog>,
    pub ms: Uid,
}

/// Knobs for world construction.
pub struct WorldConfig {
    /// Database connection pool size.
    pub db_pool: usize,
    /// Per-operation database latency.
    pub db_latency: Duration,
    /// Engine→catalog network hop latency.
    pub api_latency: Duration,
    /// Object storage per-operation latency.
    pub storage_latency: Duration,
    /// Metadata cache enabled?
    pub cache: bool,
    /// Credential cache enabled?
    pub cred_cache: bool,
    /// STS mint round-trip cost.
    pub sts_mint_cost: Duration,
    /// Observability handle shared by every layer of the world. The
    /// default is metrics-only; pass `Obs::with_clock_fn` to also collect
    /// replayable traces.
    pub obs: Obs,
    /// Record per-tenant dimensional series on every API call (the
    /// service default). Benches flip this off for the unlabeled arm.
    pub tenant_labels: bool,
    /// Per-class database latency model; when set it overrides the
    /// uniform `db_latency`. Lets a bench charge reads and scans a
    /// round-trip while keeping bulk population writes free.
    pub db_latency_model: Option<LatencyModel>,
    /// Build the metastore on the legacy flat name index (no tree
    /// index), the before-migration layout benches compare against.
    pub legacy_layout: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            db_pool: 64,
            db_latency: Duration::ZERO,
            api_latency: Duration::ZERO,
            storage_latency: Duration::ZERO,
            cache: true,
            cred_cache: true,
            sts_mint_cost: Duration::ZERO,
            obs: Obs::disabled(),
            tenant_labels: true,
            db_latency_model: None,
            legacy_layout: false,
        }
    }
}

impl World {
    /// Build a world: database + storage + one catalog node + a metastore
    /// with a storage credential and managed root configured.
    pub fn build(cfg: &WorldConfig) -> World {
        let db = Db::new(DbConfig {
            pool_size: cfg.db_pool,
            latency: cfg
                .db_latency_model
                .clone()
                .unwrap_or_else(|| LatencyModel::uniform(cfg.db_latency)),
            obs: cfg.obs.clone(),
            ..Default::default()
        });
        let store = ObjectStore::new(
            StsService::new(Clock::system()).with_obs(cfg.obs.clone()),
            LatencyModel::uniform(cfg.storage_latency),
        )
        .with_obs(cfg.obs.clone());
        let uc_config = UcConfig {
            api_latency: LatencyModel::uniform(cfg.api_latency),
            cache: if cfg.cache {
                uc_catalog::cache::CacheConfig::default()
            } else {
                uc_catalog::cache::CacheConfig::disabled()
            },
            cred_cache_enabled: cfg.cred_cache,
            sts_mint_cost: cfg.sts_mint_cost,
            obs: cfg.obs.clone(),
            tenant_labels: cfg.tenant_labels,
            start_legacy_layout: cfg.legacy_layout,
            ..Default::default()
        };
        let uc = UnityCatalog::new(db.clone(), store.clone(), uc_config, "node-0");
        let ms = uc.create_metastore(ADMIN, "bench", "us-west-2").unwrap();
        let ctx = Context::user(ADMIN);
        let root = store.create_bucket("lake");
        uc.create_storage_credential(&ctx, &ms, "lake_cred", &root).unwrap();
        uc.set_metastore_root(&ctx, &ms, "s3://lake/managed").unwrap();
        World { db, store, uc, ms }
    }

    pub fn admin(&self) -> Context {
        Context::user(ADMIN)
    }
}

/// Latency summary of one load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadSummary {
    pub requests: u64,
    pub wall: Duration,
    pub throughput_rps: f64,
    pub mean: Duration,
    pub p50: Duration,
    pub p99: Duration,
}

/// Run a closed loop: `threads` workers issue `op` back-to-back for
/// `duration`, aggregating per-request latencies into a shared
/// [`uc_obs::Histogram`] — the same log-bucketed instrument the request
/// path records into, so bench tables and `/metrics` snapshots report
/// percentiles from one definition. Workers record concurrently with no
/// merge step; log₂ buckets keep the relative error of a reported
/// percentile under 2× at any magnitude, which is ample for the
/// order-of-magnitude comparisons in §6.
pub fn closed_loop(
    threads: usize,
    duration: Duration,
    op: impl Fn() + Send + Sync,
) -> LoadSummary {
    closed_loop_indexed(threads, duration, |_, _| op())
}

/// [`closed_loop`], passing each invocation its worker index and that
/// worker's iteration number. This is how a sweep derives per-request
/// variety (which table to hit) without any shared state: a shared
/// `AtomicU64` "next request" counter — the obvious alternative — puts
/// one contended cache line *inside the measured region* and caps the
/// very scaling the harness exists to measure.
pub fn closed_loop_indexed(
    threads: usize,
    duration: Duration,
    op: impl Fn(usize, u64) + Send + Sync,
) -> LoadSummary {
    let op = &op;
    let total = AtomicU64::new(0);
    let total = &total;
    let latencies = Histogram::new();
    let start = Stopwatch::start();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let latencies = latencies.clone();
            scope.spawn(move || {
                let mut n = 0u64;
                while start.elapsed() < duration {
                    let t0 = Stopwatch::start();
                    op(t, n);
                    latencies.record(t0.elapsed().as_nanos() as u64);
                    n += 1;
                }
                // One shared add per worker per run, outside the timed
                // region — not per request.
                total.fetch_add(n, Ordering::Relaxed);
            });
        }
    });
    let wall = start.elapsed();
    let requests = total.load(Ordering::Relaxed);
    let mean = if latencies.count() == 0 {
        Duration::ZERO
    } else {
        Duration::from_nanos(latencies.sum() / latencies.count())
    };
    LoadSummary {
        requests,
        wall,
        throughput_rps: requests as f64 / wall.as_secs_f64(),
        mean,
        p50: Duration::from_nanos(latencies.percentile(0.5)),
        p99: Duration::from_nanos(latencies.percentile(0.99)),
    }
}

/// One parsed instrument from a uc-obs text snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotValue {
    Counter(u64),
    Gauge(i64),
    Histogram { count: u64, sum: u64, p50: u64, p95: u64, p99: u64, max: u64 },
    /// A trailing-window series line (`<name> window bucket_ms=… …`).
    Window { bucket_ms: u64, window_ms: u64, count: u64, rate_per_s: u64, p50: u64, p99: u64 },
}

/// Parse a `Registry::text_snapshot` back into name → value pairs.
///
/// The consumer side of the snapshot contract: bench binaries and the CI
/// determinism gate read telemetry through this instead of scraping ad-hoc
/// stdout. Lines that don't parse are skipped — exporters may grow fields,
/// and a reader must not panic on a newer snapshot.
pub fn parse_snapshot(text: &str) -> std::collections::BTreeMap<String, SnapshotValue> {
    let mut out = std::collections::BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(kind)) = (parts.next(), parts.next()) else { continue };
        let fields: Vec<&str> = parts.collect();
        let field = |key: &str| -> Option<u64> {
            fields
                .iter()
                .find_map(|f| f.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
                .and_then(|v| v.parse().ok())
        };
        let value = match kind {
            "counter" => fields.first().and_then(|v| v.parse().ok()).map(SnapshotValue::Counter),
            "gauge" => fields.first().and_then(|v| v.parse().ok()).map(SnapshotValue::Gauge),
            "histogram" => Some(SnapshotValue::Histogram {
                count: field("count").unwrap_or(0),
                sum: field("sum").unwrap_or(0),
                p50: field("p50").unwrap_or(0),
                p95: field("p95").unwrap_or(0),
                p99: field("p99").unwrap_or(0),
                max: field("max").unwrap_or(0),
            }),
            "window" => Some(SnapshotValue::Window {
                bucket_ms: field("bucket_ms").unwrap_or(0),
                window_ms: field("window_ms").unwrap_or(0),
                count: field("count").unwrap_or(0),
                rate_per_s: field("rate_per_s").unwrap_or(0),
                p50: field("p50").unwrap_or(0),
                p99: field("p99").unwrap_or(0),
            }),
            _ => None,
        };
        if let Some(v) = value {
            out.insert(name.to_string(), v);
        }
    }
    out
}

/// Sum every labeled counter of a family (`base{label} counter v`),
/// including the `{~overflow}` tail cell. The family contract is that
/// this sum equals the family's unlabeled global counter exactly — the
/// heavy-hitter `approx` lines are estimates and never parse as counters,
/// so they can't double-count here.
pub fn labeled_counter_sum(
    parsed: &std::collections::BTreeMap<String, SnapshotValue>,
    base: &str,
) -> u64 {
    let prefix = format!("{base}{{");
    parsed
        .iter()
        .filter(|(name, _)| name.starts_with(&prefix))
        .filter_map(|(_, v)| match v {
            SnapshotValue::Counter(n) => Some(*n),
            _ => None,
        })
        .sum()
}

/// Time a single closure.
pub fn time_it(f: impl FnOnce()) -> Duration {
    let t0 = Stopwatch::start();
    f();
    t0.elapsed()
}

/// Mean and standard deviation of durations, in milliseconds.
pub fn mean_std_ms(samples: &[Duration]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    let mean = ms.iter().sum::<f64>() / ms.len() as f64;
    let var = ms.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / ms.len() as f64;
    (mean, var.sqrt())
}

/// Render a plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format bytes human-readably.
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.1} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} KB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

/// Format a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us >= 1_000_000 {
        format!("{:.2} s", d.as_secs_f64())
    } else if us >= 1_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_and_serves() {
        let w = World::build(&WorldConfig::default());
        let ctx = w.admin();
        w.uc.create_catalog(&ctx, &w.ms, "main").unwrap();
        assert_eq!(w.uc.list_catalogs(&ctx, &w.ms).unwrap().len(), 1);
    }

    #[test]
    fn closed_loop_measures_throughput() {
        let counter = AtomicU64::new(0);
        let summary = closed_loop(4, Duration::from_millis(100), || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(summary.requests, counter.load(Ordering::Relaxed));
        assert!(summary.throughput_rps > 1000.0);
        assert!(summary.p99 >= summary.p50);
    }

    #[test]
    fn observed_world_populates_every_layer_metric() {
        let obs = Obs::enabled();
        let w = World::build(&WorldConfig { obs: obs.clone(), ..Default::default() });
        let ctx = w.admin();
        w.uc.create_catalog(&ctx, &w.ms, "main").unwrap();
        let root = w.store.create_bucket("aux");
        w.store
            .put(
                &root.clone().into(),
                &uc_cloudstore::StoragePath::parse("s3://aux/obj").unwrap(),
                bytes::Bytes::from_static(b"x"),
            )
            .unwrap();
        let parsed = parse_snapshot(&obs.metrics_snapshot());
        for name in ["catalog.create_catalog.count", "txdb.commit.count", "store.put.count"] {
            match parsed.get(name) {
                Some(SnapshotValue::Counter(n)) => assert!(*n > 0, "{name} is zero"),
                other => panic!("{name} missing or wrong kind: {other:?}"),
            }
        }
    }

    #[test]
    fn parse_snapshot_round_trips_the_text_format() {
        let r = uc_obs::Registry::new();
        r.counter("a.op.count").add(7);
        r.gauge("b.op.depth").set(-3);
        let h = r.histogram("c.op.latency_ms");
        for v in [1u64, 2, 100] {
            h.record(v);
        }
        let parsed = parse_snapshot(&r.text_snapshot());
        assert_eq!(parsed["a.op.count"], SnapshotValue::Counter(7));
        assert_eq!(parsed["b.op.depth"], SnapshotValue::Gauge(-3));
        match &parsed["c.op.latency_ms"] {
            SnapshotValue::Histogram { count, sum, max, .. } => {
                assert_eq!((*count, *sum, *max), (3, 103, 100));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn parse_snapshot_reads_labeled_and_window_lines() {
        let obs = Obs::disabled();
        let fam = obs.counter_family("catalog.get_table.count.by_tenant");
        fam.inc("t=acme,p=root");
        fam.add("t=zeta,p=root", 4);
        obs.counter("catalog.get_table.count").add(5);
        obs.window("catalog.get_table.window").record(0, 3);
        let parsed = parse_snapshot(&obs.metrics_snapshot());
        assert_eq!(
            parsed["catalog.get_table.count.by_tenant{t=acme,p=root}"],
            SnapshotValue::Counter(1)
        );
        assert_eq!(
            labeled_counter_sum(&parsed, "catalog.get_table.count.by_tenant"),
            5,
            "per-tenant values must sum to the global counter"
        );
        match &parsed["catalog.get_table.window"] {
            SnapshotValue::Window { bucket_ms, window_ms, count, .. } => {
                assert_eq!((*bucket_ms, *window_ms, *count), (uc_obs::WINDOW_BUCKET_MS, uc_obs::WINDOW_MS, 1));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2_500_000.0), "2.5 MB");
        assert!(fmt_dur(Duration::from_micros(250)).contains("µs"));
        assert!(fmt_dur(Duration::from_millis(5)).contains("ms"));
        let (m, s) = mean_std_ms(&[Duration::from_millis(10), Duration::from_millis(10)]);
        assert!((m - 10.0).abs() < 1e-9);
        assert!(s.abs() < 1e-9);
    }
}
