//! Figure 10(b) at 100× load: the serving plane's coalescing knee.
//!
//! The paper's Fig 10(b) shows the uncached catalog hitting a throughput
//! wall below 10 K rps — the database pool is the bottleneck, and every
//! `getTable` pays it. `fig10b_cache` regenerates that figure; this
//! bench regenerates it *two orders of magnitude past the wall*, where
//! even a cache-miss storm (cache disabled, every read hits the pool)
//! must stay live. The serving plane's answer is single-flight
//! coalescing: concurrent misses for the same key share one database
//! execution, so throughput scales with *distinct* hot keys, not with
//! client count.
//!
//! Two arms share the same world shape (db pool=8 @1 ms/read, 200 µs api
//! hop, cache off): `coalesced` serves through a [`ServePlane`] with
//! coalescing + batching on; `uncoalesced` serves through the same plane
//! with both off (admission only). The closed-loop sweep pushes client
//! counts far past the pool knee over a 16-key hot set; the gate asserts
//! the coalesced arm beats the uncoalesced arm ≥ 4× at the knee.
//!
//! A second, open-loop section drives the deterministic replay path with
//! a Fig 5 Poisson schedule at 100× the paper's wall (1 M offered rps in
//! virtual time, millions of distinct clients) through a manual-clock
//! world: admission sheds deterministically, coalesce/batch splits are
//! seed-pure, and `UC_SERVE_REPLAY=1` prints *only* that canonical
//! artifact so CI can byte-diff two runs.
//!
//! Env: `UC_BENCH_QUICK` (short CI mode + gates), `UC_BENCH_LABEL`,
//! `UC_BENCH_OUT` (default `BENCH_serve.json`, quick mode
//! `BENCH_serve_quick.json`), `UC_SERVE_REPLAY` (replay artifact only).

use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use uc_bench::{closed_loop_indexed, labeled_counter_sum, parse_snapshot, print_table, SnapshotValue, World, WorldConfig};
use uc_catalog::service::crud::TableSpec;
use uc_catalog::service::{Context, UcConfig, UnityCatalog};
use uc_cloudstore::{Clock, FaultPlan, LatencyModel, ObjectStore, StsService};
use uc_delta::value::{DataType, Field, Schema};
use uc_obs::Obs;
use uc_serve::replay::{run as replay_run, ReplayBinding, ReplayReport};
use uc_serve::{ServeConfig, ServePlane};
use uc_txdb::{Db, DbConfig};
use uc_workload::openloop::{OpenLoopParams, Schedule};

/// Hot-key working set: small enough that clients pile up on the same
/// keys (Zipf reality), large enough to keep the pool busy.
const KEYS: usize = 16;

#[derive(Serialize, Deserialize, Default)]
struct BenchFile {
    bench: String,
    note: String,
    runs: Vec<Run>,
}

#[derive(Serialize, Deserialize)]
struct Run {
    label: String,
    quick: bool,
    threads: Vec<u64>,
    coalesced_rps: Vec<f64>,
    coalesced_p99_us: Vec<f64>,
    uncoalesced_rps: Vec<f64>,
    uncoalesced_p99_us: Vec<f64>,
    /// coalesced rps ÷ uncoalesced rps at the largest client count.
    knee_ratio: f64,
    /// Followers per leader over the coalesced sweep — the dedup factor.
    followers_per_leader: f64,
    /// Open-loop replay at 100× the paper wall (virtual time).
    replay_offered: u64,
    replay_admitted: u64,
    replay_shed: u64,
    replay_leaders: u64,
    replay_followers: u64,
    replay_batches: u64,
    cores: Option<u64>,
}

/// A cache-miss-storm world: metadata cache off, so every read pays the
/// modelled database (pool=8, 1 ms/read) — the regime past Fig 10(b)'s
/// wall.
fn build_world() -> World {
    let world = World::build(&WorldConfig {
        db_pool: 8,
        db_latency: Duration::from_millis(1),
        api_latency: Duration::from_micros(200),
        cache: false,
        ..Default::default()
    });
    seed_tables(&world.uc, &world.admin(), &world.ms);
    world
}

fn seed_tables(uc: &UnityCatalog, ctx: &Context, ms: &uc_catalog::Uid) {
    uc.create_catalog(ctx, ms, "main").unwrap();
    uc.create_schema(ctx, ms, "main", "s").unwrap();
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    for i in 0..KEYS {
        uc.create_table(
            ctx,
            ms,
            TableSpec::managed(&format!("main.s.t{i}"), schema.clone()).unwrap(),
        )
        .unwrap();
    }
}

fn table_names() -> Vec<String> {
    (0..KEYS).map(|i| format!("main.s.t{i}")).collect()
}

fn build_plane(world: &World, coalesce: bool) -> ServePlane {
    let plane = ServePlane::new(
        world.uc.clone(),
        ServeConfig {
            // The sweep measures coalescing, not shedding: budget above
            // the largest client count so admission never rejects.
            queue_capacity: 8192,
            coalesce,
            batch: coalesce,
            ..Default::default()
        },
    );
    plane.register_tenant(&world.ms, "bench");
    plane
}

fn sweep(plane: &ServePlane, world: &World, names: &[String], threads: usize, duration: Duration) -> uc_bench::LoadSummary {
    let ctx = world.admin();
    let ms = world.ms.clone();
    closed_loop_indexed(threads, duration, |worker, iter| {
        // Worker-local stride over the hot set: no shared state inside
        // the measured region.
        let i = (worker * 31 + iter as usize * 7) % KEYS;
        plane.get_table(&ctx, &ms, &names[i]).unwrap();
    })
}

/// Deterministic open-loop replay: manual clock, zero modelled latency
/// (virtual time only), Fig 5 arrivals at 100× the paper's 10 K wall.
fn replay_world() -> (Arc<UnityCatalog>, uc_catalog::Uid) {
    let clock = Clock::manual(0);
    let obs_clock = clock.clone();
    let obs = Obs::with_clock_fn(Arc::new(move || obs_clock.now_ms()));
    let sts = StsService::new(clock).with_obs(obs.clone());
    let store = ObjectStore::new(sts, LatencyModel::zero()).with_obs(obs.clone());
    let db = Db::new(DbConfig { obs: obs.clone(), ..Default::default() });
    let uc = UnityCatalog::new(
        db,
        store.clone(),
        UcConfig {
            cache: uc_catalog::cache::CacheConfig::disabled(),
            faults: FaultPlan::disabled(),
            obs,
            ..Default::default()
        },
        "node-0",
    );
    let ms = uc.create_metastore("admin", "bench", "us-west-2").unwrap();
    let ctx = Context::user("admin");
    let root = store.create_bucket("lake");
    uc.create_storage_credential(&ctx, &ms, "lake_cred", &root).unwrap();
    uc.set_metastore_root(&ctx, &ms, "s3://lake/managed").unwrap();
    seed_tables(&uc, &ctx, &ms);
    (uc, ms)
}

fn replay_100x(quick: bool) -> (ReplayReport, String) {
    let (uc, ms) = replay_world();
    let plane = ServePlane::new(
        uc.clone(),
        ServeConfig {
            // Small per-tenant budget so the 100× storm actually sheds.
            queue_capacity: 64,
            ..Default::default()
        },
    );
    plane.register_tenant(&ms, "bench");
    let mut params = OpenLoopParams::fig5(0xF16B, 1_000_000.0);
    params.horizon_ms = if quick { 20 } else { 100 };
    let schedule = Schedule::generate(&params);
    let names = table_names();
    let binding = ReplayBinding {
        ms: ms.clone(),
        contexts: (0..params.tenants)
            .map(|t| Context::user(&format!("tenant{t}")))
            .collect(),
        tables: (0..params.tenants).map(|_| names.clone()).collect(),
        want_credentials: false,
    };
    // Tenant principals need the read path; grant via admin.
    let admin = Context::user("admin");
    for t in 0..params.tenants {
        let grantee = format!("tenant{t}");
        for name in &names {
            uc.grant_read_path(&admin, &ms, name, &grantee).unwrap();
        }
    }
    let report = replay_run(&plane, &schedule, &binding);

    // The byte-diffed artifact: replay counters plus every serve.*
    // counter line of the snapshot (counters only — they are exact).
    let mut artifact = String::new();
    artifact.push_str(&report.canonical_text());
    let snapshot = uc.metrics_snapshot();
    let mut lines: Vec<&str> = snapshot
        .lines()
        .filter(|l| l.starts_with("serve.") && l.contains(" counter "))
        .collect();
    lines.sort_unstable();
    for line in lines {
        artifact.push_str(line);
        artifact.push('\n');
    }
    (report, artifact)
}

fn main() {
    let quick = std::env::var("UC_BENCH_QUICK").is_ok();
    let replay_only = std::env::var("UC_SERVE_REPLAY").is_ok();
    if replay_only {
        // CI determinism gate: print nothing but the canonical artifact.
        let (_, artifact) = replay_100x(true);
        print!("{artifact}");
        return;
    }
    let label = std::env::var("UC_BENCH_LABEL").unwrap_or_else(|_| "run".to_string());
    let default_out = if quick { "BENCH_serve_quick.json" } else { "BENCH_serve.json" };
    let out_path = std::env::var("UC_BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    let thread_counts: &[usize] = if quick { &[8, 128] } else { &[1, 4, 16, 64, 128, 256] };
    let duration = if quick { Duration::from_millis(250) } else { Duration::from_millis(400) };

    println!("building coalesced and uncoalesced serve worlds ({KEYS} hot tables, cache off)…");
    let world_c = build_world();
    let world_u = build_world();
    let plane_c = build_plane(&world_c, true);
    let plane_u = build_plane(&world_u, false);
    let names = table_names();

    let mut run = Run {
        label: label.clone(),
        quick,
        threads: Vec::new(),
        coalesced_rps: Vec::new(),
        coalesced_p99_us: Vec::new(),
        uncoalesced_rps: Vec::new(),
        uncoalesced_p99_us: Vec::new(),
        knee_ratio: 0.0,
        followers_per_leader: 0.0,
        replay_offered: 0,
        replay_admitted: 0,
        replay_shed: 0,
        replay_leaders: 0,
        replay_followers: 0,
        replay_batches: 0,
        cores: std::thread::available_parallelism().ok().map(|n| n.get() as u64),
    };
    let mut rows = Vec::new();
    let mut ratio_at_knee = 0.0f64;
    for &threads in thread_counts {
        let with = sweep(&plane_c, &world_c, &names, threads, duration);
        let without = sweep(&plane_u, &world_u, &names, threads, duration);
        let ratio = with.throughput_rps / without.throughput_rps.max(1e-9);
        ratio_at_knee = ratio;
        run.threads.push(threads as u64);
        run.coalesced_rps.push(with.throughput_rps);
        run.coalesced_p99_us.push(with.p99.as_secs_f64() * 1e6);
        run.uncoalesced_rps.push(without.throughput_rps);
        run.uncoalesced_p99_us.push(without.p99.as_secs_f64() * 1e6);
        rows.push(vec![
            threads.to_string(),
            format!("{:.0}", with.throughput_rps),
            format!("{:.1}", with.p99.as_secs_f64() * 1e3),
            format!("{:.0}", without.throughput_rps),
            format!("{:.1}", without.p99.as_secs_f64() * 1e3),
            format!("{ratio:.1}×"),
        ]);
    }
    run.knee_ratio = ratio_at_knee;

    // Conservation + exactly-once accounting over the coalesced sweep:
    // leaders+followers is every served request, per-tenant label cells
    // sum exactly to the globals, and every leader is one catalog call.
    {
        let parsed = parse_snapshot(&world_c.uc.metrics_snapshot());
        let counter = |name: &str| match parsed.get(name) {
            Some(SnapshotValue::Counter(n)) => *n,
            other => panic!("{name} missing from snapshot: {other:?}"),
        };
        let leaders = counter("serve.coalesce.leaders");
        let followers = counter("serve.coalesce.followers");
        let admitted = counter("serve.admitted");
        assert!(leaders > 0, "coalesced sweep must elect leaders");
        assert_eq!(
            leaders + followers,
            admitted,
            "every admitted request is served exactly once (leader xor follower)"
        );
        assert_eq!(
            labeled_counter_sum(&parsed, "serve.admitted.by_tenant"),
            admitted,
            "per-tenant admitted cells must sum to the global counter"
        );
        assert_eq!(
            labeled_counter_sum(&parsed, "serve.coalesce.followers.by_tenant"),
            followers,
            "per-tenant follower cells must sum to the global counter"
        );
        run.followers_per_leader = followers as f64 / leaders.max(1) as f64;
    }

    print_table(
        &format!("Fig 10(b) ×100 — serve-plane getTable, cache-miss storm, label={label}"),
        &["clients", "coalesced rps", "p99 ms", "uncoalesced rps", "p99 ms", "ratio"],
        &rows,
    );
    println!(
        "knee ratio (largest client count): {ratio_at_knee:.1}× — followers per leader {:.1}",
        run.followers_per_leader
    );
    assert!(
        ratio_at_knee >= 4.0,
        "coalescing gate: coalesced rps must be ≥ 4× uncoalesced at the knee \
         (got {ratio_at_knee:.1}×)"
    );

    println!("\nopen-loop replay at 100× the paper wall (1 M offered rps, virtual time)…");
    let (report, _) = replay_100x(quick);
    println!("{}", report.canonical_text());
    assert!(report.shed > 0, "100× storm must exercise admission shedding");
    assert!(report.followers > 0, "100× storm must coalesce concurrent same-key reads");
    run.replay_offered = report.offered;
    run.replay_admitted = report.admitted;
    run.replay_shed = report.shed;
    run.replay_leaders = report.leaders;
    run.replay_followers = report.followers;
    run.replay_batches = report.batches;

    let mut file: BenchFile = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    file.bench = "fig10b_serve".to_string();
    file.note = format!(
        "serve-plane getTable under a cache-miss storm ({KEYS} hot tables, cache off, db \
         pool=8 @1ms/read, 200µs hop). coalesced = single-flight + batched plane; uncoalesced \
         = same plane, dedup off. knee_ratio gates ≥4×. replay_* = deterministic open-loop \
         Fig 5 schedule at 1M offered rps (virtual time) with per-tenant admission (64)."
    );
    file.runs.retain(|r| r.label != label);
    file.runs.push(run);
    let json = serde_json::to_string_pretty(&file).expect("bench file serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench file");
    println!("wrote {out_path}");
}
