//! Read and write transactions.
//!
//! `ReadTxn` gives snapshot isolation for free: it pins a CSN and resolves
//! every lookup against version chains at that CSN.
//!
//! `WriteTxn` is serializable via optimistic concurrency control. It tracks
//! the full read set — point reads *and* scanned prefixes — and validates at
//! commit that nothing observed has a newer committed version than the
//! transaction's snapshot. Scanned-prefix validation also catches phantoms:
//! a row inserted into a scanned range after the snapshot fails validation
//! because its version chain's latest CSN exceeds the snapshot.

use std::collections::{BTreeMap, HashSet};

use bytes::Bytes;
use uc_cloudstore::faults::points;
use uc_cloudstore::latency::OpClass;

use crate::changelog::{ChangeKind, ChangeRecord};
use crate::db::Db;
use crate::error::{TxError, TxResult};

/// Snapshot-isolated read-only transaction.
pub struct ReadTxn {
    db: Db,
    snapshot: u64,
}

impl ReadTxn {
    pub(crate) fn new(db: Db, snapshot: u64) -> Self {
        ReadTxn { db, snapshot }
    }

    /// CSN this transaction observes.
    pub fn snapshot_csn(&self) -> u64 {
        self.snapshot
    }

    /// Point lookup at the snapshot.
    pub fn get(&self, table: &str, key: &str) -> Option<Bytes> {
        self.db.charge(OpClass::Read);
        self.db.stats().record_read();
        let guard = self.db.inner.tables.read();
        guard
            .get(table)?
            .get(key)?
            .visible_at(self.snapshot)
            .and_then(|v| v.value.clone())
    }

    /// All live rows whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, table: &str, prefix: &str) -> Vec<(String, Bytes)> {
        self.db.charge(OpClass::List);
        self.db.stats().record_scan();
        let guard = self.db.inner.tables.read();
        let Some(t) = guard.get(table) else {
            return Vec::new();
        };
        t.range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter_map(|(k, chain)| {
                chain
                    .visible_at(self.snapshot)
                    .and_then(|v| v.value.clone())
                    .map(|val| (k.clone(), val))
            })
            .collect()
    }

    /// All live rows at the chain prefixes of `key` — every prefix ending
    /// at a [`CHAIN_SEP`] byte, shortest first. For tree-encoded keys
    /// (every segment terminator is a `CHAIN_SEP`) this fetches the whole
    /// ancestor chain of a node in one table traversal under one lock
    /// acquisition, charged as a single scan.
    pub fn scan_chain(&self, table: &str, key: &str) -> Vec<(String, Bytes)> {
        self.db.charge(OpClass::List);
        self.db.stats().record_scan();
        let guard = self.db.inner.tables.read();
        let Some(t) = guard.get(table) else {
            return Vec::new();
        };
        chain_prefixes(key)
            .filter_map(|p| {
                t.get(p)
                    .and_then(|chain| chain.visible_at(self.snapshot))
                    .and_then(|v| v.value.clone())
                    .map(|val| (p.to_string(), val))
            })
            .collect()
    }

    /// Greatest live key in `[start, end)` with its value — an index seek
    /// to the predecessor of `end`, charged as a single read. Range scans
    /// plus this primitive are what the tree keyspace's ancestor checks
    /// (path overlap, nearest-covering-path resolution) run on.
    pub fn pred_in_range(&self, table: &str, start: &str, end: &str) -> Option<(String, Bytes)> {
        self.db.charge(OpClass::Read);
        self.db.stats().record_read();
        let guard = self.db.inner.tables.read();
        let t = guard.get(table)?;
        for (k, chain) in t.range(start.to_string()..end.to_string()).rev() {
            if let Some(v) = chain.visible_at(self.snapshot).and_then(|v| v.value.clone()) {
                return Some((k.clone(), v));
            }
        }
        None
    }
}

/// Chain-prefix separator byte recognized by [`ReadTxn::scan_chain`] /
/// [`WriteTxn::scan_chain`]: the tree-key segment terminator.
pub const CHAIN_SEP: char = '\u{1}';

/// Every prefix of `key` ending at a [`CHAIN_SEP`] byte, shortest first.
fn chain_prefixes(key: &str) -> impl Iterator<Item = &str> {
    key.bytes()
        .enumerate()
        .filter(|(_, b)| *b == CHAIN_SEP as u8)
        .map(move |(i, _)| &key[..=i])
}

/// Serializable read-write transaction.
pub struct WriteTxn {
    db: Db,
    snapshot: u64,
    finished: bool,
    /// Point reads performed (table, key).
    reads: HashSet<(String, String)>,
    /// Prefix scans performed (table, prefix).
    scans: Vec<(String, String)>,
    /// Predecessor seeks performed: (table, effective lower bound, end).
    /// The lower bound is the found key when the seek hit (changes below
    /// it cannot alter the result) or the seek's `start` when it missed.
    preds: Vec<(String, String, String)>,
    /// Buffered writes; `None` = delete.
    writes: BTreeMap<(String, String), Option<Bytes>>,
}

impl WriteTxn {
    pub(crate) fn new(db: Db, snapshot: u64) -> Self {
        WriteTxn {
            db,
            snapshot,
            finished: false,
            reads: HashSet::new(),
            scans: Vec::new(),
            preds: Vec::new(),
            writes: BTreeMap::new(),
        }
    }

    /// CSN this transaction reads at.
    pub fn snapshot_csn(&self) -> u64 {
        self.snapshot
    }

    /// Point lookup: sees the transaction's own buffered writes first, then
    /// the snapshot. The read is recorded for commit-time validation.
    pub fn get(&mut self, table: &str, key: &str) -> Option<Bytes> {
        let wkey = (table.to_string(), key.to_string());
        if let Some(buffered) = self.writes.get(&wkey) {
            return buffered.clone();
        }
        self.reads.insert(wkey);
        self.db.charge(OpClass::Read);
        self.db.stats().record_read();
        let guard = self.db.inner.tables.read();
        guard
            .get(table)?
            .get(key)?
            .visible_at(self.snapshot)
            .and_then(|v| v.value.clone())
    }

    /// Prefix scan merging buffered writes over the snapshot. The prefix is
    /// recorded for phantom-safe validation.
    pub fn scan_prefix(&mut self, table: &str, prefix: &str) -> Vec<(String, Bytes)> {
        self.scans.push((table.to_string(), prefix.to_string()));
        self.db.charge(OpClass::List);
        self.db.stats().record_scan();
        let guard = self.db.inner.tables.read();
        let mut merged: BTreeMap<String, Option<Bytes>> = BTreeMap::new();
        if let Some(t) = guard.get(table) {
            for (k, chain) in t.range(prefix.to_string()..).take_while(|(k, _)| k.starts_with(prefix)) {
                if let Some(v) = chain.visible_at(self.snapshot).and_then(|v| v.value.clone()) {
                    merged.insert(k.clone(), Some(v));
                }
            }
        }
        drop(guard);
        for ((t, k), v) in &self.writes {
            if t == table && k.starts_with(prefix) {
                merged.insert(k.clone(), v.clone());
            }
        }
        merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|val| (k, val)))
            .collect()
    }

    /// All live rows at the chain prefixes of `key` (see
    /// [`ReadTxn::scan_chain`]), merging buffered writes. Every prefix —
    /// present *and* absent — lands in the validated read set, so a
    /// concurrent create or drop anywhere on the ancestor chain conflicts
    /// at commit. Charged as a single scan.
    pub fn scan_chain(&mut self, table: &str, key: &str) -> Vec<(String, Bytes)> {
        self.db.charge(OpClass::List);
        self.db.stats().record_scan();
        let mut out = Vec::new();
        let guard = self.db.inner.tables.read();
        let t = guard.get(table);
        for p in chain_prefixes(key) {
            let wkey = (table.to_string(), p.to_string());
            if let Some(buffered) = self.writes.get(&wkey) {
                if let Some(v) = buffered {
                    out.push((p.to_string(), v.clone()));
                }
                continue;
            }
            self.reads.insert(wkey);
            if let Some(v) = t
                .and_then(|t| t.get(p))
                .and_then(|chain| chain.visible_at(self.snapshot))
                .and_then(|v| v.value.clone())
            {
                out.push((p.to_string(), v));
            }
        }
        out
    }

    /// Greatest live key in `[start, end)` (see [`ReadTxn::pred_in_range`])
    /// merging buffered writes. The seek is recorded for commit-time
    /// validation: any committed change in `[found-or-start, end)` after
    /// the snapshot — which is exactly the set of changes that could move
    /// the result — conflicts.
    pub fn pred_in_range(&mut self, table: &str, start: &str, end: &str) -> Option<(String, Bytes)> {
        self.db.charge(OpClass::Read);
        self.db.stats().record_read();
        let mut best: Option<(String, Bytes)> = None;
        {
            let guard = self.db.inner.tables.read();
            if let Some(t) = guard.get(table) {
                for (k, chain) in t.range(start.to_string()..end.to_string()).rev() {
                    match self.writes.get(&(table.to_string(), k.clone())) {
                        Some(None) => continue, // buffered delete masks the row
                        Some(Some(v)) => {
                            best = Some((k.clone(), v.clone()));
                            break;
                        }
                        None => {
                            if let Some(v) =
                                chain.visible_at(self.snapshot).and_then(|v| v.value.clone())
                            {
                                best = Some((k.clone(), v));
                                break;
                            }
                        }
                    }
                }
            }
        }
        // A buffered insert at a key the database has never seen can beat
        // the database's best.
        let lo = (table.to_string(), start.to_string());
        let hi = (table.to_string(), end.to_string());
        for ((_, k), v) in self.writes.range(lo..hi).rev() {
            if let Some(v) = v {
                if best.as_ref().map(|(bk, _)| k > bk).unwrap_or(true) {
                    best = Some((k.clone(), v.clone()));
                }
                break;
            }
        }
        let effective_lo = best.as_ref().map(|(k, _)| k.clone()).unwrap_or_else(|| start.to_string());
        self.preds.push((table.to_string(), effective_lo, end.to_string()));
        best
    }

    /// Buffer an upsert.
    pub fn put(&mut self, table: &str, key: &str, value: Bytes) {
        self.writes
            .insert((table.to_string(), key.to_string()), Some(value));
    }

    /// Buffer a delete.
    pub fn delete(&mut self, table: &str, key: &str) {
        self.writes.insert((table.to_string(), key.to_string()), None);
    }

    /// True if the transaction has buffered any writes.
    pub fn is_dirty(&self) -> bool {
        !self.writes.is_empty()
    }

    /// Validate and commit; returns the new CSN. On [`TxError::Conflict`]
    /// the transaction is consumed — callers retry from `begin_write`.
    pub fn commit(self) -> TxResult<u64> {
        let obs = self.db.inner.obs.clone();
        let start_ms = obs.clock_ms();
        let mut span = obs.span("txdb", "commit");
        let result = self.commit_inner();
        match &result {
            Err(TxError::Conflict { .. }) => span.set_status("conflict"),
            Err(_) => span.set_status("error"),
            Ok(_) => {}
        }
        // Attribute the commit to the request's tenant when a catalog API
        // guard has one on the thread-local scope stack; bare commits
        // (tests, tooling) skip the labeled series entirely.
        if let Some(label) = uc_obs::current_tenant() {
            obs.counter_family("txdb.commit.count.by_tenant").inc(&label);
            let now = obs.clock_ms();
            obs.window("txdb.commit.window")
                .record(now, now.saturating_sub(start_ms));
        }
        result
    }

    fn commit_inner(mut self) -> TxResult<u64> {
        if self.finished {
            return Err(TxError::AlreadyFinished);
        }
        self.finished = true;
        if self.writes.is_empty() {
            // Read-only write-txn: snapshot reads are already consistent.
            return Ok(self.snapshot);
        }
        self.db.charge(OpClass::Write);

        let inner = &self.db.inner;

        // Fault injection at the commit boundary: the three transient
        // failure shapes the paper's DB write protocol must survive. All
        // consume the transaction, like their organic counterparts.
        if inner.faults.should_inject(points::TXDB_POOL_TIMEOUT) {
            return Err(TxError::Unavailable {
                detail: "injected fault: connection pool permit wait timed out".into(),
            });
        }
        if inner.faults.should_inject(points::TXDB_COMMIT_UNAVAILABLE) {
            return Err(TxError::Unavailable {
                detail: "injected fault: database unreachable at commit".into(),
            });
        }
        if inner.faults.should_inject(points::TXDB_COMMIT_CONFLICT) {
            inner.stats.record_conflict();
            uc_obs::span_event("txdb.conflict", &format!("injected snapshot={}", self.snapshot));
            return Err(TxError::Conflict {
                detail: format!("injected conflict at snapshot {}", self.snapshot),
            });
        }

        // Interleaving-exploration yield: placed before the commit lock so
        // a parked client never holds it. A no-op outside scheduled runs.
        uc_cloudstore::sched::yield_point(uc_cloudstore::sched::points::TXDB_COMMIT);

        let _commit_guard = inner.commit_lock.lock();

        // --- Validation phase (under commit lock; no commits can interleave).
        // The weaken switch exists only to prove the history checker spots
        // the anomalies validation prevents; see Db::set_unsafe_skip_commit_validation.
        if !inner.weaken_validation.load(std::sync::atomic::Ordering::Relaxed) {
            let tables = inner.tables.read();
            let conflicting_key = |table: &str, key: &str| -> bool {
                tables
                    .get(table)
                    .and_then(|t| t.get(key))
                    .is_some_and(|chain| chain.latest_csn() > self.snapshot)
            };
            for (table, key) in self.reads.iter().chain(self.writes.keys()) {
                if conflicting_key(table, key) {
                    inner.stats.record_conflict();
                    // Event detail names the table but not the key: keys can
                    // embed random entity Uids, which would break trace-dump
                    // byte-determinism across runs.
                    uc_obs::span_event(
                        "txdb.conflict",
                        &format!("{table} snapshot={}", self.snapshot),
                    );
                    return Err(TxError::Conflict {
                        detail: format!("{table}/{key} changed after snapshot {}", self.snapshot),
                    });
                }
            }
            for (table, prefix) in &self.scans {
                if let Some(t) = tables.get(table) {
                    let phantom = t
                        .range(prefix.clone()..)
                        .take_while(|(k, _)| k.starts_with(prefix.as_str()))
                        .any(|(_, chain)| chain.latest_csn() > self.snapshot);
                    if phantom {
                        inner.stats.record_conflict();
                        uc_obs::span_event(
                            "txdb.conflict",
                            &format!("{table} scan snapshot={}", self.snapshot),
                        );
                        return Err(TxError::Conflict {
                            detail: format!(
                                "scan {table}/{prefix}* observed a change after snapshot {}",
                                self.snapshot
                            ),
                        });
                    }
                }
            }
            // Predecessor seeks: a commit into [found-or-start, end) after
            // the snapshot could have produced a different predecessor
            // (a new key above the found one, or a change/removal of the
            // found key itself), so it invalidates the seek.
            for (table, lo, end) in &self.preds {
                if let Some(t) = tables.get(table) {
                    let moved = t
                        .range(lo.clone()..end.clone())
                        .any(|(_, chain)| chain.latest_csn() > self.snapshot);
                    if moved {
                        inner.stats.record_conflict();
                        uc_obs::span_event(
                            "txdb.conflict",
                            &format!("{table} pred snapshot={}", self.snapshot),
                        );
                        return Err(TxError::Conflict {
                            detail: format!(
                                "pred seek {table} range observed a change after snapshot {}",
                                self.snapshot
                            ),
                        });
                    }
                }
            }
        }

        // --- Apply phase.
        let new_csn = inner.csn.load(std::sync::atomic::Ordering::Acquire) + 1;
        let mut records = Vec::with_capacity(self.writes.len());
        {
            let mut tables = inner.tables.write();
            for ((table, key), value) in std::mem::take(&mut self.writes) {
                let chain = tables
                    .entry(table.clone())
                    .or_default()
                    .entry(key.clone())
                    .or_default();
                chain.versions.push(crate::db::Version { csn: new_csn, value: value.clone() });
                records.push(ChangeRecord {
                    csn: new_csn,
                    table,
                    key,
                    kind: if value.is_some() { ChangeKind::Put } else { ChangeKind::Delete },
                    value,
                });
            }
        }
        inner.stats.record_write(records.len() as u64);
        inner.changelog.append(records);
        inner
            .csn
            .store(new_csn, std::sync::atomic::Ordering::Release);
        inner.stats.record_commit();
        Ok(new_csn)
    }

    /// Discard buffered writes.
    pub fn rollback(mut self) {
        self.finished = true;
        self.writes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Db;

    fn put1(db: &Db, table: &str, key: &str, val: &str) -> u64 {
        let mut tx = db.begin_write();
        tx.put(table, key, Bytes::from(val.to_string()));
        tx.commit().unwrap()
    }

    #[test]
    fn write_then_read_back() {
        let db = Db::in_memory();
        put1(&db, "t", "a", "1");
        let rt = db.begin_read();
        assert_eq!(rt.get("t", "a"), Some(Bytes::from_static(b"1")));
        assert_eq!(rt.get("t", "missing"), None);
    }

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let db = Db::in_memory();
        put1(&db, "t", "a", "old");
        let rt = db.begin_read();
        put1(&db, "t", "a", "new");
        put1(&db, "t", "b", "born-later");
        assert_eq!(rt.get("t", "a"), Some(Bytes::from_static(b"old")));
        assert_eq!(rt.get("t", "b"), None);
        // a fresh snapshot sees the new state
        let rt2 = db.begin_read();
        assert_eq!(rt2.get("t", "a"), Some(Bytes::from_static(b"new")));
    }

    #[test]
    fn txn_reads_own_writes() {
        let db = Db::in_memory();
        let mut tx = db.begin_write();
        tx.put("t", "a", Bytes::from_static(b"mine"));
        assert_eq!(tx.get("t", "a"), Some(Bytes::from_static(b"mine")));
        tx.delete("t", "a");
        assert_eq!(tx.get("t", "a"), None);
    }

    #[test]
    fn uncommitted_writes_are_invisible() {
        let db = Db::in_memory();
        let mut tx = db.begin_write();
        tx.put("t", "a", Bytes::from_static(b"x"));
        assert_eq!(db.begin_read().get("t", "a"), None);
        tx.rollback();
        assert_eq!(db.begin_read().get("t", "a"), None);
    }

    #[test]
    fn write_write_conflict_detected() {
        let db = Db::in_memory();
        put1(&db, "t", "a", "base");
        let mut tx1 = db.begin_write();
        let mut tx2 = db.begin_write();
        tx1.put("t", "a", Bytes::from_static(b"one"));
        tx2.put("t", "a", Bytes::from_static(b"two"));
        tx1.commit().unwrap();
        assert!(matches!(tx2.commit(), Err(TxError::Conflict { .. })));
        assert_eq!(db.stats().conflicts(), 1);
    }

    #[test]
    fn read_write_conflict_detected() {
        // tx2 reads a row tx1 writes: serializability requires tx2 to abort
        // if it commits after tx1 (its read is stale).
        let db = Db::in_memory();
        put1(&db, "t", "a", "base");
        let mut tx1 = db.begin_write();
        let mut tx2 = db.begin_write();
        let _ = tx2.get("t", "a");
        tx2.put("t", "b", Bytes::from_static(b"derived"));
        tx1.put("t", "a", Bytes::from_static(b"changed"));
        tx1.commit().unwrap();
        assert!(matches!(tx2.commit(), Err(TxError::Conflict { .. })));
    }

    #[test]
    fn disjoint_writes_both_commit() {
        let db = Db::in_memory();
        let mut tx1 = db.begin_write();
        let mut tx2 = db.begin_write();
        tx1.put("t", "a", Bytes::from_static(b"1"));
        tx2.put("t", "b", Bytes::from_static(b"2"));
        tx1.commit().unwrap();
        tx2.commit().unwrap();
        let rt = db.begin_read();
        assert!(rt.get("t", "a").is_some() && rt.get("t", "b").is_some());
    }

    #[test]
    fn phantom_insert_into_scanned_prefix_conflicts() {
        let db = Db::in_memory();
        put1(&db, "t", "schema1/t1", "x");
        let mut scanner = db.begin_write();
        let rows = scanner.scan_prefix("t", "schema1/");
        assert_eq!(rows.len(), 1);
        scanner.put("t", "count", Bytes::from_static(b"1"));
        // concurrent insert into the scanned range
        put1(&db, "t", "schema1/t2", "y");
        assert!(matches!(scanner.commit(), Err(TxError::Conflict { .. })));
    }

    #[test]
    fn phantom_delete_from_scanned_prefix_conflicts() {
        let db = Db::in_memory();
        put1(&db, "t", "s/t1", "x");
        put1(&db, "t", "s/t2", "y");
        let mut scanner = db.begin_write();
        assert_eq!(scanner.scan_prefix("t", "s/").len(), 2);
        scanner.put("t", "other", Bytes::from_static(b"z"));
        let mut deleter = db.begin_write();
        deleter.delete("t", "s/t2");
        deleter.commit().unwrap();
        assert!(matches!(scanner.commit(), Err(TxError::Conflict { .. })));
    }

    #[test]
    fn scan_outside_written_range_does_not_conflict() {
        let db = Db::in_memory();
        put1(&db, "t", "a/1", "x");
        let mut scanner = db.begin_write();
        let _ = scanner.scan_prefix("t", "a/");
        scanner.put("t", "out", Bytes::from_static(b"v"));
        put1(&db, "t", "b/1", "y"); // outside scanned prefix
        scanner.commit().unwrap();
    }

    #[test]
    fn scan_merges_buffered_writes() {
        let db = Db::in_memory();
        put1(&db, "t", "p/committed", "c");
        put1(&db, "t", "p/doomed", "d");
        let mut tx = db.begin_write();
        tx.put("t", "p/buffered", Bytes::from_static(b"b"));
        tx.delete("t", "p/doomed");
        let rows = tx.scan_prefix("t", "p/");
        let keys: Vec<_> = rows.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["p/buffered", "p/committed"]);
    }

    #[test]
    fn read_only_write_txn_commits_without_bumping_csn() {
        let db = Db::in_memory();
        put1(&db, "t", "a", "1");
        let before = db.current_csn();
        let mut tx = db.begin_write();
        let _ = tx.get("t", "a");
        assert_eq!(tx.commit().unwrap(), before);
        assert_eq!(db.current_csn(), before);
    }

    #[test]
    fn delete_writes_tombstone_and_changelog_records_it() {
        let db = Db::in_memory();
        put1(&db, "t", "a", "1");
        let mut tx = db.begin_write();
        tx.delete("t", "a");
        let csn = tx.commit().unwrap();
        assert_eq!(db.begin_read().get("t", "a"), None);
        let changes = db.changelog().changes_since(csn - 1);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].kind, ChangeKind::Delete);
    }

    #[test]
    fn changelog_orders_multi_row_commits() {
        let db = Db::in_memory();
        let mut tx = db.begin_write();
        tx.put("t", "a", Bytes::from_static(b"1"));
        tx.put("t", "b", Bytes::from_static(b"2"));
        let csn = tx.commit().unwrap();
        let changes = db.changelog().changes_since(0);
        assert_eq!(changes.len(), 2);
        assert!(changes.iter().all(|c| c.csn == csn));
    }

    #[test]
    fn scan_chain_fetches_every_terminator_prefix() {
        let db = Db::in_memory();
        let (a, ab, abc) = ("ms\u{1}", "ms\u{1}c\u{1}", "ms\u{1}c\u{1}s\u{1}");
        put1(&db, "t", a, "A");
        put1(&db, "t", abc, "C");
        put1(&db, "t", "ms\u{1}other\u{1}", "X");
        let rt = db.begin_read();
        let rows = rt.scan_chain("t", abc);
        let keys: Vec<_> = rows.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec![a, abc], "absent middle prefix {ab} skipped, shortest first");
        // charged as exactly one scan, zero point reads
        let scans0 = db.stats().scans();
        let reads0 = db.stats().reads();
        let _ = db.begin_read().scan_chain("t", abc);
        assert_eq!(db.stats().scans() - scans0, 1);
        assert_eq!(db.stats().reads() - reads0, 0);
    }

    #[test]
    fn write_scan_chain_registers_absent_prefixes_for_validation() {
        let db = Db::in_memory();
        put1(&db, "t", "ms\u{1}c\u{1}s\u{1}", "leaf");
        let mut tx = db.begin_write();
        let rows = tx.scan_chain("t", "ms\u{1}c\u{1}s\u{1}");
        assert_eq!(rows.len(), 1);
        tx.put("t", "derived", Bytes::from_static(b"d"));
        // A concurrent create of the *absent* ancestor must invalidate the
        // chain read (phantom on the ancestor chain).
        put1(&db, "t", "ms\u{1}c\u{1}", "born");
        assert!(matches!(tx.commit(), Err(TxError::Conflict { .. })));
    }

    #[test]
    fn scan_chain_merges_buffered_writes() {
        let db = Db::in_memory();
        put1(&db, "t", "ms\u{1}", "A");
        put1(&db, "t", "ms\u{1}c\u{1}", "B");
        let mut tx = db.begin_write();
        tx.delete("t", "ms\u{1}c\u{1}");
        tx.put("t", "ms\u{1}c2\u{1}", Bytes::from_static(b"mine"));
        let rows = tx.scan_chain("t", "ms\u{1}c\u{1}s\u{1}");
        let keys: Vec<_> = rows.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["ms\u{1}"], "buffered delete masks the row");
        let rows = tx.scan_chain("t", "ms\u{1}c2\u{1}x\u{1}");
        let keys: Vec<_> = rows.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["ms\u{1}", "ms\u{1}c2\u{1}"], "buffered put visible");
    }

    #[test]
    fn pred_in_range_finds_greatest_visible_key() {
        let db = Db::in_memory();
        put1(&db, "t", "p/a", "1");
        put1(&db, "t", "p/m", "2");
        put1(&db, "t", "p/z", "3");
        let rt = db.begin_read();
        let (k, v) = rt.pred_in_range("t", "p/", "p/x").unwrap();
        assert_eq!((k.as_str(), &v[..]), ("p/m", &b"2"[..]));
        // end is exclusive
        let (k, _) = rt.pred_in_range("t", "p/", "p/m").unwrap();
        assert_eq!(k, "p/a");
        assert!(rt.pred_in_range("t", "p/", "p/a").is_none());
    }

    #[test]
    fn pred_in_range_merges_buffered_writes() {
        let db = Db::in_memory();
        put1(&db, "t", "p/m", "db");
        let mut tx = db.begin_write();
        tx.delete("t", "p/m");
        assert!(tx.pred_in_range("t", "p/", "p/x").is_none(), "buffered delete masks");
        tx.put("t", "p/q", Bytes::from_static(b"mine"));
        let (k, v) = tx.pred_in_range("t", "p/", "p/x").unwrap();
        assert_eq!((k.as_str(), &v[..]), ("p/q", &b"mine"[..]));
    }

    #[test]
    fn pred_seek_validates_against_concurrent_inserts_above_found() {
        let db = Db::in_memory();
        put1(&db, "t", "p/a", "1");
        let mut tx = db.begin_write();
        let (k, _) = tx.pred_in_range("t", "p/", "p/z").unwrap();
        assert_eq!(k, "p/a");
        tx.put("t", "derived", Bytes::from_static(b"d"));
        // A new key between the found one and `end` changes the answer.
        put1(&db, "t", "p/m", "2");
        assert!(matches!(tx.commit(), Err(TxError::Conflict { .. })));
    }

    #[test]
    fn pred_seek_ignores_concurrent_inserts_below_found() {
        let db = Db::in_memory();
        put1(&db, "t", "p/m", "1");
        let mut tx = db.begin_write();
        let (k, _) = tx.pred_in_range("t", "p/", "p/z").unwrap();
        assert_eq!(k, "p/m");
        tx.put("t", "derived", Bytes::from_static(b"d"));
        // Below the found key: cannot change the predecessor, no conflict.
        put1(&db, "t", "p/a", "2");
        tx.commit().unwrap();
    }

    #[test]
    fn pred_seek_miss_validates_whole_range() {
        let db = Db::in_memory();
        let mut tx = db.begin_write();
        assert!(tx.pred_in_range("t", "p/", "p/z").is_none());
        tx.put("t", "derived", Bytes::from_static(b"d"));
        put1(&db, "t", "p/a", "1");
        assert!(matches!(tx.commit(), Err(TxError::Conflict { .. })));
    }

    #[test]
    fn concurrent_counter_increments_are_serializable() {
        // Classic lost-update test: N threads increment a counter with
        // retry-on-conflict; the final value must be exactly N * iters.
        let db = Db::in_memory();
        put1(&db, "t", "ctr", "0");
        let threads = 8;
        let iters = 25;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..iters {
                    loop {
                        let mut tx = db.begin_write();
                        let cur: i64 = tx
                            .get("t", "ctr")
                            .map(|b| String::from_utf8(b.to_vec()).unwrap().parse().unwrap())
                            .unwrap();
                        tx.put("t", "ctr", Bytes::from((cur + 1).to_string()));
                        if tx.commit().is_ok() {
                            break;
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let final_val: i64 = db
            .get_latest("t", "ctr")
            .map(|b| String::from_utf8(b.to_vec()).unwrap().parse().unwrap())
            .unwrap();
        assert_eq!(final_val, (threads * iters) as i64);
    }
}
