//! Dimensional (labeled) metrics with *bounded* cardinality.
//!
//! The paper's control plane serves many metastores and millions of
//! principals; naive per-tenant metrics (`format!("name{{{tenant}}}")`
//! into the registry) would let one misbehaving client allocate an
//! unbounded number of instruments. This module bounds the damage by
//! construction:
//!
//! - A **family** ([`CounterFamily`] / [`HistogramFamily`]) owns a fixed
//!   table of [`LABEL_CAPACITY`] label slots. The first
//!   [`LABEL_CAPACITY`] distinct labels each get a dedicated striped
//!   cell (same cache-line-padded per-thread stripes as the global
//!   instruments — the hot path still never contends on a shared line).
//! - Labels past the capacity fold into one striped **overflow** cell,
//!   so the family's total is always exact: per-label values plus the
//!   overflow always sum to what a global counter would have seen.
//! - Overflow traffic additionally feeds a **space-saving heavy-hitter
//!   sketch** ([`SpaceSaving`]): the top-[`HEAVY_HITTER_K`] tail labels
//!   stay identifiable with a per-entry error bound, while the long tail
//!   costs O(K) memory, never O(labels).
//!
//! Hot-path cost: after a (thread, family, label) triple has been seen
//! once, recording is a thread-local hash probe (borrowed `&str` key, no
//! allocation) plus one striped atomic add — no shared lock, no alloc.
//! The first touch per thread registers through the family's index mutex;
//! tail labels (table full) pay the index probe plus the sketch mutex,
//! which is the documented graceful degradation, not the hit path.
//!
//! Snapshot rendering is canonical: slots render as `name{label} counter
//! v` sorted by label, the overflow as `name{~overflow}`, and sketch
//! estimates as `name{~hh:label} approx count=.. err=..` — a distinct
//! `approx` kind, so exact-sum consumers skip estimates.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::metrics::{Counter, Histogram};

/// Exact label slots per family. Past this, labels fold into the
/// overflow cell + sketch.
pub const LABEL_CAPACITY: usize = 64;

/// Entries tracked by the overflow heavy-hitter sketch.
pub const HEAVY_HITTER_K: usize = 8;

/// Family handles get process-unique ids so the per-thread slot cache can
/// key on (family, label) without holding any family reference.
static NEXT_FAMILY_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (family id → (label → slot)) memo. Inner probe takes a borrowed
    /// `&str`, so a cached (thread, label) pair records with zero
    /// allocations. Only *registered* labels are cached — tail labels
    /// must not grow per-thread state unboundedly.
    static SLOT_CACHE: RefCell<HashMap<u64, HashMap<String, usize>>> =
        RefCell::new(HashMap::new());
}

/// Space-saving heavy-hitter sketch (Metwally et al.): at most `k`
/// monitored labels; an unmonitored arrival evicts the current minimum
/// and inherits its count as the error bound. Guarantees any label with
/// true count > N/k is present, with `count - err ≤ true ≤ count`.
#[derive(Debug)]
struct SpaceSaving {
    k: usize,
    entries: Vec<(String, u64, u64)>, // (label, count, err)
}

impl SpaceSaving {
    fn new(k: usize) -> Self {
        SpaceSaving { k, entries: Vec::new() }
    }

    fn observe(&mut self, label: &str, n: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == label) {
            e.1 += n;
            return;
        }
        if self.entries.len() < self.k {
            self.entries.push((label.to_string(), n, 0));
            return;
        }
        // Evict the minimum-count entry; ties broken by label order so the
        // sketch state is a deterministic function of the arrival sequence.
        // (`entries` is non-empty here: len == k and a zero-k sketch
        // returned on the len < k branch above.)
        let Some((mi, _)) = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
        else {
            return;
        };
        let floor = self.entries[mi].1;
        self.entries[mi] = (label.to_string(), floor + n, floor);
    }

    /// Monitored entries, highest count first (label breaks ties).
    fn top(&self) -> Vec<(String, u64, u64)> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// The shared core of a family: fixed slots, index, overflow, sketch.
#[derive(Debug)]
struct FamilyCore<T> {
    name: String,
    cells: Vec<T>,
    index: Mutex<BTreeMap<String, usize>>,
    full: AtomicBool,
    overflow: T,
    overflow_seen: AtomicBool,
    sketch: Mutex<SpaceSaving>,
}

impl<T> FamilyCore<T> {
    fn new(name: &str, make: impl FnMut() -> T) -> Self {
        let mut make = make;
        FamilyCore {
            name: name.to_string(),
            cells: (0..LABEL_CAPACITY).map(|_| make()).collect(),
            index: Mutex::new(BTreeMap::new()),
            full: AtomicBool::new(false),
            overflow: make(),
            overflow_seen: AtomicBool::new(false),
            sketch: Mutex::new(SpaceSaving::new(HEAVY_HITTER_K)),
        }
    }

    /// Resolve a label to its slot, registering it if the table has room.
    /// `None` means the label is (now) tail traffic.
    fn slot_of(&self, family_id: u64, label: &str) -> Option<usize> {
        let cached = SLOT_CACHE.with(|c| {
            c.borrow().get(&family_id).and_then(|m| m.get(label).copied())
        });
        if let Some(slot) = cached {
            return Some(slot);
        }
        // Slow path: consult (and possibly grow) the shared index.
        let slot = {
            // uc-lint: allow(hotpath) -- taken once per (thread, family, label); every later call hits the SLOT_CACHE probe above
            let mut index = self.index.lock();
            match index.get(label) {
                Some(&s) => Some(s),
                None if index.len() < LABEL_CAPACITY => {
                    let s = index.len();
                    index.insert(label.to_string(), s);
                    if index.len() == LABEL_CAPACITY {
                        self.full.store(true, Ordering::Release);
                    }
                    Some(s)
                }
                None => None,
            }
        };
        if let Some(s) = slot {
            SLOT_CACHE.with(|c| {
                c.borrow_mut()
                    .entry(family_id)
                    .or_default()
                    .insert(label.to_string(), s);
            });
        }
        slot
    }

    fn tail(&self, label: &str, n: u64) {
        self.overflow_seen.store(true, Ordering::Relaxed);
        self.sketch.lock().observe(label, n);
    }

    /// Registered (label, slot) pairs in label order.
    fn labels(&self) -> Vec<(String, usize)> {
        self.index.lock().iter().map(|(l, s)| (l.clone(), *s)).collect()
    }
}

/// A labeled counter family: `family.add("t=acme,p=root", 1)`.
#[derive(Debug, Clone)]
pub struct CounterFamily {
    id: u64,
    core: Arc<FamilyCore<Counter>>,
}

impl CounterFamily {
    fn new(name: &str) -> Self {
        CounterFamily {
            id: NEXT_FAMILY_ID.fetch_add(1, Ordering::Relaxed),
            core: Arc::new(FamilyCore::new(name, Counter::new)),
        }
    }

    pub fn inc(&self, label: &str) {
        self.add(label, 1);
    }

    pub fn add(&self, label: &str, n: u64) {
        match self.core.slot_of(self.id, label) {
            Some(s) => self.core.cells[s].add(n),
            None => {
                self.core.overflow.add(n);
                self.core.tail(label, n);
            }
        }
    }

    /// Folded value for one label (0 if unregistered).
    pub fn get(&self, label: &str) -> u64 {
        let index = self.core.index.lock();
        index.get(label).map(|&s| self.core.cells[s].get()).unwrap_or(0)
    }

    /// Exact family total: every slot plus the overflow. Always equals
    /// what an unlabeled counter fed by the same calls would hold.
    pub fn total(&self) -> u64 {
        let per_slot: u64 = self.core.cells.iter().map(|c| c.get()).sum();
        per_slot + self.core.overflow.get()
    }

    fn render(&self, out: &mut Vec<String>) {
        let name = &self.core.name;
        for (label, slot) in self.core.labels() {
            out.push(format!("{name}{{{label}}} counter {}", self.core.cells[slot].get()));
        }
        let tail = self.core.overflow.get();
        if tail > 0 {
            out.push(format!("{name}{{~overflow}} counter {tail}"));
        }
        if self.core.overflow_seen.load(Ordering::Relaxed) {
            for (label, count, err) in self.core.sketch.lock().top() {
                out.push(format!("{name}{{~hh:{label}}} approx count={count} err={err}"));
            }
        }
    }
}

/// A labeled histogram family: `family.record("t=acme,p=root", 3)`.
#[derive(Debug, Clone)]
pub struct HistogramFamily {
    id: u64,
    core: Arc<FamilyCore<Histogram>>,
}

impl HistogramFamily {
    fn new(name: &str) -> Self {
        HistogramFamily {
            id: NEXT_FAMILY_ID.fetch_add(1, Ordering::Relaxed),
            core: Arc::new(FamilyCore::new(name, Histogram::new)),
        }
    }

    pub fn record(&self, label: &str, value: u64) {
        match self.core.slot_of(self.id, label) {
            Some(s) => self.core.cells[s].record(value),
            None => {
                self.core.overflow.record(value);
                self.core.tail(label, 1);
            }
        }
    }

    /// Folded per-label histogram handle (None if unregistered).
    pub fn get(&self, label: &str) -> Option<Histogram> {
        let index = self.core.index.lock();
        index.get(label).map(|&s| self.core.cells[s].clone())
    }

    /// Exact total sample count across slots and overflow.
    pub fn total_count(&self) -> u64 {
        let per_slot: u64 = self.core.cells.iter().map(|h| h.count()).sum();
        per_slot + self.core.overflow.count()
    }

    fn render(&self, out: &mut Vec<String>) {
        let name = &self.core.name;
        let mut line = |label: &str, h: &Histogram| {
            let (p50, p95, p99, max) = h.summary();
            out.push(format!(
                "{name}{{{label}}} histogram count={} sum={} p50={p50} p95={p95} p99={p99} max={max}",
                h.count(),
                h.sum(),
            ));
        };
        for (label, slot) in self.core.labels() {
            line(&label, &self.core.cells[slot]);
        }
        if self.core.overflow.count() > 0 {
            line("~overflow", &self.core.overflow);
        }
        if self.core.overflow_seen.load(Ordering::Relaxed) {
            for (label, count, err) in self.core.sketch.lock().top() {
                out.push(format!("{name}{{~hh:{label}}} approx count={count} err={err}"));
            }
        }
    }
}

/// Registry-side store of all families, keyed by family name.
#[derive(Debug, Default)]
pub(crate) struct Families {
    counters: Mutex<BTreeMap<String, CounterFamily>>,
    histograms: Mutex<BTreeMap<String, HistogramFamily>>,
}

impl Families {
    pub(crate) fn counter(&self, name: &str) -> CounterFamily {
        self.counters
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| CounterFamily::new(name))
            .clone()
    }

    pub(crate) fn histogram(&self, name: &str) -> HistogramFamily {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| HistogramFamily::new(name))
            .clone()
    }

    /// Push every family's lines into `out` (caller sorts globally).
    pub(crate) fn render(&self, out: &mut Vec<String>) {
        for fam in self.counters.lock().values() {
            fam.render(out);
        }
        for fam in self.histograms.lock().values() {
            fam.render(out);
        }
    }
}

/// Sanitize one label *value* for the `k=v` grammar: snapshot lines are
/// whitespace-split and labels are `{}`-delimited, so those characters
/// (plus the comma separating pairs) map to `_`.
pub fn sanitize_label_value(raw: &str) -> String {
    raw.chars()
        .map(|c| {
            if c.is_whitespace() || matches!(c, '{' | '}' | ',' | '=') {
                '_'
            } else {
                c
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Tenant scope: a thread-local stack of the label active for the current
// request, so deeper layers (txdb commit, STS mint) can attribute their
// own series to the tenant without signature changes — the same trick the
// tracer uses for span parentage.
// ---------------------------------------------------------------------------

thread_local! {
    static TENANT_STACK: RefCell<Vec<Arc<str>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard holding one tenant label on this thread's scope stack.
#[derive(Debug)]
pub struct TenantScope {
    _priv: (),
}

/// Push `label` as the current tenant scope for this thread. Cloning the
/// `Arc<str>` is the only cost — no allocation.
pub fn tenant_scope(label: Arc<str>) -> TenantScope {
    TENANT_STACK.with(|s| s.borrow_mut().push(label));
    TenantScope { _priv: () }
}

/// The innermost active tenant label on this thread, if any.
pub fn current_tenant() -> Option<Arc<str>> {
    TENANT_STACK.with(|s| s.borrow().last().cloned())
}

impl Drop for TenantScope {
    fn drop(&mut self) {
        TENANT_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_label_counts_sum_to_total() {
        let fam = CounterFamily::new("x.count.by_tenant");
        fam.add("t=a", 3);
        fam.add("t=b", 4);
        fam.inc("t=a");
        assert_eq!(fam.get("t=a"), 4);
        assert_eq!(fam.get("t=b"), 4);
        assert_eq!(fam.total(), 8);
    }

    #[test]
    fn capacity_overflow_folds_exactly_and_sketches_heavy_hitters() {
        let fam = CounterFamily::new("y.count.by_tenant");
        for i in 0..LABEL_CAPACITY {
            fam.add(&format!("t=reg{i:03}"), 1);
        }
        // Tail: one genuinely heavy label among noise.
        for i in 0..100 {
            fam.add("t=whale", 5);
            fam.add(&format!("t=minnow{i:03}"), 1);
        }
        assert_eq!(fam.get("t=whale"), 0, "tail labels get no slot");
        assert_eq!(fam.total(), LABEL_CAPACITY as u64 + 600, "overflow keeps totals exact");
        let mut out = Vec::new();
        fam.render(&mut out);
        assert!(out.iter().any(|l| l.contains("{~overflow}") && l.ends_with("600")));
        let whale = out
            .iter()
            .find(|l| l.contains("{~hh:t=whale}"))
            .expect("heavy hitter tracked");
        assert!(whale.contains("approx count=500"), "{whale}");
    }

    #[test]
    fn sketch_error_bounds_hold() {
        let mut s = SpaceSaving::new(2);
        for _ in 0..10 {
            s.observe("hot", 1);
        }
        s.observe("a", 1);
        s.observe("b", 1); // evicts "a" (count 1), err floor 1
        let top = s.top();
        assert_eq!(top[0], ("hot".to_string(), 10, 0));
        assert_eq!(top[1].0, "b");
        assert!(top[1].1 - top[1].2 <= 1, "count - err bounds the true count");
    }

    #[test]
    fn histogram_family_records_per_label() {
        let fam = HistogramFamily::new("z.latency_ms.by_tenant");
        fam.record("t=a", 5);
        fam.record("t=a", 7);
        fam.record("t=b", 100);
        let a = fam.get("t=a").unwrap();
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 12);
        assert_eq!(fam.total_count(), 3);
        let mut out = Vec::new();
        fam.render(&mut out);
        assert_eq!(out.len(), 2);
        assert!(out[0].starts_with("z.latency_ms.by_tenant{t=a} histogram count=2 sum=12"));
    }

    #[test]
    fn render_is_deterministic_and_thread_placement_independent() {
        let run = |threads: usize| {
            // The same 48 recordings, split across 1 or 4 threads.
            let fam = CounterFamily::new("r.count.by_tenant");
            let per = 48 / threads;
            std::thread::scope(|s| {
                for t in 0..threads {
                    let fam = fam.clone();
                    s.spawn(move || {
                        for i in 0..per {
                            fam.add(&format!("t=ms{}", (t * per + i) % 3), 1);
                        }
                    });
                }
            });
            let mut out = Vec::new();
            fam.render(&mut out);
            out.sort_unstable();
            out.join("\n")
        };
        assert_eq!(run(1), run(4), "folded labeled counts erase thread placement");
    }

    #[test]
    fn tenant_scope_nests_and_clears() {
        assert_eq!(current_tenant(), None);
        let outer = tenant_scope(Arc::from("t=a,p=root"));
        assert_eq!(current_tenant().as_deref(), Some("t=a,p=root"));
        {
            let _inner = tenant_scope(Arc::from("t=b,p=svc"));
            assert_eq!(current_tenant().as_deref(), Some("t=b,p=svc"));
        }
        assert_eq!(current_tenant().as_deref(), Some("t=a,p=root"));
        drop(outer);
        assert_eq!(current_tenant(), None);
    }

    #[test]
    fn sanitize_label_value_strips_grammar_characters() {
        assert_eq!(sanitize_label_value("a b{c}d,e=f"), "a_b_c_d_e_f");
        assert_eq!(sanitize_label_value("acme-ms.01"), "acme-ms.01");
    }
}
