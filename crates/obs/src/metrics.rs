//! Metrics: counters, gauges, and log-bucketed latency histograms behind a
//! name-keyed registry.
//!
//! Naming scheme: `layer.operation.metric`, e.g. `txdb.commit.count` or
//! `catalog.tables.create.latency_ms`. An optional scope label (tenant,
//! metastore, access level) is rendered as `name{scope}`. The registry
//! stores instruments in a [`BTreeMap`], so every snapshot lists them in
//! one canonical order — snapshots of deterministic workloads diff cleanly
//! in CI.
//!
//! Hot-path cost: an instrument handle is an `Arc` around *striped*
//! atomics — each recording thread writes its own cache-line-padded cell,
//! selected by [`thread_slot`], so concurrent recorders never contend on
//! one line. Reads fold the stripes: a counter's value is the sum of its
//! stripes and a histogram's buckets are summed cell-wise, so every folded
//! quantity is independent of which thread recorded what. That makes
//! snapshots of deterministic workloads byte-identical regardless of
//! thread count — the determinism discipline (DESIGN.md §6) survives the
//! sharding. Looking an instrument up by name takes the registry mutex
//! and is meant for setup code and exporters.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use std::collections::BTreeMap;

use crate::labels::{CounterFamily, Families, HistogramFamily};
use crate::window::{Windows, WindowSeries};

/// Process-wide thread-slot allocator: the first time a thread asks for
/// its slot it takes the next integer, forever. Stripe selection is
/// `slot % STRIPES`, so up to `STRIPES` concurrent threads get private
/// cache lines and slot reuse beyond that only costs sharing, never
/// correctness.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// Small dense integer identifying the calling thread, assigned on first
/// use in arrival order. Used to pick a counter/histogram stripe and an
/// audit lane; never rendered into any snapshot (absolute slot values are
/// schedule-dependent, folded quantities are not).
pub fn thread_slot() -> usize {
    SLOT.with(|s| *s)
}

/// Number of stripes in a [`Counter`]. Chosen to cover typical bench
/// thread counts without contention while keeping the fold cheap.
pub const COUNTER_STRIPES: usize = 16;

/// Number of stripes in a [`Histogram`] — heavier per stripe
/// ([`HISTOGRAM_BUCKETS`] cells), so fewer of them.
pub const HISTOGRAM_STRIPES: usize = 8;

/// One cache line per stripe: adjacent stripes must not false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64 {
    cell: AtomicU64,
}

/// Monotonic counter, striped across [`COUNTER_STRIPES`] cache-padded
/// cells. Writers touch only their own stripe; `get` folds the stripes by
/// summation, which is order- and placement-independent.
///
/// The `fetch_add`/`load` methods mirror [`AtomicU64`]'s signatures so a
/// struct field can migrate from `AtomicU64` to `Counter` without touching
/// call sites (the memory-ordering argument is accepted and ignored; all
/// counter traffic is relaxed). `fetch_add` returns the prior value of the
/// *caller's stripe* — the global prior is unknowable without a fold, and
/// no caller in this workspace uses the return value across threads.
#[derive(Debug, Clone)]
pub struct Counter {
    stripes: Arc<[PaddedU64; COUNTER_STRIPES]>,
}

impl Default for Counter {
    fn default() -> Self {
        Counter { stripes: Arc::new(std::array::from_fn(|_| PaddedU64::default())) }
    }
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    #[inline]
    fn my_stripe(&self) -> &AtomicU64 {
        &self.stripes[thread_slot() % COUNTER_STRIPES].cell
    }

    pub fn inc(&self) {
        self.my_stripe().fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.my_stripe().fetch_add(n, Ordering::Relaxed);
    }

    /// Folded value: the sum over all stripes.
    pub fn get(&self) -> u64 {
        self.stripes.iter().map(|s| s.cell.load(Ordering::Relaxed)).fold(0, u64::wrapping_add)
    }

    /// Drop-in for `AtomicU64::fetch_add` (returns the caller-stripe prior).
    pub fn fetch_add(&self, n: u64, _order: Ordering) -> u64 {
        self.my_stripe().fetch_add(n, Ordering::Relaxed)
    }

    /// Drop-in for `AtomicU64::load` (folded value).
    pub fn load(&self, _order: Ordering) -> u64 {
        self.get()
    }
}

/// Instantaneous signed value (queue depths, cache sizes). Gauges are
/// last-writer-wins, so striping would change semantics; they stay a
/// single cell and off the hot path.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero, three singleton buckets for
/// 1–3, then four linear sub-buckets per octave (`[2^o, 2^(o+1))` split
/// into quarters) for octaves 2..=63. Pure log₂ buckets quantized p99 to
/// powers of two (BENCH_cache.json used to report a flat 8.191µs); the
/// quarter-octave split bounds quantile error at ~12.5% of the value while
/// keeping the index a pair of shifts — no floats, no tables.
pub const HISTOGRAM_BUCKETS: usize = 252;

/// One histogram stripe, cache-line-aligned at its head. The bucket array
/// spans many lines regardless; alignment keeps the hot `count`/`sum`/`max`
/// words of adjacent stripes apart.
#[derive(Debug)]
#[repr(align(64))]
struct HistogramStripe {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramStripe {
    fn default() -> Self {
        HistogramStripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Quarter-octave-bucketed histogram of non-negative integer samples
/// (typically milliseconds of virtual time or nanoseconds of wall time),
/// striped across [`HISTOGRAM_STRIPES`] cells like [`Counter`].
///
/// Bucket 0 holds exactly the value 0, buckets 1–3 hold exactly 1–3, and
/// every octave `[2^o, 2^(o+1))` with `o ≥ 2` is split into 4 equal
/// linear sub-buckets of width `2^(o-2)`. Percentiles interpolate the
/// requested rank linearly inside its sub-bucket (integer math only) and
/// clamp to the exact observed maximum — a deterministic function of the
/// recorded samples, independent of recording order *and* of which stripe
/// each sample landed in (folds are sums and maxes).
#[derive(Debug, Clone)]
pub struct Histogram {
    stripes: Arc<[HistogramStripe; HISTOGRAM_STRIPES]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram { stripes: Arc::new(std::array::from_fn(|_| HistogramStripe::default())) }
    }

    /// Bucket index a value lands in: two shifts, no branches beyond the
    /// small-value special cases.
    pub fn bucket_index(value: u64) -> usize {
        if value <= 3 {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros() as usize; // ≥ 2
        let sub = ((value - (1u64 << octave)) >> (octave - 2)) as usize; // 0..=3
        4 + (octave - 2) * 4 + sub
    }

    /// Inclusive lower bound of a bucket.
    pub fn bucket_lower_bound(index: usize) -> u64 {
        match index {
            0..=3 => index as u64,
            HISTOGRAM_BUCKETS.. => u64::MAX,
            i => {
                let octave = 2 + (i - 4) / 4;
                let sub = ((i - 4) % 4) as u64;
                (1u64 << octave) + sub * (1u64 << (octave - 2))
            }
        }
    }

    /// Inclusive upper bound of a bucket.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        match index {
            0..=3 => index as u64,
            HISTOGRAM_BUCKETS.. => u64::MAX,
            i => {
                let octave = 2 + (i - 4) / 4;
                // Sub-bucket width 2^(octave-2); the top sub-bucket of the
                // top octave ends exactly at u64::MAX, so add the width to
                // `lower - 1` (never to `lower`, which would overflow).
                Self::bucket_lower_bound(i) - 1 + (1u64 << (octave - 2))
            }
        }
    }

    pub fn record(&self, value: u64) {
        let stripe = &self.stripes[thread_slot() % HISTOGRAM_STRIPES];
        stripe.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        stripe.count.fetch_add(1, Ordering::Relaxed);
        stripe.sum.fetch_add(value, Ordering::Relaxed);
        stripe.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.stripes.iter().map(|s| s.count.load(Ordering::Relaxed)).sum()
    }

    pub fn sum(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.sum.load(Ordering::Relaxed))
            .fold(0, u64::wrapping_add)
    }

    /// Exact maximum recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.stripes.iter().map(|s| s.max.load(Ordering::Relaxed)).max().unwrap_or(0)
    }

    /// Folded occupancy of one bucket across all stripes.
    fn bucket(&self, i: usize) -> u64 {
        self.stripes.iter().map(|s| s.buckets[i].load(Ordering::Relaxed)).sum()
    }

    /// Quantile estimate: the sample of rank `⌈q·count⌉` is located in its
    /// sub-bucket and its value interpolated linearly at the rank's
    /// midpoint offset (`lo + (hi-lo)·(2·pos-1)/(2·n)`, pure integer
    /// math), then clamped to the exact observed max. Deterministic and
    /// order-independent; `q` outside `[0, 1]` is clamped.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            let n = self.bucket(i);
            if n == 0 {
                continue;
            }
            if cumulative + n >= rank {
                let pos = rank - cumulative; // 1..=n within this bucket
                let lo = Self::bucket_lower_bound(i);
                let hi = Self::bucket_upper_bound(i);
                let span = (hi - lo) as u128;
                let est = lo + ((span * (2 * pos as u128 - 1)) / (2 * n as u128)) as u64;
                return est.min(self.max());
            }
            cumulative += n;
        }
        self.max()
    }

    /// `(p50, p95, p99, max)` in one call — the summary every exporter
    /// and bench table wants.
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (self.percentile(0.50), self.percentile(0.95), self.percentile(0.99), self.max())
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
pub enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Name-keyed instrument registry with deterministic snapshot order.
///
/// Cloning shares the registry, the same way [`crate::Obs`] handles are
/// shared across layers. `counter`/`gauge`/`histogram` get-or-create: the
/// first caller registers, later callers receive the same handle, so
/// several subsystems can contribute to one metric.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    instruments: Arc<Mutex<BTreeMap<String, Instrument>>>,
    labels: Arc<Families>,
    windows: Arc<Windows>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create a counter. If the name is already registered as a
    /// different kind, a detached counter is returned (recordings are kept
    /// but invisible to snapshots) — observability must never panic the
    /// request path over a naming collision.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.instruments.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Counter::new()))
        {
            Instrument::Counter(c) => c.clone(),
            _ => Counter::new(),
        }
    }

    /// Get-or-create a counter with a scope label, keyed as `name{scope}`.
    pub fn counter_scoped(&self, name: &str, scope: &str) -> Counter {
        self.counter(&format!("{name}{{{scope}}}"))
    }

    /// Get-or-create a gauge (detached on kind collision, like `counter`).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.instruments.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Gauge::new()))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// Get-or-create a histogram (detached on kind collision).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.instruments.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Histogram::new()))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => Histogram::new(),
        }
    }

    /// Get-or-create a labeled counter family (bounded-cardinality
    /// per-tenant breakouts; see [`crate::labels`]).
    pub fn counter_family(&self, name: &str) -> CounterFamily {
        self.labels.counter(name)
    }

    /// Get-or-create a labeled histogram family.
    pub fn histogram_family(&self, name: &str) -> HistogramFamily {
        self.labels.histogram(name)
    }

    /// Get-or-create a trailing-window series (see [`crate::window`]).
    pub fn window(&self, name: &str) -> WindowSeries {
        self.windows.series(name)
    }

    /// Look up an existing instrument without creating one.
    pub fn get(&self, name: &str) -> Option<Instrument> {
        self.instruments.lock().get(name).cloned()
    }

    /// Registered names, in snapshot order.
    pub fn names(&self) -> Vec<String> {
        self.instruments.lock().keys().cloned().collect()
    }

    /// Human-readable snapshot with one line per instrument / labeled
    /// series / window, globally sorted. Byte-identical across runs
    /// whenever the recorded values are deterministic (virtual-clock
    /// workloads) — stripe folds erase which thread recorded what, so
    /// thread count doesn't perturb the bytes. Windows render relative to
    /// a zero clock here; exporters with a live clock use
    /// [`Registry::text_snapshot_at`].
    pub fn text_snapshot(&self) -> String {
        self.text_snapshot_at(0)
    }

    /// Snapshot with window series evaluated at `now_ms`.
    pub fn text_snapshot_at(&self, now_ms: u64) -> String {
        let mut lines: Vec<String> = Vec::new();
        {
            let map = self.instruments.lock();
            for (name, instrument) in map.iter() {
                match instrument {
                    Instrument::Counter(c) => {
                        lines.push(format!("{name} counter {}", c.get()));
                    }
                    Instrument::Gauge(g) => {
                        lines.push(format!("{name} gauge {}", g.get()));
                    }
                    Instrument::Histogram(h) => {
                        let (p50, p95, p99, max) = h.summary();
                        lines.push(format!(
                            "{name} histogram count={} sum={} p50={p50} p95={p95} p99={p99} max={max}",
                            h.count(),
                            h.sum(),
                        ));
                    }
                }
            }
        }
        self.labels.render(&mut lines);
        self.windows.render(now_ms, &mut lines);
        // One global sort: labeled lines (`name{label} ...`) interleave
        // with scalar lines in plain byte order, so consumers (and the
        // sorted-snapshot invariant tests) see one canonical ordering no
        // matter which subsystem emitted a line.
        lines.sort_unstable();
        let mut out = String::from("# uc-obs metrics snapshot\n");
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("a.b.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("a.b.count").get(), 5, "get-or-create shares the cell");
        let g = r.gauge("a.b.depth");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn counter_mirrors_atomic_u64_api() {
        let c = Counter::new();
        assert_eq!(c.fetch_add(3, Ordering::Relaxed), 0);
        assert_eq!(c.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn thread_slots_are_stable_per_thread() {
        let a = thread_slot();
        assert_eq!(a, thread_slot(), "a thread keeps its slot");
        let b = std::thread::spawn(thread_slot).join().unwrap();
        assert_ne!(a, b, "distinct threads get distinct slots");
    }

    #[test]
    fn striped_counter_folds_across_threads() {
        let c = Counter::new();
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..24 {
                // More threads than stripes: folds must survive slot reuse.
                s.spawn(|| {
                    for v in 1..=50u64 {
                        c.add(2);
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(c.get(), 24 * 50 * 2);
        assert_eq!(h.count(), 24 * 50);
        assert_eq!(h.sum(), 24 * (50 * 51 / 2));
        assert_eq!(h.max(), 50);
    }

    #[test]
    fn histogram_bucket_boundaries_are_stable() {
        // The boundary table is a contract: snapshots diff across commits,
        // so bucket edges must never drift.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 3);
        assert_eq!(Histogram::bucket_index(4), 4, "first quarter of octave 2");
        assert_eq!(Histogram::bucket_index(5), 5);
        assert_eq!(Histogram::bucket_index(7), 7);
        assert_eq!(Histogram::bucket_index(8), 8, "first quarter of octave 3");
        assert_eq!(Histogram::bucket_index(9), 8, "sub-bucket width 2 at octave 3");
        assert_eq!(Histogram::bucket_index(10), 9);
        assert_eq!(Histogram::bucket_index(1023), 35, "top quarter of octave 9");
        assert_eq!(Histogram::bucket_index(1024), 36, "first quarter of octave 10");
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(2), 2);
        assert_eq!(Histogram::bucket_upper_bound(4), 4);
        assert_eq!(Histogram::bucket_upper_bound(35), 1023);
        assert_eq!(Histogram::bucket_lower_bound(35), 896, "512 + 3·128");
        assert_eq!(Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        for v in [0u64, 1, 2, 3, 4, 5, 127, 128, 1 << 40, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(Histogram::bucket_lower_bound(i) <= v);
            assert!(v <= Histogram::bucket_upper_bound(i));
            if i > 0 {
                assert!(v > Histogram::bucket_upper_bound(i - 1));
                assert_eq!(
                    Histogram::bucket_lower_bound(i),
                    Histogram::bucket_upper_bound(i - 1) + 1,
                    "buckets tile the axis with no gaps"
                );
            }
        }
    }

    #[test]
    fn histogram_percentile_math_is_stable() {
        let h = Histogram::new();
        // 100 samples: 1..=100. p50 rank 50 lands in sub-bucket [48, 55]
        // as its 3rd of 8 samples → interpolated exactly to 50; p95 rank
        // 95 lands in [80, 95] as its 16th of 16 → 94 (interpolation
        // bounds error to the sub-bucket width); p99 rank 99 lands in
        // [96, 111] which clamps to the exact max 100.
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert_eq!(h.percentile(0.50), 50, "interpolation recovers the exact median here");
        assert_eq!(h.percentile(0.95), 94);
        assert_eq!(h.percentile(0.99), 100, "estimate above the max clamps to the exact max");
        assert_eq!(h.percentile(0.0), 1, "rank clamps to the first sample");
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(h.summary(), (50, 94, 100, 100));
    }

    #[test]
    fn interpolated_quantiles_beat_octave_quantization() {
        // The regression this scheme exists for: a tight cluster of
        // latencies inside one octave used to collapse to the octave's
        // power-of-two upper bound (8191 for anything in 4096..=8191).
        let h = Histogram::new();
        for v in 5000..5100u64 {
            h.record(v);
        }
        let p99 = h.percentile(0.99);
        assert!(
            (4096..=6143).contains(&p99),
            "p99 {p99} must stay within the quarter-octave, not snap to 8191"
        );
        assert!(p99 >= 5000, "clamped below by the populated sub-bucket");
    }

    #[test]
    fn histogram_percentiles_are_order_independent() {
        let forward = Histogram::new();
        let backward = Histogram::new();
        for v in 0..1000u64 {
            forward.record(v * 7 % 1000);
            backward.record((999 - v) * 7 % 1000);
        }
        assert_eq!(forward.summary(), backward.summary());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.summary(), (0, 0, 0, 0));
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let build = || {
            let r = Registry::new();
            r.counter("zeta.op.count").add(3);
            r.histogram("alpha.op.latency_ms").record(5);
            r.gauge("mid.op.depth").set(-2);
            r.counter_scoped("alpha.op.count", "tenant=a").inc();
            r.text_snapshot()
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1, s2, "same recordings → byte-identical snapshot");
        let lines: Vec<&str> = s1.lines().skip(1).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "snapshot lines are in canonical order");
        assert!(s1.contains("alpha.op.count{tenant=a} counter 1"));
        assert!(s1.contains("alpha.op.latency_ms histogram count=1 sum=5 p50=5 p95=5 p99=5 max=5"));
    }

    #[test]
    fn snapshot_is_thread_placement_independent() {
        // The same multiset of recordings, delivered single-threaded vs
        // spread over many threads, must render identical bytes: folds
        // erase stripe placement.
        let single = Registry::new();
        let spread = Registry::new();
        for v in 0..64u64 {
            single.counter("fold.op.count").add(v);
            single.histogram("fold.op.latency_ms").record(v);
        }
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let r = spread.clone();
                s.spawn(move || {
                    for v in (t * 8)..(t * 8 + 8) {
                        r.counter("fold.op.count").add(v);
                        r.histogram("fold.op.latency_ms").record(v);
                    }
                });
            }
        });
        assert_eq!(single.text_snapshot(), spread.text_snapshot());
    }

    #[test]
    fn snapshot_interleaves_labeled_and_window_lines_in_sorted_order() {
        let r = Registry::new();
        r.counter("catalog.get_table.count").add(7);
        r.counter_family("catalog.get_table.count.by_tenant").add("t=acme,p=root", 4);
        r.counter_family("catalog.get_table.count.by_tenant").add("t=zeta,p=root", 3);
        r.window("catalog.get_table.window").record(0, 2);
        let snap = r.text_snapshot();
        let lines: Vec<&str> = snap.lines().skip(1).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "global sort covers scalars, labels, and windows");
        assert!(snap.contains("catalog.get_table.count counter 7"));
        assert!(snap.contains("catalog.get_table.count.by_tenant{t=acme,p=root} counter 4"));
        assert!(snap.contains("catalog.get_table.count.by_tenant{t=zeta,p=root} counter 3"));
        assert!(snap.contains(
            "catalog.get_table.window window bucket_ms=125 window_ms=1000 count=1"
        ));
    }

    #[test]
    fn kind_collision_returns_detached_instrument() {
        let r = Registry::new();
        r.counter("x");
        let h = r.histogram("x");
        h.record(1); // must not panic, must not corrupt the counter
        assert!(matches!(r.get("x"), Some(Instrument::Counter(_))));
    }
}
