//! Hygiene fixtures plus pragma behavior: honored suppression,
//! reason-less pragma, malformed pragma.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // line 5: .unwrap()
}

pub fn must(x: Option<u32>) -> u32 {
    x.expect("present") // line 9: .expect()
}

pub fn boom() {
    panic!("boom"); // line 13: panic!
}

pub fn log(msg: &str) {
    println!("{msg}"); // line 17: println!
}

pub fn peek(x: u32) -> u32 {
    dbg!(x) // line 21: dbg!
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // uc-lint: allow(hygiene) -- fixture: a pragma with a reason is honored
    x.expect("suppressed: no diagnostic for this line")
}

pub fn reasonless(x: Option<u32>) -> u32 {
    // uc-lint: allow(hygiene)
    x.expect("line 31: pragma diag at 30 AND hygiene diag here")
}

pub fn mangled(x: Option<u32>) -> u32 {
    // uc-lint: allow hygiene please
    x.expect("line 36: malformed-pragma diag at 35 AND hygiene diag here")
}
