//! Hot-path lock ban. The cached-read fast path — `api_enter` through the
//! audit append — runs once per lookup, so one shared exclusive lock
//! anywhere on it re-serializes the entire read side (the Fig 10 knee the
//! audit-lane/counter-stripe sharding removed). `[hotpath] functions` in
//! Lint.toml names only the *roots* (`<rel_path>::<fn_name>`); the driver
//! closes them over the workspace call graph, so a lock buried N calls
//! below `api_enter` is flagged exactly like one in `api_enter` itself.
//!
//! Any guard-returning acquisition (`.read()` / `.write()` / `.lock()` /
//! `.try_lock()` / `.write_gate()` / `.acquire()`) inside a closure
//! member is a diagnostic unless suppressed with a reasoned
//! `// uc-lint: allow(hotpath)` pragma. A pragma on a *call site* inside
//! a member marks the hot/cold boundary instead: the callee subtree is
//! pruned from the closure (miss paths are cold by construction), and
//! the pragma counts as used.

use std::collections::BTreeMap;

use super::{is_punct, Diagnostic, FileCtx, RULE_HOTPATH};
use crate::lexer::Kind;

/// Method names whose call returns (or stands for) a lock guard.
const ACQ_METHODS: &[&str] = &["read", "write", "lock", "try_lock", "write_gate", "acquire"];

/// `members` maps this file's fn indices to their root-chain witness
/// (e.g. `api_enter -> api_enter_inner -> tenant_label`), computed by
/// the driver from the hot-path closure.
pub fn check(ctx: &FileCtx<'_>, members: &BTreeMap<usize, String>, out: &mut Vec<Diagnostic>) {
    if members.is_empty() {
        return;
    }
    let toks = ctx.tokens;
    for (fn_idx, f) in ctx.scan.fns.iter().enumerate() {
        let Some(chain) = members.get(&fn_idx) else { continue };
        let Some((open, close)) = f.body else { continue };
        if ctx.scan.test_mask[open] {
            continue;
        }
        let via = if chain == &f.name { String::new() } else { format!("; on hot path via {chain}") };
        let mut i = open + 1;
        while i < close {
            let t = &toks[i];
            if t.kind == Kind::Ident
                && is_punct(&toks[i - 1], ".")
                && i + 1 < close
                && is_punct(&toks[i + 1], "(")
                && ACQ_METHODS.contains(&t.text.as_str())
            {
                out.push(ctx.diag(
                    t.line,
                    RULE_HOTPATH,
                    format!(
                        "`.{}()` acquisition inside hot-path function `{}` (api_enter→audit must take no shared exclusive lock{}; suppress with a reasoned allow(hotpath) pragma if provably uncontended)",
                        t.text, f.name, via
                    ),
                ));
            }
            i += 1;
        }
    }
}
