//! Rule families. Each rule consumes a lexed + scanned file and emits
//! `Diagnostic`s; the driver handles pragma suppression, sorting, and
//! formatting. Rule names are stable strings — they appear in output
//! lines, pragmas, and Lint.toml, so changing one is a breaking change
//! to golden outputs.

pub mod bounded_queue;
pub mod cardinality;
pub mod determinism;
pub mod hotpath;
pub mod hygiene;
pub mod instrument;
pub mod keyspace;
pub mod locks;
pub mod staleconfig;

use crate::config::Config;
use crate::lexer::{Kind, Token};
use crate::scan::FileScan;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_HYGIENE: &str = "hygiene";
pub const RULE_LOCKS: &str = "locks";
pub const RULE_HOTPATH: &str = "hotpath";
pub const RULE_CARDINALITY: &str = "cardinality";
pub const RULE_BOUNDED_QUEUE: &str = "bounded-queue";
pub const RULE_INSTRUMENT: &str = "instrument";
pub const RULE_KEYSPACE: &str = "keyspace";
pub const RULE_UNSAFE: &str = "unsafe";
pub const RULE_PRAGMA: &str = "pragma";
pub const RULE_STALE_CONFIG: &str = "stale-config";

/// Everything a rule needs to look at one file.
pub struct FileCtx<'a> {
    pub rel_path: &'a str,
    pub crate_name: &'a str,
    pub tokens: &'a [Token],
    pub scan: &'a FileScan,
    pub cfg: &'a Config,
}

impl FileCtx<'_> {
    pub fn diag(&self, line: u32, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic { file: self.rel_path.to_string(), line, rule, message }
    }
}

pub fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == Kind::Ident && t.text == s
}

pub fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == Kind::Punct && t.text == s
}

/// `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]` presence check for
/// crate roots, plus a scan for the `unsafe` keyword anywhere. Small
/// enough to live here rather than its own module.
pub fn check_unsafe(ctx: &FileCtx<'_>, is_crate_root: bool, out: &mut Vec<Diagnostic>) {
    let toks = ctx.tokens;
    if is_crate_root {
        let mut found = false;
        let mut i = 0usize;
        while i + 5 < toks.len() {
            if is_punct(&toks[i], "#")
                && is_punct(&toks[i + 1], "!")
                && is_punct(&toks[i + 2], "[")
                && (is_ident(&toks[i + 3], "forbid") || is_ident(&toks[i + 3], "deny"))
                && is_punct(&toks[i + 4], "(")
                && is_ident(&toks[i + 5], "unsafe_code")
            {
                found = true;
                break;
            }
            i += 1;
        }
        if !found {
            out.push(ctx.diag(
                1,
                RULE_UNSAFE,
                "crate root missing #![forbid(unsafe_code)]".to_string(),
            ));
        }
    }
    for (i, t) in toks.iter().enumerate() {
        if ctx.scan.test_mask[i] {
            continue;
        }
        if is_ident(t, "unsafe_code") {
            continue;
        }
        if is_ident(t, "unsafe") {
            out.push(ctx.diag(t.line, RULE_UNSAFE, "`unsafe` keyword is forbidden".to_string()));
        }
    }
}
