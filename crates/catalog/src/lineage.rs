//! Lineage types (§4.4): edges submitted by compute engines.
//!
//! The catalog stores lineage doubly indexed — by downstream and by
//! upstream entity — so both impact analysis ("what breaks if I drop
//! this?") and provenance ("where did this come from?") are prefix scans.
//! Storage and the API live in the service; this module defines the edge
//! type and traversal helpers over collected edges.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::error::{UcError, UcResult};
use crate::ids::Uid;

/// One lineage edge: `upstream` feeds `downstream`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageEdge {
    pub upstream: Uid,
    pub downstream: Uid,
    /// Job/notebook/query that produced the edge, if reported.
    pub via: Option<String>,
    /// Optional column-level mappings (upstream column → downstream column).
    pub columns: Vec<(String, String)>,
    pub created_at_ms: u64,
}

impl LineageEdge {
    pub fn encode(&self) -> bytes::Bytes {
        bytes::Bytes::from(crate::jsonutil::to_vec(self))
    }

    pub fn decode(data: &[u8]) -> UcResult<Self> {
        serde_json::from_slice(data)
            .map_err(|e| UcError::Database(format!("corrupt lineage edge: {e}")))
    }
}

/// Direction of a lineage traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineageDirection {
    /// Towards sources: entities this one was derived from.
    Upstream,
    /// Towards consumers: entities derived from this one.
    Downstream,
}

/// Breadth-first transitive closure over a set of edges, up to `max_hops`.
/// Returns reached entity ids (excluding the start).
pub fn transitive_closure(
    edges: &[LineageEdge],
    start: &Uid,
    direction: LineageDirection,
    max_hops: usize,
) -> BTreeSet<Uid> {
    let mut adjacency: HashMap<&Uid, Vec<&Uid>> = HashMap::new();
    for e in edges {
        match direction {
            LineageDirection::Upstream => {
                adjacency.entry(&e.downstream).or_default().push(&e.upstream)
            }
            LineageDirection::Downstream => {
                adjacency.entry(&e.upstream).or_default().push(&e.downstream)
            }
        }
    }
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::from([(start, 0usize)]);
    while let Some((node, depth)) = queue.pop_front() {
        if depth >= max_hops {
            continue;
        }
        for next in adjacency.get(node).into_iter().flatten() {
            if seen.insert((*next).clone()) {
                queue.push_back((next, depth + 1));
            }
        }
    }
    seen.remove(start);
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(up: &str, down: &str) -> LineageEdge {
        LineageEdge {
            upstream: Uid::from(up),
            downstream: Uid::from(down),
            via: None,
            columns: vec![],
            created_at_ms: 0,
        }
    }

    #[test]
    fn edge_roundtrip() {
        let mut e = edge("a", "b");
        e.via = Some("job-42".into());
        e.columns = vec![("src".into(), "dst".into())];
        assert_eq!(LineageEdge::decode(&e.encode()).unwrap(), e);
    }

    //      a → b → c
    //      a → d
    fn sample() -> Vec<LineageEdge> {
        vec![edge("a", "b"), edge("b", "c"), edge("a", "d")]
    }

    #[test]
    fn downstream_closure() {
        let reached = transitive_closure(&sample(), &Uid::from("a"), LineageDirection::Downstream, 10);
        let names: Vec<_> = reached.iter().map(|u| u.as_str()).collect();
        assert_eq!(names, vec!["b", "c", "d"]);
    }

    #[test]
    fn upstream_closure() {
        let reached = transitive_closure(&sample(), &Uid::from("c"), LineageDirection::Upstream, 10);
        let names: Vec<_> = reached.iter().map(|u| u.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn hop_limit_bounds_traversal() {
        let reached = transitive_closure(&sample(), &Uid::from("a"), LineageDirection::Downstream, 1);
        let names: Vec<_> = reached.iter().map(|u| u.as_str()).collect();
        assert_eq!(names, vec!["b", "d"]);
    }

    #[test]
    fn cycles_terminate() {
        let mut edges = sample();
        edges.push(edge("c", "a")); // cycle
        let reached = transitive_closure(&edges, &Uid::from("a"), LineageDirection::Downstream, 100);
        assert_eq!(reached.len(), 3, "a reaches b, c, d and stops");
    }

    #[test]
    fn leaf_has_empty_closure() {
        let reached = transitive_closure(&sample(), &Uid::from("c"), LineageDirection::Downstream, 10);
        assert!(reached.is_empty());
    }
}
