//! Lock-discipline fixtures. Receivers `state` and `tables` are tracked
//! guard sources; the fixture Lint.toml pins the acquisition order
//! [demo.pool, demo.tables, demo.state]. Note `inverted` + `ordered`
//! together close a state -> tables -> state cycle, reported once at the
//! first edge's site (line 27).

pub fn held_across_yield(s: &S) {
    let guard = s.state.write();
    yield_point(1); // line 9: guard held across yield point
    drop(guard);
}

pub fn held_across_commit(s: &S, tx: &Tx) {
    let guard = s.tables.write();
    tx.commit(); // line 15: guard held across txdb commit
    drop(guard);
}

pub fn held_across_yieldful_call(s: &S, uc: &Uc) {
    let guard = s.state.read();
    uc.get_entity_by_id(7); // line 21: guard held across yielding call
    drop(guard);
}

pub fn inverted(a: &S, b: &S) {
    let outer = a.state.read();
    let inner = b.tables.read(); // line 27: inversion (tables is pinned before state)
    drop(inner);
    drop(outer);
}

pub fn self_deadlock(a: &S) {
    let outer = a.state.read();
    let inner = a.state.write(); // line 34: same-class nesting
    drop(inner);
    drop(outer);
}

pub fn ordered(a: &S) {
    let outer = a.tables.write();
    let inner = a.state.write(); // line 41: clean edge demo.tables -> demo.state, no diagnostic
    drop(inner);
    drop(outer);
}

pub fn pooled(pool: &Pool, ms: &Gate) {
    let permit = pool.acquire(); // census: demo.pool
    drop(permit);
    let gate = ms.write_gate(); // census: demo.gate
    drop(gate);
}

pub fn held_across_deep_yield(s: &S, uc: &Uc) {
    let guard = s.state.read();
    uc_depot::mid_hop(uc); // guard held across a cross-crate call that yields two hops down
    drop(guard);
}

pub fn outer_state(a: &S, b: &S) {
    let g = a.state.read();
    lock_tables(b); // callee acquires demo.tables while demo.state is held: inversion through the call
    drop(g);
}

fn lock_tables(b: &S) {
    let g = b.tables.read();
    drop(g);
}

pub fn tidy(_s: &S) {
    // uc-lint: allow(locks) -- fixture: nothing below acquires or yields anymore
    let _n = 0;
}

pub fn hot_read(a: &S) {
    let guard = a.state.read(); // hotpath: listed function takes a lock without a pragma
    drop(guard);
}

pub fn hot_entry(a: &S, f: &Fam, id: u32) {
    hot_helper(a, f, id); // the lock and the label live one call below this root
    uc_depot::depot_probe(a); // cross-crate: depot.state joins the closure too
    // uc-lint: allow(hotpath) -- hot/cold boundary: the refill is the miss path, pruned from the closure
    cold_refill(a);
}

fn hot_helper(a: &S, f: &Fam, id: u32) {
    let g = a.state.read(); // hotpath: reached from hot_entry, not listed itself
    drop(g);
    f.inc(&format!("t={id}")); // cardinality: inline label one call below the root
}

fn cold_refill(a: &S) {
    let g = a.state.write(); // pruned by the boundary pragma at the call site: no diagnostic
    drop(g);
}

pub fn hot_labeled(m: &Fam, id: u32) {
    m.inc(&format!("t={id}")); // cardinality: inline format! label in a hot function
    m.inc("t=fixed"); // literal label: no diagnostic
    m.record("t=fixed", 5); // literal label: no diagnostic
}
