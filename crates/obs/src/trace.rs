//! Request-scoped spans with deterministic, replayable trace dumps.
//!
//! A span is opened at a service entry point (`catalog.tables.create`),
//! and every layer the request passes through opens child spans or
//! attaches events to the innermost active span — without signature
//! changes, via a thread-local context stack. Trace and span IDs are
//! sequential (not random) and timestamps come from the tracer's clock
//! function — the virtual clock in tests — so two runs of the same seeded
//! workload produce byte-identical JSON-lines dumps.
//!
//! The trace log is a flat, append-ordered stream of records
//! (`span_start` / `event` / `span_end`), which is exactly the JSONL
//! export format: no post-hoc merging, no reordering, no wall-clock.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::flight::FlightRecorder;
use crate::metrics::Histogram;

/// Upper bound on retained trace records; beyond it new records are
/// counted as dropped rather than buffered, so a runaway workload cannot
/// exhaust memory through its own observability.
const MAX_RECORDS: usize = 1_000_000;

/// Clock function: milliseconds since the tracer's epoch. Installed from
/// the shared virtual clock in tests; defaults to the system clock.
pub type ClockFn = Arc<dyn Fn() -> u64 + Send + Sync>;

fn system_clock() -> ClockFn {
    Arc::new(|| {
        // uc-lint: allow(determinism) -- the documented system-clock default; tests install a virtual clock
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    })
}

/// One record in the append-ordered trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    SpanStart {
        trace_id: u64,
        span_id: u64,
        /// 0 for a root span.
        parent_id: u64,
        layer: String,
        name: String,
        ts_ms: u64,
    },
    Event {
        trace_id: u64,
        span_id: u64,
        name: String,
        detail: String,
        ts_ms: u64,
    },
    SpanEnd {
        trace_id: u64,
        span_id: u64,
        ts_ms: u64,
        status: String,
    },
}

impl TraceRecord {
    /// One JSON object per record; key order is fixed by this formatter,
    /// which is what makes dumps diffable.
    pub fn to_json(&self) -> String {
        match self {
            TraceRecord::SpanStart { trace_id, span_id, parent_id, layer, name, ts_ms } => {
                format!(
                    "{{\"t\":\"span_start\",\"trace\":{trace_id},\"span\":{span_id},\"parent\":{parent_id},\"layer\":\"{}\",\"name\":\"{}\",\"ts\":{ts_ms}}}",
                    escape(layer),
                    escape(name),
                )
            }
            TraceRecord::Event { trace_id, span_id, name, detail, ts_ms } => {
                format!(
                    "{{\"t\":\"event\",\"trace\":{trace_id},\"span\":{span_id},\"name\":\"{}\",\"detail\":\"{}\",\"ts\":{ts_ms}}}",
                    escape(name),
                    escape(detail),
                )
            }
            TraceRecord::SpanEnd { trace_id, span_id, ts_ms, status } => {
                format!(
                    "{{\"t\":\"span_end\",\"trace\":{trace_id},\"span\":{span_id},\"ts\":{ts_ms},\"status\":\"{}\"}}",
                    escape(status),
                )
            }
        }
    }
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug, Default)]
struct TraceLog {
    records: Vec<TraceRecord>,
    dropped: u64,
}

struct TracerInner {
    enabled: bool,
    clock: ClockFn,
    next_trace_id: AtomicU64,
    next_span_id: AtomicU64,
    log: Mutex<TraceLog>,
    /// Always-on incident ring, live iff the tracer is enabled. Fed from
    /// [`Tracer::push`] *before* the log mutex is taken (flight lane
    /// mutexes and the log mutex never nest).
    flight: FlightRecorder,
}

/// Span recorder. Cloning shares the tracer; a disabled tracer records
/// nothing and opening a span on it is free of allocation and locking.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.enabled)
            .field("records", &self.inner.log.lock().records.len())
            .finish()
    }
}

impl Tracer {
    pub fn disabled() -> Self {
        Tracer::build(false, system_clock())
    }

    pub fn enabled(clock: ClockFn) -> Self {
        Tracer::build(true, clock)
    }

    fn build(enabled: bool, clock: ClockFn) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled,
                clock,
                next_trace_id: AtomicU64::new(1),
                next_span_id: AtomicU64::new(1),
                log: Mutex::new(TraceLog::default()),
                flight: FlightRecorder::new(enabled),
            }),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The tracer's flight recorder (inert when tracing is disabled).
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// Current time on the tracer's injected clock.
    pub fn clock_ms(&self) -> u64 {
        self.now_ms()
    }

    fn now_ms(&self) -> u64 {
        (self.inner.clock)()
    }

    fn push(&self, record: TraceRecord) {
        // Feed the flight recorder first: its lane mutex is taken and
        // released (and any auto-freeze fully completes) while this thread
        // holds no other obs lock, keeping the pinned lock order acyclic.
        self.feed_flight(&record);
        // uc-lint: allow(hotpath) -- trace ring: leaf mutex with a bounded O(1) append critical section
        let mut log = self.inner.log.lock();
        if log.records.len() >= MAX_RECORDS {
            log.dropped += 1;
        } else {
            log.records.push(record);
        }
    }

    fn feed_flight(&self, record: &TraceRecord) {
        let fr = &self.inner.flight;
        if !fr.is_enabled() {
            return;
        }
        match record {
            TraceRecord::SpanStart { trace_id, layer, name, ts_ms, .. } => {
                fr.note(*ts_ms, *trace_id, "span.start", &format!("{layer}.{name}"), "");
            }
            TraceRecord::Event { trace_id, name, detail, ts_ms, .. } => {
                fr.note(*ts_ms, *trace_id, "event", name, detail);
                if let Some(reason) = FlightRecorder::trigger_reason(name, detail) {
                    // uc-lint: allow(hotpath) -- incident freeze: fires at most once per armed trigger, never on the steady path
                    fr.freeze_if_armed(*ts_ms, &reason);
                }
            }
            TraceRecord::SpanEnd { trace_id, ts_ms, status, .. } => {
                fr.note(*ts_ms, *trace_id, "span.end", "", &format!("status={status}"));
            }
        }
    }

    /// Open a span. If a span is already active on this thread the new one
    /// becomes its child (same trace); otherwise a new trace begins. The
    /// returned guard ends the span on drop.
    pub fn span(&self, layer: &str, name: &str) -> SpanGuard {
        self.span_timed(layer, name, None)
    }

    /// Like [`Tracer::span`], additionally recording the span's duration
    /// (in clock milliseconds) into `histogram` when it ends.
    pub fn span_timed(&self, layer: &str, name: &str, histogram: Option<Histogram>) -> SpanGuard {
        if !self.inner.enabled {
            return SpanGuard { ctx: None };
        }
        let (trace_id, parent_id) = CURRENT.with(|stack| {
            stack
                .borrow()
                .last()
                .map(|top| (top.trace_id, top.span_id))
                .unwrap_or_else(|| (self.inner.next_trace_id.fetch_add(1, Ordering::Relaxed), 0))
        });
        let span_id = self.inner.next_span_id.fetch_add(1, Ordering::Relaxed);
        let start_ms = self.now_ms();
        self.push(TraceRecord::SpanStart {
            trace_id,
            span_id,
            parent_id,
            layer: layer.to_string(),
            name: name.to_string(),
            ts_ms: start_ms,
        });
        CURRENT.with(|stack| {
            stack.borrow_mut().push(ActiveSpan { tracer: self.clone(), trace_id, span_id })
        });
        SpanGuard {
            ctx: Some(SpanCtx {
                tracer: self.clone(),
                trace_id,
                span_id,
                start_ms,
                status: None,
                histogram,
            }),
        }
    }

    /// Open a *root* span with a caller-chosen trace ID, ignoring any span
    /// already active on this thread. Harnesses that drive many logical
    /// operations concurrently use this to pin each operation's trace ID
    /// to its (thread, iteration) coordinates, so anything merged by trace
    /// ID downstream (the audit log's canonical order) is a function of
    /// the workload, not of the schedule. Pinned IDs should start at a
    /// high base (e.g. `1 << 32`) to stay clear of the sequential
    /// allocator used by [`Tracer::span`].
    pub fn span_pinned(
        &self,
        layer: &str,
        name: &str,
        trace_id: u64,
        histogram: Option<Histogram>,
    ) -> SpanGuard {
        if !self.inner.enabled {
            return SpanGuard { ctx: None };
        }
        let span_id = self.inner.next_span_id.fetch_add(1, Ordering::Relaxed);
        let start_ms = self.now_ms();
        self.push(TraceRecord::SpanStart {
            trace_id,
            span_id,
            parent_id: 0,
            layer: layer.to_string(),
            name: name.to_string(),
            ts_ms: start_ms,
        });
        CURRENT.with(|stack| {
            stack.borrow_mut().push(ActiveSpan { tracer: self.clone(), trace_id, span_id })
        });
        SpanGuard {
            ctx: Some(SpanCtx {
                tracer: self.clone(),
                trace_id,
                span_id,
                start_ms,
                status: None,
                histogram,
            }),
        }
    }

    /// Records accumulated so far, in append order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner.log.lock().records.clone()
    }

    /// Number of records discarded after the retention cap was reached.
    pub fn dropped(&self) -> u64 {
        self.inner.log.lock().dropped
    }

    /// The full trace stream as JSON lines, in append order.
    pub fn jsonl(&self) -> String {
        let log = self.inner.log.lock();
        let mut out = String::new();
        for record in &log.records {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }

    /// Count `Event` records by name, optionally filtering on a substring
    /// of the detail — chaos tests assert with this ("the retry path fired
    /// exactly N times") instead of end-state only.
    pub fn count_events(&self, name: &str, detail_contains: Option<&str>) -> u64 {
        self.inner
            .log
            .lock()
            .records
            .iter()
            .filter(|r| match r {
                TraceRecord::Event { name: n, detail, .. } => {
                    n == name && detail_contains.is_none_or(|s| detail.contains(s))
                }
                _ => false,
            })
            .count() as u64
    }

    /// Discard all records (between workload phases in a long test).
    pub fn clear(&self) {
        let mut log = self.inner.log.lock();
        log.records.clear();
        log.dropped = 0;
    }
}

struct ActiveSpan {
    tracer: Tracer,
    trace_id: u64,
    span_id: u64,
}

thread_local! {
    static CURRENT: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
}

struct SpanCtx {
    tracer: Tracer,
    trace_id: u64,
    span_id: u64,
    start_ms: u64,
    status: Option<String>,
    histogram: Option<Histogram>,
}

/// RAII span handle: ends the span (and pops the thread-local context) on
/// drop. Guards must be dropped in reverse opening order, which scoping
/// gives for free.
pub struct SpanGuard {
    ctx: Option<SpanCtx>,
}

impl SpanGuard {
    /// True for the inert guard a disabled tracer hands out.
    pub fn is_recording(&self) -> bool {
        self.ctx.is_some()
    }

    /// Trace ID of this span (None when not recording).
    pub fn trace_id(&self) -> Option<u64> {
        self.ctx.as_ref().map(|c| c.trace_id)
    }

    /// Override the `"ok"` status reported at span end.
    pub fn set_status(&mut self, status: &str) {
        if let Some(ctx) = &mut self.ctx {
            ctx.status = Some(status.to_string());
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(ctx) = self.ctx.take() else { return };
        CURRENT.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|s| s.span_id == ctx.span_id) {
                stack.truncate(pos);
            }
        });
        let end_ms = ctx.tracer.now_ms();
        if let Some(h) = &ctx.histogram {
            h.record(end_ms.saturating_sub(ctx.start_ms));
        }
        ctx.tracer.push(TraceRecord::SpanEnd {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            ts_ms: end_ms,
            status: ctx.status.unwrap_or_else(|| "ok".to_string()),
        });
    }
}

/// Trace ID of the innermost active span on this thread, if any. Audit
/// records capture this so governance events join to request traces.
pub fn current_trace_id() -> Option<u64> {
    CURRENT.with(|stack| stack.borrow().last().map(|s| s.trace_id))
}

/// Span ID of the innermost active span on this thread, if any.
pub fn current_span_id() -> Option<u64> {
    CURRENT.with(|stack| stack.borrow().last().map(|s| s.span_id))
}

/// Attach an event to the innermost active span on this thread. No-op when
/// no span is active (production paths with tracing disabled) — which is
/// what lets deep layers like the fault plane annotate request traces
/// without holding any handle.
pub fn span_event(name: &str, detail: &str) {
    CURRENT.with(|stack| {
        let stack = stack.borrow();
        let Some(top) = stack.last() else { return };
        let ts_ms = top.tracer.now_ms();
        top.tracer.push(TraceRecord::Event {
            trace_id: top.trace_id,
            span_id: top.span_id,
            name: name.to_string(),
            detail: detail.to_string(),
            ts_ms,
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_tracer(t: Arc<AtomicU64>) -> Tracer {
        Tracer::enabled(Arc::new(move || t.load(Ordering::SeqCst)))
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        {
            let _s = tracer.span("layer", "op");
            span_event("e", "d");
        }
        assert!(tracer.records().is_empty());
        assert_eq!(current_trace_id(), None);
    }

    #[test]
    fn spans_nest_and_share_a_trace() {
        let clock = Arc::new(AtomicU64::new(0));
        let tracer = manual_tracer(clock.clone());
        {
            let outer = tracer.span("catalog", "tables.create");
            clock.store(3, Ordering::SeqCst);
            assert_eq!(current_trace_id(), outer.trace_id());
            {
                let _inner = tracer.span("txdb", "commit");
                span_event("fault.injected", "txdb.commit.conflict#0");
                clock.store(5, Ordering::SeqCst);
            }
        }
        let records = tracer.records();
        assert_eq!(records.len(), 5);
        let TraceRecord::SpanStart { trace_id, span_id: outer_id, parent_id: 0, .. } = records[0]
        else {
            panic!("expected root span_start, got {:?}", records[0]);
        };
        let TraceRecord::SpanStart { span_id: inner_id, parent_id, .. } = records[1] else {
            panic!("expected child span_start");
        };
        assert_eq!(parent_id, outer_id);
        let TraceRecord::Event { span_id, trace_id: event_trace, ref name, .. } = records[2] else {
            panic!("expected event");
        };
        assert_eq!(span_id, inner_id);
        assert_eq!(event_trace, trace_id);
        assert_eq!(name, "fault.injected");
        assert!(matches!(records[3], TraceRecord::SpanEnd { span_id, .. } if span_id == inner_id));
        assert!(matches!(records[4], TraceRecord::SpanEnd { span_id, ts_ms: 5, .. } if span_id == outer_id));
        assert_eq!(current_trace_id(), None, "stack fully unwound");
    }

    #[test]
    fn pinned_spans_carry_the_chosen_trace_id() {
        let tracer = manual_tracer(Arc::new(AtomicU64::new(0)));
        const PIN: u64 = (1 << 32) + 7;
        {
            let s = tracer.span_pinned("bench", "op", PIN, None);
            assert_eq!(s.trace_id(), Some(PIN));
            assert_eq!(current_trace_id(), Some(PIN));
            {
                let child = tracer.span("txdb", "commit");
                assert_eq!(child.trace_id(), Some(PIN), "children join the pinned trace");
            }
        }
        assert_eq!(current_trace_id(), None, "stack fully unwound");
        // A pinned span is always a root, even under an active span.
        {
            let _outer = tracer.span("l", "outer");
            let pinned = tracer.span_pinned("bench", "op", PIN + 1, None);
            assert_eq!(pinned.trace_id(), Some(PIN + 1));
        }
        assert!(tracer.records().iter().any(|r| matches!(
            r,
            TraceRecord::SpanStart { trace_id, parent_id: 0, .. } if *trace_id == PIN + 1
        )));
    }

    #[test]
    fn sibling_roots_get_distinct_traces() {
        let tracer = manual_tracer(Arc::new(AtomicU64::new(0)));
        let t1 = {
            let s = tracer.span("l", "a");
            s.trace_id().unwrap()
        };
        let t2 = {
            let s = tracer.span("l", "b");
            s.trace_id().unwrap()
        };
        assert_ne!(t1, t2);
    }

    #[test]
    fn span_timed_records_virtual_duration() {
        let clock = Arc::new(AtomicU64::new(10));
        let tracer = manual_tracer(clock.clone());
        let h = Histogram::new();
        {
            let _s = tracer.span_timed("catalog", "op", Some(h.clone()));
            clock.store(17, Ordering::SeqCst);
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 7, "duration measured on the injected clock");
    }

    #[test]
    fn status_defaults_ok_and_is_overridable() {
        let tracer = manual_tracer(Arc::new(AtomicU64::new(0)));
        {
            let _ok = tracer.span("l", "fine");
        }
        {
            let mut bad = tracer.span("l", "broken");
            bad.set_status("error");
        }
        let statuses: Vec<String> = tracer
            .records()
            .into_iter()
            .filter_map(|r| match r {
                TraceRecord::SpanEnd { status, .. } => Some(status),
                _ => None,
            })
            .collect();
        assert_eq!(statuses, vec!["ok".to_string(), "error".to_string()]);
    }

    #[test]
    fn jsonl_is_deterministic_and_escaped() {
        let run = || {
            let tracer = manual_tracer(Arc::new(AtomicU64::new(0)));
            {
                let _s = tracer.span("catalog", "tables.create");
                span_event("note", "say \"hi\"\nline2");
            }
            tracer.jsonl()
        };
        let a = run();
        assert_eq!(a, run(), "same workload → byte-identical dump");
        assert!(a.contains("\\\"hi\\\""));
        assert!(a.contains("\\n"));
        assert!(a.lines().count() == 3);
        assert!(a.starts_with("{\"t\":\"span_start\""));
    }

    #[test]
    fn count_events_filters_by_name_and_detail() {
        let tracer = manual_tracer(Arc::new(AtomicU64::new(0)));
        {
            let _s = tracer.span("l", "op");
            span_event("fault.injected", "txdb.commit.conflict#0");
            span_event("fault.injected", "store.put#3");
            span_event("write.retry", "attempt=1");
        }
        assert_eq!(tracer.count_events("fault.injected", None), 2);
        assert_eq!(tracer.count_events("fault.injected", Some("txdb.commit")), 1);
        assert_eq!(tracer.count_events("write.retry", None), 1);
        assert_eq!(tracer.count_events("nope", None), 0);
    }

    #[test]
    fn clear_resets_the_log() {
        let tracer = manual_tracer(Arc::new(AtomicU64::new(0)));
        {
            let _s = tracer.span("l", "op");
        }
        assert!(!tracer.records().is_empty());
        tracer.clear();
        assert!(tracer.records().is_empty());
    }
}
