//! Bounded-queue fixture: the three shapes an `[admission]`-listed
//! enqueue path can take. `enqueue_checked` compares `.len()` against a
//! bound before growing (clean), `enqueue_unchecked` grows with no prior
//! capacity check (flagged), and `enqueue_waived` suppresses the
//! diagnostic with a reasoned pragma.

pub struct Queue {
    items: Vec<u32>,
}

impl Queue {
    pub fn enqueue_checked(&mut self, item: u32, capacity: usize) -> bool {
        if self.items.len() >= capacity {
            return false;
        }
        self.items.push(item);
        true
    }

    pub fn enqueue_unchecked(&mut self, item: u32) {
        self.items.push(item);
    }

    pub fn enqueue_waived(&mut self, item: u32) {
        // uc-lint: allow(bounded-queue) -- fixture: growth bounded by the caller's retry budget
        self.items.push(item);
    }
}
