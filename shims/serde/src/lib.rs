// Vendored offline shim (see shims/README.md): not held to workspace lint
// standards so the call-site-compatible surface can stay close to upstream.
#![allow(clippy::all)]

//! Workspace-local stand-in for `serde`.
//!
//! The real serde is a visitor-driven framework; this shim collapses it to
//! a *content tree*: [`Serialize`] renders a value into [`Value`] (a JSON
//! data model) and [`Deserialize`] rebuilds a value from one. The derive
//! macros (re-exported from the sibling `serde_derive` shim) generate
//! straightforward `to_content`/`from_content` code for the attribute
//! subset this workspace uses: `#[serde(tag = "...")]`,
//! `#[serde(content = "...")]`, `#[serde(rename_all = "camelCase")]`, and
//! `#[serde(rename = "...")]`. `serde_json` (also shimmed) prints and
//! parses the same `Value`, so wire formats match real serde for these
//! shapes: externally / internally / adjacently tagged enums, named-field
//! structs, and transparent newtype structs.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Data model
// ---------------------------------------------------------------------------

/// JSON-shaped content tree. Objects preserve insertion order.
#[derive(Clone, Debug, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving u64 values above `i64::MAX`.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn as_f64(self) -> f64 {
        match self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::I64(v) => u64::try_from(v).ok(),
            Number::U64(v) => Some(v),
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                // One side fits i64 and the other doesn't: equal only if
                // both are huge u64s (handled above) or numerically equal
                // as floats.
            }
        }
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => return a == b,
            _ => {}
        }
        self.as_f64() == other.as_f64()
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Missing keys index to `Null`, like serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => {
                // Key order is not significant.
                a.len() == b.len()
                    && a.iter().all(|(k, v)| {
                        b.iter().find(|(bk, _)| bk == k).map(|(_, bv)| bv) == Some(v)
                    })
            }
            _ => false,
        }
    }
}

macro_rules! value_eq_prim {
    ($($t:ty => $conv:expr),* $(,)?) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                #[allow(clippy::redundant_closure_call)]
                ($conv)(self, other)
            }
        }

        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_prim! {
    &str => |v: &Value, o: &&str| v.as_str() == Some(*o),
    String => |v: &Value, o: &String| v.as_str() == Some(o.as_str()),
    bool => |v: &Value, o: &bool| v.as_bool() == Some(*o),
    i32 => |v: &Value, o: &i32| v.as_i64() == Some(*o as i64),
    i64 => |v: &Value, o: &i64| v.as_i64() == Some(*o),
    u32 => |v: &Value, o: &u32| v.as_u64() == Some(*o as u64),
    u64 => |v: &Value, o: &u64| v.as_u64() == Some(*o),
    f64 => |v: &Value, o: &f64| v.as_f64() == Some(*o),
}

// ---------------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------------

/// Serialization/deserialization failure, carrying a human-readable path.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Core traits
// ---------------------------------------------------------------------------

pub trait Serialize {
    fn to_content(&self) -> Value;
}

/// The lifetime mirrors real serde's signature so existing
/// `for<'de> Deserialize<'de>` bounds compile; this shim never borrows
/// from the input.
pub trait Deserialize<'de>: Sized {
    fn from_content(value: &Value) -> Result<Self, Error>;
}

pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Compatibility alias module (`serde::de::DeserializeOwned`).
pub mod de {
    pub use super::{Deserialize, DeserializeOwned, Error};
}

pub mod ser {
    pub use super::{Error, Serialize};
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_content(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Value {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Value {
        (**self).to_content()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! ser_int {
    ($($t:ty => $variant:ident as $as:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Value {
                Value::Number(Number::$variant(*self as $as))
            }
        }
    )*};
}

ser_int! {
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
}

impl Serialize for f64 {
    fn to_content(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Value {
        match self {
            Some(v) => v.to_content(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Value {
        Value::Array(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Value {
        Value::Array(vec![self.0.to_content(), self.1.to_content(), self.2.to_content()])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl<'de> Deserialize<'de> for Value {
    fn from_content(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn from_content(value: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_content(value)?))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_content(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| type_err("bool", value))
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_content(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| type_err("string", value))
    }
}

macro_rules! de_int {
    ($($t:ty => $via:ident ($name:literal)),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_content(value: &Value) -> Result<Self, Error> {
                value
                    .$via()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| type_err($name, value))
            }
        }
    )*};
}

de_int! {
    i8 => as_i64 ("i8"), i16 => as_i64 ("i16"), i32 => as_i64 ("i32"),
    i64 => as_i64 ("i64"), isize => as_i64 ("isize"),
    u8 => as_u64 ("u8"), u16 => as_u64 ("u16"), u32 => as_u64 ("u32"),
    u64 => as_u64 ("u64"), usize => as_u64 ("usize"),
}

impl<'de> Deserialize<'de> for f64 {
    fn from_content(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| type_err("f64", value))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_content(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| type_err("f32", value))
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn from_content(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn from_content(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| type_err("array", value))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<'de, A: DeserializeOwned, B: DeserializeOwned> Deserialize<'de> for (A, B) {
    fn from_content(value: &Value) -> Result<Self, Error> {
        let arr = value.as_array().ok_or_else(|| type_err("2-tuple", value))?;
        if arr.len() != 2 {
            return Err(Error::custom(format!("expected 2-tuple, got {} elements", arr.len())));
        }
        Ok((A::from_content(&arr[0])?, B::from_content(&arr[1])?))
    }
}

impl<'de, A: DeserializeOwned, B: DeserializeOwned, C: DeserializeOwned> Deserialize<'de>
    for (A, B, C)
{
    fn from_content(value: &Value) -> Result<Self, Error> {
        let arr = value.as_array().ok_or_else(|| type_err("3-tuple", value))?;
        if arr.len() != 3 {
            return Err(Error::custom(format!("expected 3-tuple, got {} elements", arr.len())));
        }
        Ok((A::from_content(&arr[0])?, B::from_content(&arr[1])?, C::from_content(&arr[2])?))
    }
}

impl<'de, V: DeserializeOwned> Deserialize<'de> for BTreeMap<String, V> {
    fn from_content(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| type_err("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl<'de, V: DeserializeOwned> Deserialize<'de> for HashMap<String, V> {
    fn from_content(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| type_err("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

fn type_err(expected: &str, got: &Value) -> Error {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    Error::custom(format!("expected {expected}, got {kind}"))
}

// ---------------------------------------------------------------------------
// Support functions for derive-generated code
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub mod __private {
    use super::{DeserializeOwned, Error, Value};

    pub fn expect_object<'a>(value: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
        value
            .as_object()
            .map(|v| v.as_slice())
            .ok_or_else(|| Error::custom(format!("expected object for {ty}")))
    }

    pub fn obj_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Look up a struct field; missing keys deserialize from null, so
    /// `Option` fields tolerate omission while required fields report
    /// a typed error naming the field.
    pub fn field<T: DeserializeOwned>(
        obj: &[(String, Value)],
        key: &str,
        ty: &str,
    ) -> Result<T, Error> {
        let value = obj_get(obj, key).unwrap_or(&Value::Null);
        T::from_content(value).map_err(|e| Error::custom(format!("{ty}.{key}: {e}")))
    }

    /// Required string member (enum tags).
    pub fn tag_str<'a>(obj: &'a [(String, Value)], key: &str, ty: &str) -> Result<&'a str, Error> {
        obj_get(obj, key)
            .and_then(|v| v.as_str())
            .ok_or_else(|| Error::custom(format!("missing `{key}` tag for {ty}")))
    }

    pub fn expect_tuple<'a>(value: &'a Value, len: usize, ctx: &str) -> Result<&'a [Value], Error> {
        let arr = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array for {ctx}")))?;
        if arr.len() != len {
            return Err(Error::custom(format!(
                "expected {len} elements for {ctx}, got {}",
                arr.len()
            )));
        }
        Ok(arr.as_slice())
    }

    /// Prepend the tag member to an internally-tagged variant's content.
    pub fn tag_object(tag: &str, name: &str, content: Value) -> Value {
        match content {
            Value::Object(mut entries) => {
                entries.insert(0, (tag.to_string(), Value::String(name.to_string())));
                Value::Object(entries)
            }
            other => panic!(
                "internally tagged variant `{name}` must serialize to an object, got {other:?}"
            ),
        }
    }

    pub fn unknown_variant(got: &str, ty: &str) -> Error {
        Error::custom(format!("unknown variant `{got}` for {ty}"))
    }
}
